//! Vendored, offline subset of `proptest`.
//!
//! Provides the API surface the workspace's property tests use: the
//! [`proptest!`] macro, range/tuple/collection strategies, and the
//! `prop_assert*` macros. Cases are generated from a fixed-seed ChaCha8
//! stream (deterministic across runs and machines). Shrinking is not
//! implemented — a failing case panics with the sampled inputs in the
//! message instead.

#![forbid(unsafe_code)]

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::ops::Range;

/// The RNG handed to strategies.
pub type TestRng = ChaCha8Rng;

/// A source of arbitrary values of one type.
pub trait Strategy {
    /// The type of values produced.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_strategy_range_inclusive {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                if start == end {
                    return start;
                }
                // end is excluded by gen_range; widen via an extra draw on
                // the boundary to keep the endpoint reachable.
                if rng.gen_bool(1.0 / 64.0) {
                    end
                } else {
                    rng.gen_range(start..end)
                }
            }
        }
    )*};
}

impl_strategy_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// A strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specifications `vec` accepts.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(*self.start()..self.end().saturating_add(1))
        }
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec`s with sampled lengths.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R = Range<usize>> {
        element: S,
        size: R,
    }

    /// `vec(element, len_range)`: vectors of `element` samples.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Samples `true`/`false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Runner configuration (`proptest::test_runner::Config`).
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Deterministic per-test RNG: ChaCha8 seeded from the test's name so
/// every property draws an independent but reproducible stream.
pub fn rng_for(test_name: &str) -> TestRng {
    use rand::SeedableRng;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Property-test entry macro (vendored subset of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let cases = ($cfg).cases;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cases {
                let ($($arg,)+) =
                    ($($crate::Strategy::sample(&($strat), &mut rng),)+);
                let result = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    Ok(())
                })();
                if let Err(msg) = result {
                    panic!("property {} failed on case {case}: {msg}", stringify!($name));
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} (left: {l:?}, right: {r:?})",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err(format!($($fmt)*));
        }
    }};
}

/// `assert_ne!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return Err(format!(
                "assertion failed: {} != {} (both: {l:?})",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        fn ranges_stay_in_bounds(x in 10u64..20, y in -5i64..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        fn tuples_and_vecs(v in crate::collection::vec((0u64..100, 0u8..4), 1..50)) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            for (a, b) in v {
                prop_assert!(a < 100 && b < 4);
            }
        }

        fn bools_vary(flips in crate::collection::vec(crate::bool::ANY, 64..65)) {
            // 64 fair coin flips virtually never agree completely.
            let heads = flips.iter().filter(|&&b| b).count();
            prop_assert!(heads > 0 && heads < 64);
        }
    }

    #[test]
    fn deterministic_streams() {
        use crate::Strategy;
        let mut a = crate::rng_for("x");
        let mut b = crate::rng_for("x");
        let s = 0u64..1000;
        for _ in 0..32 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
