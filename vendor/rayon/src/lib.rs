//! Vendored, offline stand-in for `rayon`.
//!
//! Exposes `par_iter()`/`into_par_iter()` as plain sequential iterators so
//! code written against the rayon prelude compiles and runs without the
//! real thread-pool crate. Results and ordering are identical to rayon's
//! (rayon's `collect` preserves order); only wall-clock parallelism is
//! lost, which the deterministic experiment drivers do not depend on.

#![forbid(unsafe_code)]

/// Parallel-iterator traits, sequentially implemented.
pub mod prelude {
    /// `.par_iter()` on shared slices (and anything that derefs to one).
    pub trait IntoParallelRefIterator<'data> {
        /// Element type.
        type Item: 'data;
        /// Iterator type ("parallel" in name only).
        type Iter: Iterator<Item = Self::Item>;
        /// Iterates sequentially, in order.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `.par_iter_mut()` on exclusive slices.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Element type.
        type Item: 'data;
        /// Iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterates sequentially, in order.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: 'data + Send> IntoParallelRefMutIterator<'data> for [T] {
        type Item = &'data mut T;
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'data, T: 'data + Send> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = &'data mut T;
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    /// `.into_par_iter()` on owned collections.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item;
        /// Iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterates sequentially, in order.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = std::ops::Range<usize>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}
