//! Vendored, offline subset of `criterion`.
//!
//! Implements just enough of the criterion API for the workspace's bench
//! targets to compile and produce rough timings: `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `black_box`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros.
//! Timings are a short fixed-duration sample, not a statistical analysis.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benched work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration metadata (accepted, reported per element).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the sample window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then measure.
        black_box(routine());
        let start = Instant::now();
        let mut n = 0u64;
        while start.elapsed() < Duration::from_millis(200) {
            black_box(routine());
            n += 1;
        }
        self.iters = n.max(1);
        self.elapsed = start.elapsed();
    }

    fn report(&self, name: &str) {
        let per_iter = self.elapsed.as_nanos() as f64 / self.iters.max(1) as f64;
        println!(
            "bench {name:<48} {per_iter:>14.1} ns/iter ({} iters)",
            self.iters
        );
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares iteration throughput (accepted for API compatibility).
    pub fn throughput(&mut self, _t: Throughput) {}

    /// Sets the sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level bench driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a driver with default settings.
    #[allow(clippy::should_implement_trait)]
    pub fn default() -> Self {
        Criterion {}
    }

    /// Runs one free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        b.report(id);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
