//! Vendored, offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes `Mutex`/`RwLock` with parking_lot's non-poisoning API (`lock()`
//! returns the guard directly). Poisoned std locks are recovered rather
//! than propagated, matching parking_lot's behaviour of not poisoning.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock owning `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock owning `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}
