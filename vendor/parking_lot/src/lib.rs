//! Vendored, offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes `Mutex`/`RwLock` with parking_lot's non-poisoning API (`lock()`
//! returns the guard directly). Poisoned std locks are recovered rather
//! than propagated, matching parking_lot's behaviour of not poisoning.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock owning `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A condition variable paired with [`Mutex`]. Because the shim's
/// `lock()` hands out the underlying `std` guard, waiting takes and
/// returns the guard by value (`std` style) rather than `&mut` —
/// callers reassign: `guard = cond.wait(guard)`.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the lock while parked and
    /// re-acquiring it (recovering from poisoning) before returning.
    /// Spurious wakeups are possible; re-check the predicate in a loop.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0
            .wait(guard)
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock owning `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}
