//! Vendored, offline subset of `serde`.
//!
//! The registry is unreachable from the build environment, so the
//! workspace ships a self-contained serialization layer under the same
//! crate name. Instead of serde's visitor architecture it uses a concrete
//! value tree ([`Value`]): `Serialize` lowers a type into a [`Value`] and
//! `Deserialize` rebuilds it, with `serde_json` handling only the
//! text↔[`Value`] conversion. The derive macros are re-exported from the
//! companion `serde_derive` proc-macro crate and target these traits.
//!
//! Conventions (stable, relied on by round-trip tests):
//! - structs → objects keyed by field name, in declaration order;
//! - unit enum variants → a bare string, data variants → a single-key
//!   object `{"Variant": ...}` (externally tagged, like upstream serde);
//! - map keys are emitted in sorted order so output is deterministic;
//! - non-finite floats serialize as `null` (as `serde_json` does).

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The serialization error type (also used for deserialization).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// The in-memory data model every serializable type lowers into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed (negative) integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The pairs of an object, if this is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The elements of an array, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    /// Produces the value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Derive-macro helper: fetches and deserializes one struct field.
/// Missing keys read as `Null` so `Option` fields tolerate omission.
pub fn de_field<T: Deserialize>(v: &Value, key: &str) -> Result<T, Error> {
    match v.get(key) {
        Some(field) => {
            T::from_value(field).map_err(|e| Error::custom(format!("field `{key}`: {e}")))
        }
        None => {
            T::from_value(&Value::Null).map_err(|_| Error::custom(format!("missing field `{key}`")))
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::Int(n) } else { Value::UInt(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if self.is_finite() { Value::Float(*self as f64) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::custom("expected number")),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Upstream serde deserializes `&str` zero-copy from borrowed input.
    /// The value-tree model owns its strings, so the vendored subset
    /// interns the string instead (one small leak per distinct string,
    /// only on the rarely-exercised deserialize path).
    fn from_value(v: &Value) -> Result<Self, Error> {
        use std::collections::BTreeSet;
        use std::sync::{Mutex, OnceLock};
        static INTERNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
        match v {
            Value::Str(s) => {
                let mut set = INTERNED
                    .get_or_init(|| Mutex::new(BTreeSet::new()))
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if let Some(hit) = set.get(s.as_str()) {
                    return Ok(hit);
                }
                let leaked: &'static str = Box::leak(s.clone().into_boxed_str());
                set.insert(leaked);
                Ok(leaked)
            }
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().expect("length checked"))
            }
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        self.as_ref().to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                let mut it = items.iter();
                Ok(($(
                    $name::from_value(it.next().ok_or_else(|| Error::custom("tuple too short"))?)?,
                )+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Map keys (JSON objects require strings; integers stringify).
pub trait MapKey: Sized {
    /// Renders the key.
    fn to_key(&self) -> String;
    /// Parses the key back.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| Error::custom("invalid integer map key"))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sorted output keeps serialization deterministic across runs.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        assert_eq!(Some(3u64).to_value(), Value::UInt(3));
        assert_eq!(None::<u64>.to_value(), Value::Null);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_value(&Value::UInt(3)).unwrap(), Some(3));
    }

    #[test]
    fn array_roundtrip() {
        let v = [1u64, 2, 3].to_value();
        assert_eq!(<[u64; 3]>::from_value(&v).unwrap(), [1, 2, 3]);
        assert!(<[u64; 4]>::from_value(&v).is_err());
    }

    #[test]
    fn hashmap_is_sorted() {
        let mut m = HashMap::new();
        m.insert(10u64, 1u64);
        m.insert(2u64, 2u64);
        let v = m.to_value();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["10", "2"]); // lexicographic, but stable
        let back = HashMap::<u64, u64>::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }
}
