//! Vendored, offline subset of the `rand` crate API.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the narrow slice of `rand` it actually uses: the
//! [`RngCore`]/[`Rng`]/[`SeedableRng`] traits with `gen`, `gen_range`, and
//! `gen_bool`. Distributions match `rand`'s definitions (53-bit mantissa
//! floats, widening-multiply range reduction) so streams are uniform and
//! deterministic, though bit-exact equality with upstream `rand` is not
//! guaranteed and nothing in the workspace depends on it.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level uniform bit generator.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Types a generator can sample from its raw bit stream.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand's StandardUniform for f64: 53 mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges an [`Rng`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                // Widening multiply (Lemire) over a 64-bit draw keeps the
                // modulo bias below 2^-64 for every span the workspace uses.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u128;
                (self.start as u128 + hi) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (e.g. `[u8; 32]`).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed, expanding it with
    /// SplitMix64 exactly as upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea, Flood 2014).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Commonly imported items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// Submodule mirroring `rand::rngs` (empty in the vendored subset).
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Lcg(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Lcg(3);
        for _ in 0..1000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0usize..1);
            assert_eq!(y, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Lcg(9);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
    }
}
