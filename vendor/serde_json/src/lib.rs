//! Vendored, offline JSON front-end for the vendored `serde` subset.
//!
//! Renders [`serde::Value`] trees to JSON text and parses JSON text back,
//! providing the `to_string` / `to_string_pretty` / `from_str` entry
//! points the workspace uses. Floats are rendered with Rust's shortest
//! round-trip formatting, so `to_string` → `from_str` reproduces every
//! finite `f64` exactly.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses a value of `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{}` is Rust's shortest round-trip form; force a decimal
                // point so the text re-parses as a float, not an integer.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode from the byte position to keep UTF-8 intact.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| Error::new("empty char"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
    }

    #[test]
    fn float_shortest_roundtrip() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 123456.789, 2.0] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "{s}");
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u64, 2usize), (3, 4)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3,4]]");
        let back: Vec<(u64, usize)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_is_reparseable() {
        let v = vec![Some(1u64), None, Some(3)];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Vec<Option<u64>> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_strings() {
        let s = to_string(&"héllo ✓").unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), "héllo ✓");
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
    }
}
