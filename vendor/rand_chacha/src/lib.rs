//! Vendored ChaCha8 random generator (offline stand-in for `rand_chacha`).
//!
//! Implements the full ChaCha block function (Bernstein 2008) with 8
//! rounds, driven through the vendored `rand` traits. Deterministic across
//! platforms; the keystream is the genuine ChaCha8 keystream for the given
//! 256-bit key, so statistical quality matches upstream even though word
//! extraction order is not guaranteed bit-identical to `rand_chacha`.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha with 8 rounds, keyed by a 256-bit seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Stream id (state words 14..16).
    stream: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal quarter-rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input) {
            *out = out.wrapping_add(inp);
        }
        self.block = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// Selects an independent keystream (ChaCha's 64-bit nonce words).
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.index = 16;
        self.counter = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Self {
            key,
            counter: 0,
            stream: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        b.set_stream(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn roughly_uniform_f64() {
        let mut r = ChaCha8Rng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
