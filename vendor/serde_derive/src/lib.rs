//! Derive macros for the vendored `serde` subset.
//!
//! Parses the item's token stream directly (the offline environment has no
//! `syn`/`quote`) and emits `impl serde::Serialize`/`Deserialize` blocks
//! targeting the value-tree data model. Supports the shapes this workspace
//! uses: non-generic named-field structs, tuple/unit structs, and enums
//! with unit, tuple, and struct variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving item.
enum Item {
    /// `struct S { a: T, b: U }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct S(T, U);` — arity only.
    TupleStruct { name: String, arity: usize },
    /// `struct S;`
    UnitStruct { name: String },
    /// `enum E { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// One enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Skips `#[...]` attributes (including expanded doc comments) starting at
/// `i`; returns the index of the first non-attribute token.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, …) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits the tokens of a brace/paren group body at top-level commas,
/// tracking `<…>` nesting so generic arguments don't split.
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle = 0i32;
    let mut prev_dash = false;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                // `->` in fn-pointer types must not close an angle bracket.
                '>' if !prev_dash => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut current));
                    prev_dash = false;
                    continue;
                }
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Extracts the field name out of one named-field declaration
/// (`attrs vis name : Type`).
fn field_name(decl: &[TokenTree]) -> Option<String> {
    let i = skip_vis(decl, skip_attrs(decl, 0));
    match decl.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn parse(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("derive on generic type `{name}` is not supported"));
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let fields = split_top_level(&body)
                    .iter()
                    .filter_map(|d| field_name(d))
                    .collect();
                Ok(Item::NamedStruct { name, fields })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::TupleStruct {
                    name,
                    arity: split_top_level(&body).len(),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut variants = Vec::new();
                for decl in split_top_level(&body) {
                    let mut j = skip_attrs(&decl, 0);
                    let vname = match decl.get(j) {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        None => continue, // trailing comma
                        other => return Err(format!("expected variant name, got {other:?}")),
                    };
                    j += 1;
                    let kind = match decl.get(j) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            VariantKind::Struct(
                                split_top_level(&inner)
                                    .iter()
                                    .filter_map(|d| field_name(d))
                                    .collect(),
                            )
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            VariantKind::Tuple(split_top_level(&inner).len())
                        }
                        _ => VariantKind::Unit, // unit, or `= discr` (skipped)
                    };
                    variants.push(Variant { name: vname, kind });
                }
                Ok(Item::Enum { name, variants })
            }
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn emit(code: String) -> TokenStream {
    code.parse().expect("derive output must tokenize")
}

fn compile_error(msg: &str) -> TokenStream {
    emit(format!("compile_error!({msg:?});"))
}

/// Derives `serde::Serialize` (vendored value-tree flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let mut out = String::new();
    match &item {
        Item::NamedStruct { name, fields } => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{\
                         ::serde::Value::Object(::std::vec![{pairs}])\
                     }}\
                 }}"
            ));
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: String = (0..*arity)
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k}),"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{items}])")
            };
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\
                 }}"
            ));
        }
        Item::UnitStruct { name } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\
                 }}"
            ));
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\
                                 ::std::string::String::from({vn:?})),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> = (0..*arity).map(|k| format!("f{k}")).collect();
                            let payload = if *arity == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: String = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                    .collect();
                                format!("::serde::Value::Array(::std::vec![{items}])")
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![\
                                     (::std::string::String::from({vn:?}), {payload})]),",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let pairs: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Object(::std::vec![\
                                     (::std::string::String::from({vn:?}), \
                                      ::serde::Value::Object(::std::vec![{pairs}]))]),",
                                fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{\
                         match self {{ {arms} }}\
                     }}\
                 }}"
            ));
        }
    }
    emit(out)
}

/// Derives `serde::Deserialize` (vendored value-tree flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let mut out = String::new();
    match &item {
        Item::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(v, {f:?})?,"))
                .collect();
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\
                         if v.as_object().is_none() {{\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                                 concat!(\"expected object for \", {name:?})));\
                         }}\
                         ::std::result::Result::Ok({name} {{ {inits} }})\
                     }}\
                 }}"
            ));
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
            } else {
                let gets: String = (0..*arity)
                    .map(|k| {
                        format!(
                            "::serde::Deserialize::from_value(items.get({k})\
                                 .ok_or_else(|| ::serde::Error::custom(\"tuple too short\"))?)?,"
                        )
                    })
                    .collect();
                format!(
                    "let items = v.as_array()\
                         .ok_or_else(|| ::serde::Error::custom(\"expected array\"))?;\
                     ::std::result::Result::Ok({name}({gets}))"
                )
            };
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\
                 }}"
            ));
        }
        Item::UnitStruct { name } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(_v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\
                         ::std::result::Result::Ok({name})\
                     }}\
                 }}"
            ));
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "{:?} => ::std::result::Result::Ok({name}::{}),",
                        v.name, v.name
                    )
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(arity) => {
                            let body = if *arity == 1 {
                                format!(
                                    "::std::result::Result::Ok({name}::{vn}(\
                                         ::serde::Deserialize::from_value(inner)?))"
                                )
                            } else {
                                let gets: String = (0..*arity)
                                    .map(|k| {
                                        format!(
                                            "::serde::Deserialize::from_value(items.get({k})\
                                                 .ok_or_else(|| ::serde::Error::custom(\
                                                     \"variant tuple too short\"))?)?,"
                                        )
                                    })
                                    .collect();
                                format!(
                                    "let items = inner.as_array()\
                                         .ok_or_else(|| ::serde::Error::custom(\
                                             \"expected array for variant\"))?;\
                                     ::std::result::Result::Ok({name}::{vn}({gets}))"
                                )
                            };
                            Some(format!("{vn:?} => {{ {body} }}"))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::de_field(inner, {f:?})?,"))
                                .collect();
                            Some(format!(
                                "{vn:?} => ::std::result::Result::Ok(\
                                     {name}::{vn} {{ {inits} }}),"
                            ))
                        }
                    }
                })
                .collect();
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\
                         match v {{\
                             ::serde::Value::Str(s) => match s.as_str() {{\
                                 {unit_arms}\
                                 other => ::std::result::Result::Err(::serde::Error::custom(\
                                     format!(concat!(\"unknown \", {name:?}, \" variant {{}}\"), other))),\
                             }},\
                             other => {{\
                                 let pairs = other.as_object().ok_or_else(|| \
                                     ::serde::Error::custom(concat!(\"expected variant object for \", {name:?})))?;\
                                 let (tag, inner) = pairs.first().ok_or_else(|| \
                                     ::serde::Error::custom(\"empty variant object\"))?;\
                                 match tag.as_str() {{\
                                     {tagged_arms}\
                                     other => ::std::result::Result::Err(::serde::Error::custom(\
                                         format!(concat!(\"unknown \", {name:?}, \" variant {{}}\"), other))),\
                                 }}\
                             }}\
                         }}\
                     }}\
                 }}"
            ));
        }
    }
    emit(out)
}
