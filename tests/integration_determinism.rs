//! Determinism and reproducibility across the whole stack.

use respin_core::arch::ArchConfig;
use respin_core::runner::{run, RunOptions};
use respin_workloads::Benchmark;

fn opts(arch: ArchConfig, seed: u64) -> RunOptions {
    let mut o = RunOptions::new(arch, Benchmark::Cholesky);
    o.clusters = 2;
    o.cores_per_cluster = 4;
    o.instructions_per_thread = Some(16_000);
    o.warmup_per_thread = 4_000;
    o.epoch_instructions = Some(4_000);
    o.seed = seed;
    o.oracle_radius = 2;
    o
}

#[test]
fn identical_seeds_give_identical_results() {
    for arch in [ArchConfig::PrSramNt, ArchConfig::ShStt, ArchConfig::ShSttCc] {
        let a = run(&opts(arch, 7));
        let b = run(&opts(arch, 7));
        assert_eq!(a.ticks, b.ticks, "{}", arch.name());
        assert_eq!(a.instructions, b.instructions, "{}", arch.name());
        assert_eq!(a.energy, b.energy, "{}", arch.name());
        assert_eq!(a.stats, b.stats, "{}", arch.name());
    }
}

#[test]
fn different_seeds_give_different_chips() {
    let a = run(&opts(ArchConfig::ShStt, 1));
    let b = run(&opts(ArchConfig::ShStt, 2));
    // Different variation maps and op streams: the runs must diverge.
    assert_ne!(a.ticks, b.ticks);
}

#[test]
fn oracle_replay_does_not_perturb_the_main_timeline() {
    // An oracle run with radius 0 (only the "stay" candidate) must equal
    // the plain SH-STT-CC chip with no decisions — clone-replay must be
    // side-effect free.
    let mut o = opts(ArchConfig::ShSttCcOracle, 5);
    o.oracle_radius = 0;
    let oracle = run(&o);
    let mut p = opts(ArchConfig::ShStt, 5);
    // Same machine, same workload; SH-STT differs from SH-STT-CC only by
    // the consolidation flag, which (with no decisions) changes nothing.
    p.arch = ArchConfig::ShStt;
    let plain = run(&p);
    assert_eq!(oracle.ticks, plain.ticks);
    assert_eq!(oracle.instructions, plain.instructions);
}

#[test]
fn results_are_serialisable_and_roundtrip() {
    let res = run(&opts(ArchConfig::ShStt, 3));
    let json = serde_json::to_string(&res).expect("serialise");
    let back: respin_sim::RunResult = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(res.ticks, back.ticks);
    assert_eq!(res.stats, back.stats);
}

#[test]
fn serialised_results_are_byte_identical_across_thread_counts() {
    // Regression gate for the determinism-lint D001 conversions (the
    // directory/sync-state/run-cache maps moving to BTreeMap): not just
    // field-equal but **byte-equal** on the full serialised RunResult, at
    // 1 worker vs 4 workers with independent caches. Any map whose
    // iteration order reached the serialised form — or any reintroduced
    // hash-ordered traversal upstream of it — shows up here as a byte
    // diff even when every scalar field still matches.
    use respin_core::experiments::RunCache;
    use respin_pool::Pool;

    let batch: Vec<RunOptions> = [
        (ArchConfig::ShStt, Benchmark::Fft),
        (ArchConfig::ShSttCc, Benchmark::Lu),
        (ArchConfig::PrSramNt, Benchmark::Radix),
    ]
    .iter()
    .map(|&(a, b)| {
        let mut o = RunOptions::new(a, b);
        o.clusters = 2;
        o.cores_per_cluster = 4;
        o.instructions_per_thread = Some(8_000);
        o.warmup_per_thread = 2_000;
        o.epoch_instructions = Some(2_000);
        o.seed = 9;
        o
    })
    .collect();

    let seq = RunCache::new().run_all_on(&Pool::with_threads(1), &batch);
    let par = RunCache::new().run_all_on(&Pool::with_threads(4), &batch);
    for (s, p) in seq.iter().zip(&par) {
        let js = serde_json::to_string(&**s).expect("serialise");
        let jp = serde_json::to_string(&**p).expect("serialise");
        assert_eq!(js, jp, "serialised results must be byte-identical");
    }
}

// ---- Fault injection ------------------------------------------------------

/// Run options with the STT-RAM fault models and recovery enabled.
fn faulty_run(arch: ArchConfig, seed: u64, fault_seed: u64) -> respin_sim::RunResult {
    let o = opts(arch, seed);
    let mut config = o.chip_config();
    config.faults.seed = fault_seed;
    config.faults.write_ber = 1e-4;
    config.faults.retention_flip_rate = 1e-10;
    config.faults.ecc = true;
    config.faults.scrub = true;
    let mut chip = respin_sim::Chip::new(config, &Benchmark::Cholesky.spec(), o.seed);
    chip.run_warmup(o.warmup_per_thread * 8);
    chip.run_to_completion()
}

#[test]
fn identical_fault_seeds_give_bit_identical_fault_traces() {
    let a = faulty_run(ArchConfig::ShStt, 7, 11);
    let b = faulty_run(ArchConfig::ShStt, 7, 11);
    assert!(a.stats.faults.total_injected() > 0, "faults must fire");
    assert_eq!(a.stats.faults, b.stats.faults);
    assert_eq!(a.stats.fault_trace, b.stats.fault_trace);
    assert_eq!(a.ticks, b.ticks);
    assert_eq!(a.energy, b.energy);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn different_fault_seeds_diverge() {
    let a = faulty_run(ArchConfig::ShStt, 7, 11);
    let b = faulty_run(ArchConfig::ShStt, 7, 12);
    // Same chip seed, same workload — only the fault universe changed.
    assert_ne!(a.stats.fault_trace, b.stats.fault_trace);
}

#[test]
fn fault_results_roundtrip_through_json() {
    let res = faulty_run(ArchConfig::ShStt, 3, 11);
    let json = serde_json::to_string(&res).expect("serialise");
    let back: respin_sim::RunResult = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(res.stats.faults, back.stats.faults);
    assert_eq!(res.stats.fault_trace, back.stats.fault_trace);
}
