//! Determinism and reproducibility across the whole stack.

use respin_core::arch::ArchConfig;
use respin_core::runner::{run, RunOptions};
use respin_workloads::Benchmark;

fn opts(arch: ArchConfig, seed: u64) -> RunOptions {
    let mut o = RunOptions::new(arch, Benchmark::Cholesky);
    o.clusters = 2;
    o.cores_per_cluster = 4;
    o.instructions_per_thread = Some(16_000);
    o.warmup_per_thread = 4_000;
    o.epoch_instructions = Some(4_000);
    o.seed = seed;
    o.oracle_radius = 2;
    o
}

#[test]
fn identical_seeds_give_identical_results() {
    for arch in [ArchConfig::PrSramNt, ArchConfig::ShStt, ArchConfig::ShSttCc] {
        let a = run(&opts(arch, 7));
        let b = run(&opts(arch, 7));
        assert_eq!(a.ticks, b.ticks, "{}", arch.name());
        assert_eq!(a.instructions, b.instructions, "{}", arch.name());
        assert_eq!(a.energy, b.energy, "{}", arch.name());
        assert_eq!(a.stats, b.stats, "{}", arch.name());
    }
}

#[test]
fn different_seeds_give_different_chips() {
    let a = run(&opts(ArchConfig::ShStt, 1));
    let b = run(&opts(ArchConfig::ShStt, 2));
    // Different variation maps and op streams: the runs must diverge.
    assert_ne!(a.ticks, b.ticks);
}

#[test]
fn oracle_replay_does_not_perturb_the_main_timeline() {
    // An oracle run with radius 0 (only the "stay" candidate) must equal
    // the plain SH-STT-CC chip with no decisions — clone-replay must be
    // side-effect free.
    let mut o = opts(ArchConfig::ShSttCcOracle, 5);
    o.oracle_radius = 0;
    let oracle = run(&o);
    let mut p = opts(ArchConfig::ShStt, 5);
    // Same machine, same workload; SH-STT differs from SH-STT-CC only by
    // the consolidation flag, which (with no decisions) changes nothing.
    p.arch = ArchConfig::ShStt;
    let plain = run(&p);
    assert_eq!(oracle.ticks, plain.ticks);
    assert_eq!(oracle.instructions, plain.instructions);
}

#[test]
fn results_are_serialisable_and_roundtrip() {
    let res = run(&opts(ArchConfig::ShStt, 3));
    let json = serde_json::to_string(&res).expect("serialise");
    let back: respin_sim::RunResult = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(res.ticks, back.ticks);
    assert_eq!(res.stats, back.stats);
}
