//! Integration tests for the §III dynamic core-management system.

use respin_core::arch::ArchConfig;
use respin_core::consolidation::oracle_decide;
use respin_core::runner::{run, RunOptions};
use respin_sim::{Chip, CtxSwitchModel};
use respin_workloads::Benchmark;

fn cc_opts(arch: ArchConfig, bench: Benchmark) -> RunOptions {
    let mut o = RunOptions::new(arch, bench);
    o.clusters = 1;
    o.cores_per_cluster = 8;
    o.instructions_per_thread = Some(64_000);
    o.warmup_per_thread = 8_000;
    o.epoch_instructions = Some(8_000);
    o.oracle_radius = 2;
    o
}

#[test]
fn greedy_consolidates_idle_heavy_workloads_and_saves_energy() {
    let bench = Benchmark::Radix; // deep idle phases
    let plain = run(&cc_opts(ArchConfig::ShStt, bench));
    let cc = run(&cc_opts(ArchConfig::ShSttCc, bench));
    assert!(cc.stats.migrations > 0, "greedy never migrated");
    assert!(
        cc.stats.consolidation_trace.iter().any(|&(_, a)| a < 8),
        "greedy never powered a core down: {:?}",
        cc.stats.consolidation_trace
    );
    assert!(
        cc.energy.chip_total_pj() < plain.energy.chip_total_pj(),
        "consolidation must save energy on radix: {} vs {}",
        cc.energy.chip_total_pj(),
        plain.energy.chip_total_pj()
    );
}

#[test]
fn oracle_saves_at_least_as_much_as_greedy() {
    let bench = Benchmark::Radix;
    let greedy = run(&cc_opts(ArchConfig::ShSttCc, bench));
    let oracle = run(&cc_opts(ArchConfig::ShSttCcOracle, bench));
    assert!(
        oracle.energy.chip_total_pj() <= greedy.energy.chip_total_pj() * 1.02,
        "oracle {} vs greedy {}",
        oracle.energy.chip_total_pj(),
        greedy.energy.chip_total_pj()
    );
}

#[test]
fn os_granularity_consolidation_is_worse_than_hardware() {
    // §V-C: coarse context switching lets critical threads bottleneck the
    // application; energy ends up *above* the no-consolidation design.
    let bench = Benchmark::Ocean; // barrier-heavy: the worst case for the OS
    let hw = run(&cc_opts(ArchConfig::ShSttCc, bench));
    let os = run(&cc_opts(ArchConfig::ShSttCcOs, bench));
    assert!(
        os.energy.chip_total_pj() > hw.energy.chip_total_pj(),
        "OS consolidation must cost more than hardware: {} vs {}",
        os.energy.chip_total_pj(),
        hw.energy.chip_total_pj()
    );
}

#[test]
fn consolidation_preserves_program_semantics() {
    // Same instruction totals, all barriers released, all locks dropped,
    // whatever the policy does underneath.
    for arch in [
        ArchConfig::ShSttCc,
        ArchConfig::PrSttCc,
        ArchConfig::ShSttCcOs,
    ] {
        let res = run(&cc_opts(arch, Benchmark::Bodytrack));
        assert!(
            res.instructions >= 8 * 60_000,
            "{}: {} instructions",
            arch.name(),
            res.instructions
        );
    }
}

#[test]
fn oracle_decide_respects_radius_and_bounds() {
    let mut config = ArchConfig::ShSttCcOracle.chip_config(respin_sim::CacheSizeClass::Medium, 8);
    config.clusters = 1;
    config.instructions_per_thread = Some(20_000);
    config.epoch_instructions = 4_000;
    let mut chip = Chip::new(config, &Benchmark::Lu.spec(), 3);
    chip.run_epoch();
    for radius in [1usize, 2, 3] {
        let counts = oracle_decide(&chip, radius);
        for (k, &c) in counts.iter().enumerate() {
            let current = chip.clusters[k].active_cores;
            assert!((1..=8).contains(&c));
            assert!(
                (c as i64 - current as i64).unsigned_abs() as usize <= radius,
                "radius violated: {c} from {current} with r={radius}"
            );
        }
    }
}

#[test]
fn migration_costs_appear_in_the_private_config() {
    // PR-STT-CC loses L1 locality on every migration; the shared design
    // does not. Relative slowdown of CC vs its own non-CC base must be
    // larger for private.
    let bench = Benchmark::Radix;
    let sh = run(&cc_opts(ArchConfig::ShSttCc, bench));
    let sh_base = run(&cc_opts(ArchConfig::ShStt, bench));
    let pr = run(&cc_opts(ArchConfig::PrSttCc, bench));
    let pr_base = {
        // Private STT without consolidation: reuse PR-STT-CC's config but
        // keep all cores on by running the plain runner path.
        let mut o = cc_opts(ArchConfig::PrSttCc, bench);
        o.arch = ArchConfig::PrSttCc;
        let mut chip = o.build_chip();
        chip.run_warmup(o.warmup_per_thread * 8);
        chip.run_to_completion()
    };
    let sh_slowdown = sh.ticks as f64 / sh_base.ticks as f64;
    let pr_slowdown = pr.ticks as f64 / pr_base.ticks as f64;
    assert!(
        pr_slowdown > sh_slowdown * 0.95,
        "private consolidation should pay at least comparable overhead: {pr_slowdown} vs {sh_slowdown}"
    );
}

#[test]
fn os_config_uses_quantum_switching() {
    let config = ArchConfig::ShSttCcOs.chip_config(respin_sim::CacheSizeClass::Medium, 16);
    assert_eq!(config.ctx_switch, CtxSwitchModel::Os);
    let config = ArchConfig::ShSttCc.chip_config(respin_sim::CacheSizeClass::Medium, 16);
    assert_eq!(config.ctx_switch, CtxSwitchModel::Hardware);
}
