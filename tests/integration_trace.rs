//! Observability layer: tracing must be observation-only (bit-identical
//! results) and its exports must be schema-valid.

use respin_core::arch::ArchConfig;
use respin_core::experiments::{Pool, RunCache};
use respin_core::runner::{run, RunOptions};
use respin_trace::{
    canonical_order, to_chrome_trace, to_jsonl, validate_jsonl, RingSink, TraceKind, Tracer,
};
use respin_workloads::Benchmark;
use std::sync::Arc;

fn opts(arch: ArchConfig) -> RunOptions {
    let mut o = RunOptions::new(arch, Benchmark::Cholesky);
    o.clusters = 2;
    o.cores_per_cluster = 4;
    o.instructions_per_thread = Some(16_000);
    o.warmup_per_thread = 4_000;
    o.epoch_instructions = Some(4_000);
    o.seed = 7;
    o
}

/// Runs `arch` twice — once silent, once traced — and returns the traced
/// result together with the captured events after asserting the two runs
/// are bit-identical.
fn run_both(arch: ArchConfig) -> (respin_sim::RunResult, Vec<respin_trace::TraceEvent>) {
    let silent = run(&opts(arch));
    let ring = Arc::new(RingSink::unbounded());
    let traced = run(&opts(arch).traced(Tracer::new(ring.clone())));
    assert_eq!(silent.ticks, traced.ticks, "{}", arch.name());
    assert_eq!(silent.instructions, traced.instructions, "{}", arch.name());
    assert_eq!(silent.energy, traced.energy, "{}", arch.name());
    assert_eq!(silent.stats, traced.stats, "{}", arch.name());
    (traced, ring.snapshot())
}

#[test]
fn tracing_does_not_perturb_results() {
    for arch in [ArchConfig::PrSramNt, ArchConfig::ShStt, ArchConfig::ShSttCc] {
        let (result, events) = run_both(arch);
        assert!(
            !events.is_empty(),
            "{}: trace must not be empty",
            arch.name()
        );
        let cluster_epochs = events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::ClusterEpoch { .. }))
            .count();
        assert_eq!(
            cluster_epochs as u64,
            result.stats.epochs * 2,
            "{}: one ClusterEpoch per cluster per epoch",
            arch.name()
        );
        if arch != ArchConfig::PrSramNt {
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e.kind, TraceKind::CacheEpoch { .. })),
                "{}: shared-L1 archs must emit cache epochs",
                arch.name()
            );
        }
    }
}

#[test]
fn consolidating_run_traces_decisions_and_consolidations() {
    let (_, events) = run_both(ArchConfig::ShSttCc);
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, TraceKind::VcmDecision { .. })),
        "greedy VCM must trace its decisions"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, TraceKind::Consolidation { .. })),
        "core consolidation must trace power-off/on transitions"
    );
}

#[test]
fn jsonl_export_roundtrips_and_validates() {
    let (_, events) = run_both(ArchConfig::ShSttCc);
    let jsonl = to_jsonl(&events);
    let parsed = match validate_jsonl(&jsonl) {
        Ok(parsed) => parsed,
        Err((line, msg)) => panic!("line {line}: {msg}"),
    };
    for (i, (p, e)) in parsed.iter().zip(&events).enumerate() {
        assert_eq!(p, e, "first mismatch at event {i}");
    }
    assert_eq!(parsed, events, "JSONL must roundtrip losslessly");
    // Every line is a self-contained JSON object naming its event.
    for line in jsonl.lines() {
        let v: serde::Value = serde_json::from_str(line).expect("each line parses");
        let obj = v.as_object().expect("each line is an object");
        for key in ["run", "tick", "kind"] {
            assert!(
                obj.iter().any(|(k, _)| k == key),
                "line missing '{key}': {line}"
            );
        }
    }
}

/// Runs a traced multi-run campaign through a [`RunCache`] on `threads`
/// workers and returns the canonicalised exports plus the results.
fn traced_campaign(threads: usize) -> (Vec<Arc<respin_sim::RunResult>>, String, String) {
    let batch: Vec<RunOptions> = [Benchmark::Fft, Benchmark::Radix, Benchmark::Lu]
        .iter()
        .flat_map(|&b| {
            [ArchConfig::ShStt, ArchConfig::ShSttCc]
                .iter()
                .map(move |&arch| {
                    let mut o = RunOptions::new(arch, b);
                    o.clusters = 2;
                    o.cores_per_cluster = 4;
                    o.instructions_per_thread = Some(4_000);
                    o.warmup_per_thread = 1_000;
                    o.epoch_instructions = Some(1_000);
                    o.seed = 7;
                    o
                })
        })
        .collect();
    let ring = Arc::new(RingSink::unbounded());
    let cache = RunCache::with_tracer(ring.clone(), None);
    let results = cache.run_all_on(&Pool::with_threads(threads), &batch);
    let mut events = ring.snapshot();
    canonical_order(&mut events);
    (results, to_jsonl(&events), to_chrome_trace(&events))
}

#[test]
fn traced_parallel_campaign_exports_byte_identical_to_sequential() {
    let (seq_results, seq_jsonl, seq_chrome) = traced_campaign(1);
    let (par_results, par_jsonl, par_chrome) = traced_campaign(4);
    assert_eq!(seq_results.len(), par_results.len());
    for (i, (s, p)) in seq_results.iter().zip(&par_results).enumerate() {
        assert_eq!(**s, **p, "run {i} diverged across thread counts");
    }
    assert_eq!(
        seq_jsonl, par_jsonl,
        "canonical JSONL must be byte-identical at any thread count"
    );
    assert_eq!(
        seq_chrome, par_chrome,
        "canonical Chrome trace must be byte-identical at any thread count"
    );
    assert!(!seq_jsonl.is_empty());
}

#[test]
fn chrome_trace_export_is_loadable_json() {
    let (_, events) = run_both(ArchConfig::ShSttCc);
    let chrome = to_chrome_trace(&events);
    let v: serde::Value = serde_json::from_str(&chrome).expect("chrome trace parses");
    let top = v.as_object().expect("top level is an object");
    let trace_events = top
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v.as_array().expect("traceEvents is an array"))
        .expect("traceEvents present");
    assert!(!trace_events.is_empty());
    for ev in trace_events {
        let obj = ev.as_object().expect("event is an object");
        let ph = obj
            .iter()
            .find(|(k, _)| k == "ph")
            .and_then(|(_, v)| match v {
                serde::Value::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .expect("event has a phase");
        assert!(
            ph == "C" || ph == "i",
            "only counter and instant phases are emitted, got {ph}"
        );
    }
}
