//! Differential tests for the execution strategies: every run below is
//! executed multiple ways — the batched `Chip::advance` loop (the
//! default) against `reference_loop = true` (the naive tick-by-tick
//! oracle), and the sequential stepping loop against cluster-parallel
//! sharding at 2 and 4 workers — and all of them must agree **bit for
//! bit**: same `RunResult` (ticks, picoseconds, instructions, energy,
//! full `ChipStats`), and when tracing is on, a byte-identical exported
//! JSONL stream. That is the contract DESIGN.md §12 and §16 state: fast
//! path and cluster sharding are execution strategies, never model
//! changes.

use proptest::prelude::*;
use respin_core::arch::ArchConfig;
use respin_core::runner::{run_instrumented, RunOptions};
use respin_sim::{Chip, FaultConfig, RunResult};
use respin_trace::{to_jsonl, RingSink, Tracer};
use respin_workloads::{Benchmark, Phase, PhaseSchedule, WorkloadSpec};
use std::sync::Arc;

/// fig6-`--quick`-style options on a small machine, per-arch.
fn quick_opts(arch: ArchConfig, benchmark: Benchmark) -> RunOptions {
    let mut o = RunOptions::new(arch, benchmark);
    o.clusters = 2;
    o.cores_per_cluster = 4;
    o.instructions_per_thread = Some(8_000);
    o.warmup_per_thread = 2_000;
    o.epoch_instructions = Some(2_000);
    o.seed = 11;
    o
}

/// Runs `opts` under both loops and asserts full-result equality;
/// returns `(result, fast ticks_skipped)`.
fn both_loops(opts: &RunOptions, label: &str) -> (RunResult, u64) {
    let (fast, fast_skipped) = run_instrumented(opts);
    let mut reference = opts.clone();
    reference.reference_loop = true;
    let (oracle, oracle_skipped) = run_instrumented(&reference);
    assert_eq!(fast, oracle, "{label}: fast path diverged from reference");
    assert_eq!(oracle_skipped, 0, "{label}: reference loop must never skip");
    (fast, fast_skipped)
}

#[test]
fn fast_path_matches_reference_across_archs_and_benchmarks() {
    // One private-L1 arch, the plain shared arch, and both consolidation
    // policies (greedy + oracle exercise epoch rebuilds and migrations).
    let cases = [
        (ArchConfig::PrSramNt, Benchmark::Fft),
        (ArchConfig::ShStt, Benchmark::Radix),
        (ArchConfig::ShSttCc, Benchmark::Cholesky),
        (ArchConfig::ShSttCcOracle, Benchmark::Fft),
    ];
    for (arch, bench) in cases {
        let (result, skipped) = both_loops(&quick_opts(arch, bench), arch.name());
        assert!(result.instructions > 0, "{}: ran nothing", arch.name());
        // The workloads stall often enough that a zero skip count would
        // mean the fast path silently fell back to stepping.
        assert!(skipped > 0, "{}: fast path never batched", arch.name());
    }
}

#[test]
fn fast_path_matches_reference_with_faults_enabled() {
    // Resilience-smoke shape: write BER + retention decay + ECC + scrub
    // + a seeded bad core that gets decommissioned mid-run. Fault
    // sampling is driven by executed events, so skipping idle ticks must
    // not shift any stream.
    let opts = quick_opts(ArchConfig::ShStt, Benchmark::Radix);
    let faults = FaultConfig {
        write_ber: 1e-4,
        retention_flip_rate: 1e-12,
        retry_budget: 2,
        ecc: true,
        scrub: true,
        seeded_bad_core: Some(1),
        core_fault_threshold: 2,
        ..FaultConfig::off()
    };
    let run_with = |reference: bool| -> (RunResult, u64) {
        let mut config = opts.chip_config();
        config.faults = faults;
        let mut chip = Chip::new(config, &opts.benchmark.spec(), opts.seed);
        chip.set_reference_loop(reference);
        chip.run_warmup(opts.warmup_per_thread * 8);
        let r = chip.run_to_completion();
        let s = chip.ticks_skipped();
        (r, s)
    };
    let (fast, fast_skipped) = run_with(false);
    let (oracle, oracle_skipped) = run_with(true);
    assert_eq!(fast, oracle, "faulty run diverged between loops");
    assert!(
        fast.stats.faults.write_faults + fast.stats.faults.core_faults > 0,
        "faults must actually fire"
    );
    assert!(fast_skipped > 0);
    assert_eq!(oracle_skipped, 0);
}

#[test]
fn fast_path_produces_identical_trace_stream() {
    // Tracing must see the same history from both loops: identical
    // events in identical order, compared as exported JSONL bytes.
    let jsonl_for = |reference: bool| -> (RunResult, String) {
        let ring = Arc::new(RingSink::unbounded());
        let mut o =
            quick_opts(ArchConfig::ShSttCc, Benchmark::Radix).traced(Tracer::new(ring.clone()));
        o.reference_loop = reference;
        let (result, _) = run_instrumented(&o);
        (result, to_jsonl(&ring.snapshot()))
    };
    let (fast, fast_jsonl) = jsonl_for(false);
    let (oracle, oracle_jsonl) = jsonl_for(true);
    assert_eq!(fast, oracle, "traced run diverged between loops");
    assert!(!fast_jsonl.is_empty(), "trace must capture events");
    assert_eq!(
        fast_jsonl, oracle_jsonl,
        "exported trace streams must be byte-identical"
    );
}

proptest! {
    // Full runs are expensive; a handful of random machine shapes per CI
    // invocation still walks the whole space over time thanks to
    // proptest's persisted failure corpus.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The cluster-parallel loop is bit-identical to the sequential
    /// stepping loop (which `fast_path_matches_reference_*` ties to the
    /// naive oracle) on arbitrary small configurations at 1, 2 and 4
    /// workers — including barrier-heavy (Ocean) and lock-heavy
    /// (Radiosity) synchronisation patterns.
    #[test]
    fn cluster_parallel_matches_sequential_on_arbitrary_small_configs(
        clusters in 2usize..=4,
        cores in 2usize..=4,
        bench_ix in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let bench = [
            Benchmark::Fft,
            Benchmark::Radix,
            Benchmark::Ocean,
            Benchmark::Radiosity,
        ][bench_ix];
        let mut o = RunOptions::new(ArchConfig::ShStt, bench);
        o.clusters = clusters;
        o.cores_per_cluster = cores;
        o.instructions_per_thread = Some(3_000);
        o.warmup_per_thread = 1_000;
        o.epoch_instructions = Some(1_500);
        o.seed = seed;
        o.cluster_workers = Some(1);
        let want = run_instrumented(&o).0;
        for workers in [2usize, 4] {
            let mut wide = o.clone();
            wide.cluster_workers = Some(workers);
            let got = run_instrumented(&wide).0;
            prop_assert_eq!(
                &got, &want,
                "cluster-parallel run diverged: {} clusters × {} cores, {:?}, seed {}, {} workers",
                clusters, cores, bench, seed, workers
            );
        }
    }
}

#[test]
fn cluster_parallel_produces_identical_trace_stream_at_every_width() {
    // The byte-diff CI gate in miniature: same run, same trace bytes, at
    // every cluster-worker count (consolidation on, so epoch rebuilds
    // and VCM decisions are in the stream too).
    let jsonl_for = |workers: usize| -> (RunResult, String) {
        let ring = Arc::new(RingSink::unbounded());
        let mut o =
            quick_opts(ArchConfig::ShSttCc, Benchmark::Radix).traced(Tracer::new(ring.clone()));
        o.cluster_workers = Some(workers);
        let (result, _) = run_instrumented(&o);
        (result, to_jsonl(&ring.snapshot()))
    };
    let (seq, seq_jsonl) = jsonl_for(1);
    assert!(!seq_jsonl.is_empty(), "trace must capture events");
    for workers in [2, 4] {
        let (wide, wide_jsonl) = jsonl_for(workers);
        assert_eq!(wide, seq, "results diverged at {workers} cluster workers");
        assert_eq!(
            wide_jsonl, seq_jsonl,
            "trace streams must be byte-identical at {workers} cluster workers"
        );
    }
}

#[test]
fn fast_path_skips_heavily_on_idle_workload_and_stays_identical() {
    // A nearly-all-stall workload: the fast path should skip the vast
    // majority of ticks while reproducing the reference bit for bit.
    let ipt = 2_000;
    let phase = Phase {
        idle_prob: 0.85,
        idle_cycles: 400,
        ..Phase::compute(ipt)
    };
    let spec = WorkloadSpec {
        name: "idle-heavy-test",
        schedule: PhaseSchedule::new(vec![phase]),
        private_ws_bytes: 16 * 1024,
        shared_ws_bytes: 256 * 1024,
        locks: 0,
        seed_salt: 0x1D7E,
        instructions_per_thread: ipt,
    };
    let run_with = |reference: bool| -> (RunResult, u64) {
        let mut config = ArchConfig::ShStt.chip_config(respin_sim::CacheSizeClass::Medium, 4);
        config.clusters = 2;
        let mut chip = Chip::new(config, &spec, 3);
        chip.set_reference_loop(reference);
        let r = chip.run_to_completion();
        let s = chip.ticks_skipped();
        (r, s)
    };
    let (fast, fast_skipped) = run_with(false);
    let (oracle, oracle_skipped) = run_with(true);
    assert_eq!(fast, oracle, "idle-heavy run diverged between loops");
    assert_eq!(oracle_skipped, 0);
    assert!(
        fast_skipped > fast.ticks / 2,
        "idle-heavy workload should skip most ticks: skipped {} of {}",
        fast_skipped,
        fast.ticks
    );
}
