//! End-to-end properties of the `respin-serve` daemon (DESIGN.md §17):
//!
//! * **Three-way byte-identity** — a result computed by the one-shot
//!   runner, served live by the daemon, or served warm from its
//!   persistent store is the same bytes, under concurrent clients
//!   mixing warm and cold keys.
//! * **Restart warmth** — a daemon killed and rebound over the same
//!   store directory serves every previously-computed key warm, with
//!   bit-identical payloads and zero re-simulation.
//! * **Fault isolation** — a run that panics mid-job is journaled
//!   failed-retryable, surfaces as a structured `SRV-RUN-PANIC` error,
//!   and never poisons the content-addressed store; the connection and
//!   the daemon survive it.
//! * **Disconnect tolerance** — a client that hangs up mid-stream
//!   cannot take down the daemon or lose the job: the admitted run
//!   completes and lands warm for the next client.

use respin_core::arch::ArchConfig;
use respin_core::experiments::common::canonical_key;
use respin_core::experiments::{generate_named, ExpParams, RunCache};
use respin_core::runner::RunOptions;
use respin_serve::protocol::{encode_request, request, Request, CODE_RUN_PANIC};
use respin_serve::{Client, ResultSource, ServeOptions, Server};
use respin_workloads::Benchmark;
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Small distinct runs: cheap enough to simulate several times in the
/// suite, distinct enough to exercise the content addressing.
fn batch() -> Vec<RunOptions> {
    [
        (ArchConfig::ShStt, Benchmark::Fft, 7),
        (ArchConfig::ShSttCc, Benchmark::Ocean, 7),
        (ArchConfig::PrSramNt, Benchmark::Fft, 9),
    ]
    .into_iter()
    .map(|(arch, bench, seed)| {
        let mut o = RunOptions::new(arch, bench);
        o.clusters = 1;
        o.cores_per_cluster = 4;
        o.instructions_per_thread = Some(4_000);
        o.warmup_per_thread = 1_000;
        o.epoch_instructions = Some(1_000);
        o.seed = seed;
        o
    })
    .collect()
}

/// A run constructed to panic inside the simulator (zero-length epochs).
fn poisoned_options() -> RunOptions {
    let mut params = ExpParams::quick();
    params.instructions_per_thread = 2_000;
    params.warmup_per_thread = 500;
    let mut o = params.options(ArchConfig::ShStt, Benchmark::Fft);
    o.clusters = 1;
    o.cores_per_cluster = 4;
    o.epoch_instructions = Some(0);
    o
}

fn fresh_dir(tag: &str) -> PathBuf {
    // respin-lint: allow(D003, reason="test-only temp-dir uniquifier; never reaches results")
    static NEXT: AtomicU64 = AtomicU64::new(0);
    // respin-lint: allow(D003, reason="test-only temp-dir uniquifier; never reaches results")
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("respin-serve-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// Starts an in-process daemon; returns its socket path and the accept
/// loop's join handle (joined after a client sends `Shutdown`).
fn start_daemon(
    dir: &std::path::Path,
    store: bool,
    threads: usize,
    max_jobs: usize,
) -> (PathBuf, std::thread::JoinHandle<()>) {
    let socket = dir.join("daemon.sock");
    let opts = ServeOptions {
        socket: socket.clone(),
        store_dir: store.then(|| dir.join("store")),
        store_budget_bytes: 0,
        threads,
        max_jobs,
        quiet: true,
    };
    let server = Server::bind(&opts).expect("bind daemon");
    let handle = std::thread::spawn(move || server.run().expect("accept loop"));
    // bind() returns with the socket live; connecting needs no polling.
    (socket, handle)
}

/// The one-shot reference: serialised results straight from the runner,
/// no daemon involved.
fn direct_bytes(batch: &[RunOptions]) -> Vec<String> {
    batch
        .iter()
        .map(|o| serde_json::to_string(&respin_core::run(o)).expect("result serialises"))
        .collect()
}

#[test]
fn concurrent_clients_serve_byte_identical_results_with_warm_and_cold_keys() {
    let dir = fresh_dir("concurrent");
    let (socket, handle) = start_daemon(&dir, true, 2, 2);
    let reference = direct_bytes(&batch());

    // Seed one key warm so concurrent clients mix warm and cold.
    let mut seeder = Client::connect(&socket).expect("connect seeder");
    let seeded = seeder.sweep(vec![batch()[0].clone()], false).expect("seed");
    assert_eq!(seeded.done.live, 1, "seed run must simulate live");

    let clients: Vec<_> = (0..3)
        .map(|_| {
            let socket = socket.clone();
            let reference = reference.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&socket).expect("connect");
                let outcome = client.sweep(batch(), false).expect("sweep");
                assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
                assert_eq!(outcome.done.results, batch().len());
                for (i, result) in outcome.results.iter().enumerate() {
                    let served = serde_json::to_string(result.as_ref().expect("result present"))
                        .expect("serialises");
                    assert_eq!(
                        served, reference[i],
                        "served result {i} must be byte-identical to the one-shot runner"
                    );
                }
                outcome
            })
        })
        .collect();
    let outcomes: Vec<_> = clients
        .into_iter()
        .map(|c| c.join().expect("client"))
        .collect();
    // The seeded key must never have been re-simulated: every client
    // sees it warm (memo or store), and the daemon's memo dedups the
    // cold keys across racing clients.
    for outcome in &outcomes {
        assert_ne!(
            outcome.sources[0],
            Some(ResultSource::Live),
            "seeded key must be served warm"
        );
    }

    let mut closer = Client::connect(&socket).expect("connect closer");
    closer.shutdown().expect("shutdown");
    handle.join().expect("daemon exits");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_restart_over_the_same_store_serves_every_key_warm_and_identical() {
    let dir = fresh_dir("restart");
    let reference = direct_bytes(&batch());

    // First daemon lifetime: compute everything live.
    let (socket, handle) = start_daemon(&dir, true, 1, 1);
    let mut client = Client::connect(&socket).expect("connect");
    let first = client.sweep(batch(), false).expect("first sweep");
    assert_eq!(first.done.live, batch().len(), "cold daemon simulates all");
    client.shutdown().expect("shutdown");
    handle.join().expect("first daemon exits");

    // Second lifetime, same store, fresh memo: everything store-warm.
    let (socket, handle) = start_daemon(&dir, true, 1, 1);
    let mut client = Client::connect(&socket).expect("reconnect");
    let second = client.sweep(batch(), false).expect("second sweep");
    assert_eq!(
        second.done.warm_store,
        batch().len(),
        "restarted daemon must serve every key from the store: {:?}",
        second.done
    );
    assert_eq!(second.done.live, 0, "no re-simulation after restart");
    for (i, result) in second.results.iter().enumerate() {
        let served =
            serde_json::to_string(result.as_ref().expect("result present")).expect("serialises");
        assert_eq!(
            served, reference[i],
            "store-warm result {i} must be byte-identical to the one-shot runner"
        );
    }
    client.shutdown().expect("shutdown");
    handle.join().expect("second daemon exits");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_artifacts_are_byte_identical_to_the_shared_dispatch() {
    let dir = fresh_dir("artifact");
    let (socket, handle) = start_daemon(&dir, false, 1, 1);
    let params = ExpParams::quick();
    let (want_text, want_json) =
        generate_named("table3", &RunCache::new(), &params, None, None).expect("table3 exists");

    let mut client = Client::connect(&socket).expect("connect");
    let outcome = client.experiment("table3", true).expect("experiment");
    assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
    assert_eq!(outcome.text.as_deref(), Some(want_text.as_str()));
    assert_eq!(outcome.json.as_deref(), Some(want_json.as_str()));

    // Unknown names come back as structured errors, not hangups.
    let bogus = client.experiment("fig99", true).expect("request survives");
    assert_eq!(bogus.errors.len(), 1);
    assert_eq!(bogus.errors[0].code, "SRV-EXPERIMENT");

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exits");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panicking_run_is_journaled_retryable_and_never_poisons_the_store() {
    let dir = fresh_dir("panic");
    let (socket, handle) = start_daemon(&dir, true, 1, 1);
    let good = batch()[0].clone();
    let bad = poisoned_options();

    let mut client = Client::connect(&socket).expect("connect");
    let outcome = client
        .sweep(vec![good.clone(), bad.clone()], false)
        .expect("sweep survives the panic");
    assert!(outcome.results[0].is_some(), "good run completes");
    assert!(outcome.results[1].is_none(), "bad run yields no result");
    assert_eq!(outcome.errors.len(), 1, "one structured error");
    assert_eq!(outcome.errors[0].code, CODE_RUN_PANIC);
    assert_eq!(outcome.done.results, 1);

    // The journal records the failure as retryable; the store holds the
    // good key and emphatically not the bad one.
    let store_dir = dir.join("store");
    let replay = respin_core::persist::replay(&store_dir).expect("replay journal");
    assert_eq!(replay.failed(), 1, "panic journaled failed-retryable");
    assert_eq!(replay.completed(), 1, "good run journaled ok");
    let store = respin_serve::ResultStore::open(&store_dir, 0).expect("reopen store");
    assert!(store.contains(&canonical_key(&good)), "good key stored");
    assert!(
        !store.contains(&canonical_key(&bad)),
        "failed key must not reach the content-addressed store"
    );

    // The connection and daemon survive: the same client runs again.
    let again = client.sweep(vec![good], false).expect("connection healthy");
    assert_eq!(again.done.results, 1);
    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exits");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_disconnect_mid_stream_leaves_the_job_running_to_completion() {
    let dir = fresh_dir("hangup");
    let (socket, handle) = start_daemon(&dir, true, 1, 1);
    let run = batch()[2].clone();
    let key = canonical_key(&run);

    // A raw connection that requests a traced run and hangs up without
    // reading a single reply line.
    {
        let mut raw = UnixStream::connect(&socket).expect("connect raw");
        let line = encode_request(&request(
            1,
            Request::Run {
                options: Box::new(run.clone()),
                trace: true,
            },
        ));
        raw.write_all(line.as_bytes()).expect("send");
        raw.write_all(b"\n").expect("send newline");
        raw.flush().expect("flush");
        // Dropping the stream here closes both halves mid-stream.
    }

    // The admitted job must finish and land in the store regardless.
    // (Polled with a bounded retry count, not a wall-clock deadline —
    // rule D002 keeps `Instant` out of result-bearing crates' tests.)
    let store_dir = dir.join("store");
    let mut retries = 1200;
    loop {
        let store = respin_serve::ResultStore::open(&store_dir, 0).expect("open store");
        if store.contains(&key) {
            break;
        }
        retries -= 1;
        assert!(retries > 0, "abandoned job never reached the store");
        std::thread::sleep(Duration::from_millis(50));
    }

    // And the daemon is still healthy: a new client gets the result
    // warm (memo or store), byte-identical to the one-shot runner.
    let mut client = Client::connect(&socket).expect("reconnect");
    let outcome = client.sweep(vec![run.clone()], false).expect("sweep");
    assert_ne!(
        outcome.sources[0],
        Some(ResultSource::Live),
        "abandoned job's result must be served warm"
    );
    let served =
        serde_json::to_string(outcome.results[0].as_ref().expect("result")).expect("serialises");
    assert_eq!(served, direct_bytes(&[run])[0]);
    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exits");
    let _ = std::fs::remove_dir_all(&dir);
}
