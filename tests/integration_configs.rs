//! Cross-crate integration tests: every Table IV configuration runs end to
//! end and the paper's headline orderings hold at reduced scale.

use respin_core::arch::ArchConfig;
use respin_core::runner::{run, RunOptions};
use respin_sim::CacheSizeClass;
use respin_workloads::Benchmark;

fn small_opts(arch: ArchConfig, bench: Benchmark) -> RunOptions {
    let mut o = RunOptions::new(arch, bench);
    o.clusters = 2;
    o.cores_per_cluster = 8;
    o.instructions_per_thread = Some(24_000);
    o.warmup_per_thread = 6_000;
    o.epoch_instructions = Some(8_000);
    o.oracle_radius = 2;
    o
}

#[test]
fn every_table4_configuration_completes_every_suite_family() {
    // One SPLASH2 and one PARSEC representative through all 8 configs.
    for bench in [Benchmark::Ocean, Benchmark::Swaptions] {
        for arch in ArchConfig::ALL {
            let res = run(&small_opts(arch, bench));
            assert!(
                res.instructions >= 16 * 20_000,
                "{} on {}: only {} instructions",
                arch.name(),
                bench.name(),
                res.instructions
            );
            let e = &res.energy;
            assert!(e.core_dynamic_pj > 0.0);
            assert!(e.core_leakage_pj > 0.0);
            assert!(e.cache_dynamic_pj > 0.0);
            assert!(e.cache_leakage_pj > 0.0);
        }
    }
}

#[test]
fn shared_stt_beats_the_nt_baseline_on_time_and_energy() {
    for bench in [Benchmark::Raytrace, Benchmark::Ocean, Benchmark::Fft] {
        let base = run(&small_opts(ArchConfig::PrSramNt, bench));
        let stt = run(&small_opts(ArchConfig::ShStt, bench));
        assert!(
            stt.ticks < base.ticks,
            "{}: SH-STT must be faster ({} vs {})",
            bench.name(),
            stt.ticks,
            base.ticks
        );
        assert!(
            stt.energy.chip_total_pj() < base.energy.chip_total_pj(),
            "{}: SH-STT must save energy",
            bench.name()
        );
    }
}

#[test]
fn hp_is_fastest_but_burns_the_most_energy() {
    let bench = Benchmark::Fft;
    let base = run(&small_opts(ArchConfig::PrSramNt, bench));
    let stt = run(&small_opts(ArchConfig::ShStt, bench));
    let hp = run(&small_opts(ArchConfig::HpSramCmp, bench));
    assert!(hp.ticks < stt.ticks && hp.ticks < base.ticks, "HP fastest");
    assert!(
        hp.energy.chip_total_pj() > base.energy.chip_total_pj(),
        "HP costs more energy than the NT baseline"
    );
}

#[test]
fn sram_at_nominal_voltage_leaks_away_the_shared_cache_win() {
    let bench = Benchmark::Fft;
    let stt = run(&small_opts(ArchConfig::ShStt, bench));
    let sram = run(&small_opts(ArchConfig::ShSramNom, bench));
    // Same organisation, same timing class — but ~8× the cache leakage.
    assert!(
        sram.energy.cache_leakage_pj > 4.0 * stt.energy.cache_leakage_pj,
        "nominal SRAM must leak far more: {} vs {}",
        sram.energy.cache_leakage_pj,
        stt.energy.cache_leakage_pj
    );
    assert!(sram.energy.chip_total_pj() > stt.energy.chip_total_pj());
}

#[test]
fn larger_caches_widen_the_stt_energy_advantage() {
    let bench = Benchmark::Fft;
    let mut ratios = Vec::new();
    for size in CacheSizeClass::ALL {
        let mut b = small_opts(ArchConfig::PrSramNt, bench);
        b.size = size;
        let mut s = small_opts(ArchConfig::ShStt, bench);
        s.size = size;
        let base = run(&b);
        let stt = run(&s);
        ratios.push(stt.energy.chip_total_pj() / base.energy.chip_total_pj());
    }
    // Figure 8's trend: small → large must be monotonically better for STT.
    assert!(
        ratios[0] > ratios[1] && ratios[1] > ratios[2],
        "energy ratios must fall with cache size: {ratios:?}"
    );
}

#[test]
fn coherence_traffic_only_in_private_configurations() {
    let bench = Benchmark::Raytrace;
    let private = run(&small_opts(ArchConfig::PrSramNt, bench));
    let shared = run(&small_opts(ArchConfig::ShStt, bench));
    // Shared clusters still exchange inter-cluster messages, but private
    // L1s add intra-cluster invalidations and remote fetches on top.
    assert!(
        private.stats.coherence_messages > shared.stats.coherence_messages,
        "private {} vs shared {}",
        private.stats.coherence_messages,
        shared.stats.coherence_messages
    );
}

#[test]
fn shared_l1_services_most_read_hits_in_one_core_cycle() {
    let res = run(&small_opts(ArchConfig::ShStt, Benchmark::WaterNsq));
    let s = res.stats.shared_l1d_merged();
    assert!(
        s.one_cycle_hit_fraction() > 0.85,
        "one-cycle fraction {}",
        s.one_cycle_hit_fraction()
    );
    assert!(
        s.half_miss_fraction() < 0.15,
        "half-miss fraction {}",
        s.half_miss_fraction()
    );
}
