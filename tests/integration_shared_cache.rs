//! Integration tests for the §II-A shared-cache design driven through full
//! chip runs (the unit tests in `respin-sim` cover the controller alone).

use respin_core::arch::ArchConfig;
use respin_core::runner::{run, RunOptions};
use respin_workloads::Benchmark;

fn opts(bench: Benchmark) -> RunOptions {
    let mut o = RunOptions::new(ArchConfig::ShStt, bench);
    o.clusters = 2;
    o.cores_per_cluster = 8;
    o.instructions_per_thread = Some(24_000);
    o.warmup_per_thread = 6_000;
    o
}

#[test]
fn arrival_histogram_is_a_distribution() {
    let res = run(&opts(Benchmark::Fft));
    let s = res.stats.shared_l1d_merged();
    let total: f64 = (0..5).map(|k| s.arrival_fraction(k)).sum();
    assert!(
        (total - 1.0).abs() < 1e-9,
        "fractions sum to 1, got {total}"
    );
    assert!(s.cycles > 0);
    // Most cache cycles are quiet — NT cores are 4-6× slower than the
    // cache clock (the premise of time multiplexing).
    assert!(s.arrival_fraction(0) > 0.4, "{}", s.arrival_fraction(0));
}

#[test]
fn service_latency_histogram_consistent_with_half_misses() {
    let res = run(&opts(Benchmark::Lu));
    let s = res.stats.shared_l1d_merged();
    let hits: u64 = s.read_hit_core_cycles.iter().sum();
    // Every 2-or-more-cycle hit is exactly one half-miss event.
    let slow_hits: u64 = s.read_hit_core_cycles[1] + s.read_hit_core_cycles[2];
    assert_eq!(
        slow_hits, s.half_misses,
        "half-miss bookkeeping must match the latency histogram"
    );
    // Reads are counted at issue, hits at service: requests in flight
    // across the warm-up reset can be serviced after their issue was
    // discarded, so allow one request register per virtual core of slack.
    assert!(hits + s.read_misses <= s.reads + 16);
}

#[test]
fn higher_frequency_band_pressure_reduces_service_quality() {
    // Doubling the cores per cluster (same shared L1 scaling as §V-D)
    // must not *improve* the half-miss rate.
    let small = run(&{
        let mut o = opts(Benchmark::Streamcluster);
        o.cores_per_cluster = 4;
        o.clusters = 4;
        o
    });
    let large = run(&{
        let mut o = opts(Benchmark::Streamcluster);
        o.cores_per_cluster = 16;
        o.clusters = 1;
        o
    });
    let hm_small = small.stats.shared_l1d_merged().half_miss_fraction();
    let hm_large = large.stats.shared_l1d_merged().half_miss_fraction();
    assert!(
        hm_large >= hm_small,
        "more requesters cannot lower contention: {hm_small} -> {hm_large}"
    );
}

#[test]
fn stt_writes_do_not_starve_the_chip() {
    // streamcluster is store-heavy; despite the 5.2 ns STT writes the
    // store buffers must keep the cores flowing (IPC above a floor).
    let res = run(&opts(Benchmark::Streamcluster));
    let core_cycles_upper = res.ticks as f64 / 4.0; // fastest cores: mult 4
    let ipc_floor = res.instructions as f64 / (core_cycles_upper * 16.0);
    assert!(ipc_floor > 0.1, "chip IPC collapsed: {ipc_floor}");
}

#[test]
fn sram_shared_cache_has_more_half_misses_than_stt() {
    // The STT L1 read is rounded to one reference cycle; nominal SRAM needs
    // two — the source of SH-STT's small latency edge (§V-B).
    let stt = run(&opts(Benchmark::Fft));
    let sram = run(&{
        let mut o = opts(Benchmark::Fft);
        o.arch = ArchConfig::ShSramNom;
        o
    });
    let hm_stt = stt.stats.shared_l1d_merged().half_miss_fraction();
    let hm_sram = sram.stats.shared_l1d_merged().half_miss_fraction();
    assert!(
        hm_sram > hm_stt,
        "SRAM's extra read tick must show up as half-misses: {hm_stt} vs {hm_sram}"
    );
    // The runtime effect is ~1%; allow scheduling noise around parity.
    assert!(
        sram.ticks as f64 >= stt.ticks as f64 * 0.995,
        "SRAM should not be faster: {} vs {}",
        sram.ticks,
        stt.ticks
    );
}
