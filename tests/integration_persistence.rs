//! Crash-safety properties of the campaign persistence layer
//! (DESIGN.md §15): replaying *any* byte prefix of a valid result
//! journal — including one that cuts the final record mid-line, exactly
//! what a `SIGKILL` during an append leaves behind — must yield a cache
//! state from which resuming the campaign reproduces the uninterrupted
//! final report byte for byte.

use proptest::prelude::*;
use respin_core::arch::ArchConfig;
use respin_core::experiments::RunCache;
use respin_core::persist::{self, encode_record, JournalRecord, ResultJournal};
use respin_core::runner::RunOptions;
use respin_workloads::Benchmark;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// The tiny campaign under test: three distinct runs, small enough that
/// a full re-execution per proptest case stays in test-suite budget.
fn batch() -> Vec<RunOptions> {
    [
        (ArchConfig::ShStt, Benchmark::Fft, 7),
        (ArchConfig::ShSttCc, Benchmark::Ocean, 7),
        (ArchConfig::PrSramNt, Benchmark::Fft, 9),
    ]
    .into_iter()
    .map(|(arch, bench, seed)| {
        let mut o = RunOptions::new(arch, bench);
        o.clusters = 1;
        o.cores_per_cluster = 4;
        o.instructions_per_thread = Some(4_000);
        o.warmup_per_thread = 1_000;
        o.epoch_instructions = Some(1_000);
        o.seed = seed;
        o
    })
    .collect()
}

/// The campaign's "final report": every result, in batch order, in the
/// exact JSON the real reports are built from.
fn final_report(cache: &RunCache) -> String {
    cache
        .run_all(&batch())
        .iter()
        .map(|r| serde_json::to_string(r.as_ref()).expect("result serialises"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn fresh_dir(tag: &str) -> PathBuf {
    // respin-lint: allow(D003, reason="test-only temp-dir uniquifier; never reaches results")
    static NEXT: AtomicU64 = AtomicU64::new(0);
    // respin-lint: allow(D003, reason="test-only temp-dir uniquifier; never reaches results")
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "respin-persistence-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// Built once: the uninterrupted baseline report, and the full journal
/// text that campaign produced — with one `Failed` (retryable) record
/// appended so prefixes also exercise the must-not-warm path.
fn baseline() -> &'static (String, String) {
    static BASELINE: OnceLock<(String, String)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let dir = fresh_dir("baseline");
        let journal = Arc::new(ResultJournal::open(&dir).expect("open journal"));
        let cache = RunCache::new().with_journal(journal);
        let report = final_report(&cache);
        let mut text = fs::read_to_string(dir.join(persist::JOURNAL_FILE)).expect("journal text");
        let failed = encode_record(&JournalRecord::failed(
            serde_json::to_string(&batch()[0]).expect("key serialises"),
            "injected: panicked in an earlier campaign",
        ));
        text.push_str(&failed);
        text.push('\n');
        let _ = fs::remove_dir_all(&dir);
        (report, text)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any byte prefix of the journal — a crash can stop the writer at
    /// any point inside an append — replays to a warm-cache state from
    /// which the resumed campaign's report is byte-identical to the
    /// never-interrupted baseline.
    #[test]
    fn any_journal_prefix_resumes_to_an_identical_report(
        on_boundary in 0usize..2,
        raw in 0usize..1_000_000,
    ) {
        let (want_report, journal_text) = baseline();
        // Half the cases cut exactly at a record boundary (a crash
        // between appends), half at an arbitrary byte (a torn append).
        let cut = if on_boundary == 0 {
            let mut boundaries = vec![0usize];
            boundaries.extend(
                journal_text
                    .char_indices()
                    .filter(|(_, c)| *c == '\n')
                    .map(|(i, _)| i + 1),
            );
            boundaries[raw % boundaries.len()]
        } else {
            raw % (journal_text.len() + 1)
        };
        let prefix = &journal_text[..cut];

        let dir = fresh_dir("prefix");
        fs::write(dir.join(persist::JOURNAL_FILE), prefix).expect("seed journal prefix");

        let replay = persist::replay(&dir).expect("replay");
        // A cut strictly inside a line is the torn-tail case: replay must
        // flag and truncate it, never error or panic.
        let at_boundary = cut == 0 || prefix.ends_with('\n');
        prop_assert_eq!(replay.truncated, !at_boundary);
        prop_assert!(replay.records.len() <= batch().len() + 1);

        let cache = RunCache::new()
            .with_journal(Arc::new(ResultJournal::open(&dir).expect("reopen journal")));
        let warmed = cache.warm(&replay.records);
        prop_assert_eq!(warmed, replay.completed());

        let got_report = final_report(&cache);
        prop_assert_eq!(&got_report, want_report);

        // And the repaired journal replays clean: resuming twice is safe.
        let again = persist::replay(&dir).expect("second replay");
        prop_assert!(!again.truncated);
        let _ = fs::remove_dir_all(&dir);
    }
}
