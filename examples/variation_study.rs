//! Process variation at near-threshold: sample many fabricated chips and
//! show (a) the frequency-bin populations VARIUS-style correlated Vth
//! fields produce, (b) how chip-to-chip variation moves performance and
//! energy, and (c) why the §III-C remapper ranks fast cores first.
//!
//! ```sh
//! cargo run --release --example variation_study
//! ```

use respin_core::{
    arch::ArchConfig,
    runner::{run, RunOptions},
};
use respin_variation::{FrequencyBand, VariationConfig, VariationMap};
use respin_workloads::Benchmark;

fn main() {
    // ---- Part 1: frequency binning across fabricated chips ---------------
    let config = VariationConfig::default();
    let chips = 200;
    let mut bins = [0u64; 3]; // multiples 4, 5, 6
    let mut leak_of_fast = 0.0;
    let mut leak_of_slow = 0.0;
    for seed in 0..chips {
        let map = VariationMap::generate(&config, 0.4, FrequencyBand::NT, seed);
        for (i, &mult) in map.period_mult.iter().enumerate() {
            bins[(mult - 4) as usize] += 1;
            if mult == 4 {
                leak_of_fast += map.leakage_factor[i];
            }
            if mult == 6 {
                leak_of_slow += map.leakage_factor[i];
            }
        }
    }
    let total: u64 = bins.iter().sum();
    println!(
        "frequency bins over {chips} fabricated 64-core chips (Vth σ = {} mV):\n",
        config.sigma_vth * 1000.0
    );
    for (i, &count) in bins.iter().enumerate() {
        let mult = i as u64 + 4;
        let mhz = 1e6 / (mult as f64 * 400.0);
        let share = count as f64 / total as f64;
        let bar = "#".repeat((share * 60.0) as usize);
        println!(
            "  {mult}×0.4 ns ({mhz:>5.0} MHz): {:>5.1}% {bar}",
            share * 100.0
        );
    }
    println!(
        "\nfast (625 MHz) cores leak {:.2}× the slow (417 MHz) ones on average —",
        (leak_of_fast / bins[0].max(1) as f64) / (leak_of_slow / bins[2].max(1) as f64)
    );
    println!("yet they are still the efficient ones: leakage is paid per *time*, and they");
    println!("finish 1.5× sooner. That is why the §III-C remapper hosts threads fastest-first.\n");

    // ---- Part 2: chip-to-chip performance/energy spread -------------------
    println!("chip-to-chip spread of the SH-STT design (same workload, different dies):\n");
    println!(
        "{:>6} {:>12} {:>12} {:>14}",
        "seed", "time (µs)", "power (mW)", "energy (µJ)"
    );
    let mut times = Vec::new();
    for seed in [1u64, 2, 3, 4, 5] {
        let mut opts = RunOptions::new(ArchConfig::ShStt, Benchmark::WaterNsq);
        opts.instructions_per_thread = Some(60_000);
        opts.seed = seed;
        let r = run(&opts);
        times.push(r.time_ps);
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>14.2}",
            seed,
            r.time_ps / 1e6,
            r.average_power_mw(),
            r.energy.chip_total_pj() / 1e6
        );
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0, f64::max);
    println!(
        "\nspread: {:.1}% — the shared-cache clocking absorbs per-core binning because\n\
         every core still aligns to the 0.4 ns reference edge (§II).",
        (max / min - 1.0) * 100.0
    );
}
