//! Quickstart: build the paper's proposed chip (SH-STT — near-threshold
//! cores around cluster-shared STT-RAM caches), run one benchmark, and
//! print the headline numbers next to the conventional NT baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use respin_core::{
    arch::ArchConfig,
    runner::{run, RunOptions},
};
use respin_workloads::Benchmark;

fn main() {
    let benchmark = Benchmark::Fft;
    println!(
        "running {} on a 64-core chip (4 × 16-core clusters)…\n",
        benchmark.name()
    );

    let mut rows = Vec::new();
    for arch in [ArchConfig::PrSramNt, ArchConfig::ShStt] {
        let mut opts = RunOptions::new(arch, benchmark);
        // Modest budget so the example finishes in a few seconds.
        opts.instructions_per_thread = Some(80_000);
        let result = run(&opts);
        rows.push((arch, result));
    }

    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>14}",
        "config", "time (µs)", "power (mW)", "energy (µJ)", "leakage share"
    );
    for (arch, r) in &rows {
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>12.2} {:>13.1}%",
            arch.name(),
            r.time_ps / 1e6,
            r.average_power_mw(),
            r.energy.chip_total_pj() / 1e6,
            r.energy.leakage_pj() / r.energy.chip_total_pj() * 100.0
        );
    }

    let base = &rows[0].1;
    let stt = &rows[1].1;
    println!(
        "\nSH-STT vs the PR-SRAM-NT baseline: {:.1}% of the execution time, {:.1}% of the energy",
        stt.time_ps / base.time_ps * 100.0,
        stt.energy.chip_total_pj() / base.energy.chip_total_pj() * 100.0
    );

    let l1 = stt.stats.shared_l1d_merged();
    println!(
        "shared DL1: {:.1}% of read hits served in one core cycle, {:.2}% half-misses",
        l1.one_cycle_hit_fraction() * 100.0,
        l1.half_miss_fraction() * 100.0
    );
}
