//! Drive the §II-A time-multiplexed shared-L1 controller directly and
//! visualise its arbitration: deadline-ordered service, half-misses under
//! contention, and the Figure 3 example reproduced step by step.
//!
//! ```sh
//! cargo run --release --example shared_cache_contention
//! ```

use respin_power::{array_params, CacheGeometry, MemTech};
use respin_sim::cache::LineState;
use respin_sim::shared_l1::{L1Event, SharedL1};

fn controller(cores: usize) -> SharedL1 {
    let geometry = CacheGeometry::new(256 * 1024, 32, 4);
    let params = array_params(MemTech::SttRam, geometry, 1.0);
    // STT-RAM read rounded to one 0.4 ns cycle; writes occupy 5.2 ns.
    SharedL1::new(geometry, &params, 1, 14, cores, 0.6, 2)
}

fn main() {
    // ---- Part 1: the Figure 3 example -----------------------------------
    // Five cores with periods 4/5/6/5/6 cache cycles issue reads in two
    // waves; the controller services the soonest deadline first and
    // half-misses what it cannot fit.
    println!("Figure 3 walk-through: 5 cores, one read port\n");
    let mut l1 = controller(5);
    for addr in [0x100u64, 0x200, 0x300, 0x400, 0x500] {
        l1.enqueue_fill(addr, 0, LineState::Exclusive);
    }
    let mut events = Vec::new();
    for t in 0..5 {
        l1.tick(t, &mut events); // service the warm-up fills
    }
    events.clear();

    let mults = [4u64, 5, 6, 5, 6];
    // Wave 1 at t=8 (a common cycle boundary), wave 2 one tick later.
    l1.issue_read(0, 0x100, 8, mults[0]);
    l1.issue_read(2, 0x300, 8, mults[2]);
    l1.issue_read(3, 0x400, 8, mults[3]);
    for t in 8..30 {
        events.clear();
        l1.tick(t, &mut events);
        if t == 9 {
            l1.issue_read(1, 0x200, 10, mults[1]);
            l1.issue_read(4, 0x500, 10, mults[4]);
        }
        for ev in &events {
            if let L1Event::ReadDone {
                core,
                completion_tick,
            } = ev
            {
                println!(
                    "  tick {t:>2}: core {core} serviced, data usable at its cycle boundary {completion_tick} \
                     ({} core cycle{})",
                    (completion_tick - if *core == 1 || *core == 4 { 10 } else { 8 }) / mults[*core],
                    if (completion_tick - if *core == 1 || *core == 4 { 10 } else { 8 }) / mults[*core] > 1 { "s — half-miss" } else { "" },
                );
            }
        }
    }
    let s = l1.stats();
    println!(
        "\n  controller stats: {} reads, {} half-misses, service histogram {:?}\n",
        s.reads, s.half_misses, s.read_hit_core_cycles
    );

    // ---- Part 2: contention sweep ---------------------------------------
    // Load the controller with rising request rates and watch the
    // single-cycle service fraction fall — the effect that bounds the
    // paper's cluster size at 16 (§V-D).
    println!("contention sweep: request probability per core per cycle vs service quality\n");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "p(request)", "1-cycle %", "half-miss %", "0-arrival %"
    );
    for load_percent in [5u64, 10, 20, 30, 40] {
        let cores = 16usize;
        let mut l1 = controller(cores);
        for c in 0..cores {
            l1.enqueue_fill((c as u64) << 10, 0, LineState::Exclusive);
        }
        let mut events = Vec::new();
        for t in 0..cores as u64 {
            l1.tick(t, &mut events);
        }
        let mults = [4u64, 5, 6, 4, 5, 6, 4, 5, 6, 4, 5, 6, 4, 5, 6, 4];
        // Deterministic pseudo-random issue pattern.
        let mut state = 0x12345678u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % 100
        };
        let mut busy_until = vec![0u64; cores];
        for t in 16..40_000u64 {
            events.clear();
            l1.tick(t, &mut events);
            for ev in &events {
                match ev {
                    L1Event::ReadDone {
                        core,
                        completion_tick,
                    } => busy_until[*core] = *completion_tick,
                    L1Event::ReadMiss { core, addr, .. } => {
                        // Pretend the L2 answers instantly for this demo.
                        l1.enqueue_fill(*addr, t + 1, LineState::Exclusive);
                        busy_until[*core] = t + 8;
                    }
                    _ => {}
                }
            }
            for c in 0..cores {
                let m = mults[c];
                if t % m == 0
                    && t >= busy_until[c]
                    && l1.can_accept_read(c)
                    && rand() < load_percent
                {
                    l1.issue_read(c, (c as u64) << 10, t, m);
                    busy_until[c] = u64::MAX; // until the response arrives
                }
            }
        }
        let s = l1.stats();
        println!(
            "{:>9}% {:>11.1}% {:>11.2}% {:>11.1}%",
            load_percent,
            s.one_cycle_hit_fraction() * 100.0,
            s.half_miss_fraction() * 100.0,
            s.arrival_fraction(0) * 100.0
        );
    }
    println!("\nhigher load → more deadline collisions → more 2-cycle (half-miss) services.");
}
