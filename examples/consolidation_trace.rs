//! Reproduce the paper's Figure 12 experience interactively: run radix
//! under greedy dynamic core consolidation and print the active-core trace
//! as an ASCII strip chart, next to the oracle's.
//!
//! ```sh
//! cargo run --release --example consolidation_trace [benchmark]
//! ```

use respin_core::{
    arch::ArchConfig,
    runner::{run, RunOptions},
};
use respin_workloads::Benchmark;

fn trace_chart(label: &str, trace: &[(u64, usize)], end_tick: u64, clusters: f64) -> String {
    // Sample the step function at 64 points across the run.
    let mut out = format!("{label:<18} ");
    let t0 = trace.first().map(|&(t, _)| t).unwrap_or(0);
    let span = end_tick.saturating_sub(t0).max(1);
    for i in 0..64 {
        let t = t0 + span * i / 64;
        let active = trace
            .iter()
            .take_while(|&&(tt, _)| tt <= t)
            .last()
            .map(|&(_, a)| a)
            .unwrap_or(trace.first().map(|&(_, a)| a).unwrap_or(0));
        let per_cluster = active as f64 / clusters;
        // 16 cores → glyph ladder.
        let glyph = match per_cluster as usize {
            0..=2 => '▁',
            3..=4 => '▂',
            5..=6 => '▃',
            7..=8 => '▄',
            9..=10 => '▅',
            11..=12 => '▆',
            13..=14 => '▇',
            _ => '█',
        };
        out.push(glyph);
    }
    out
}

fn main() {
    let benchmark = std::env::args()
        .nth(1)
        .and_then(|n| Benchmark::from_name(&n))
        .unwrap_or(Benchmark::Radix);
    println!(
        "dynamic core consolidation on {} (16-core clusters; bar height = active cores)\n",
        benchmark.name()
    );

    let baseline = {
        let mut o = RunOptions::new(ArchConfig::ShStt, benchmark);
        o.instructions_per_thread = Some(160_000);
        o.epoch_instructions = Some(40_000);
        run(&o)
    };

    for arch in [ArchConfig::ShSttCc, ArchConfig::ShSttCcOracle] {
        let mut opts = RunOptions::new(arch, benchmark);
        opts.instructions_per_thread = Some(160_000);
        opts.epoch_instructions = Some(40_000);
        let r = run(&opts);
        let end = r
            .stats
            .consolidation_trace
            .first()
            .map(|&(t, _)| t)
            .unwrap_or(0)
            + r.ticks;
        println!(
            "{}",
            trace_chart(arch.name(), &r.stats.consolidation_trace, end, 4.0)
        );
        println!(
            "{:<18} energy vs SH-STT: {:+.1}%   time: {:+.1}%   migrations: {}\n",
            "",
            (r.energy.chip_total_pj() / baseline.energy.chip_total_pj() - 1.0) * 100.0,
            (r.ticks as f64 / baseline.ticks as f64 - 1.0) * 100.0,
            r.stats.migrations
        );
    }
    println!(
        "the oracle adapts immediately; the greedy search walks one core at a time (Fig. 12/13)."
    );
}
