//! The §V-D design-space question: how many near-threshold cores should
//! share one L1? Sweeps cluster sizes 4/8/16/32 (shared L1 scaled
//! proportionally, 64 cores total) and prints the speedup over the private
//! baseline together with the shared-cache service quality.
//!
//! ```sh
//! cargo run --release --example cluster_sweep
//! ```

use respin_core::{
    arch::ArchConfig,
    runner::{run, RunOptions},
};
use respin_workloads::Benchmark;

fn main() {
    let benchmark = Benchmark::Ocean; // synchronisation-heavy: feels cluster size strongly
    println!(
        "cluster-size sweep on {} (64 cores total, shared L1 = 16 KiB × cluster size)\n",
        benchmark.name()
    );
    println!(
        "{:>13} {:>11} {:>11} {:>9} {:>11} {:>11}",
        "cores/cluster", "L1D (KiB)", "time (µs)", "speedup", "1-cycle %", "half-miss %"
    );

    // Fixed baseline: the paper's default private-cache machine.
    let base = {
        let mut o = RunOptions::new(ArchConfig::PrSramNt, benchmark);
        o.instructions_per_thread = Some(80_000);
        run(&o)
    };
    for n in [4usize, 8, 16, 32] {
        let sh = {
            let mut o = RunOptions::new(ArchConfig::ShStt, benchmark);
            o.cores_per_cluster = n;
            o.clusters = 64 / n;
            o.instructions_per_thread = Some(80_000);
            run(&o)
        };
        let l1 = sh.stats.shared_l1d_merged();
        println!(
            "{:>13} {:>11} {:>11.1} {:>8.1}% {:>10.1}% {:>10.2}%",
            n,
            16 * n,
            sh.time_ps / 1e6,
            (1.0 - sh.ticks as f64 / base.ticks as f64) * 100.0,
            l1.one_cycle_hit_fraction() * 100.0,
            l1.half_miss_fraction() * 100.0
        );
    }
    println!("\nthe paper finds 16 optimal: beyond it, twice the requesters meet a slower array.");
}
