//! Cross-technology consistency of the array models: properties that must
//! hold for any geometry/voltage the simulator can request, including the
//! banked-energy boundary.

use proptest::prelude::*;
use respin_power::{array_params, CacheGeometry, MemTech};

fn geom(cap_pow: u32, block: u32, assoc: u32) -> CacheGeometry {
    CacheGeometry::new(1u64 << cap_pow, block, assoc)
}

proptest! {
    /// Latency, energy, and leakage are monotone non-decreasing in
    /// capacity for both technologies.
    #[test]
    fn monotone_in_capacity(
        cap_pow in 14u32..26,
        stt in proptest::bool::ANY,
    ) {
        let tech = if stt { MemTech::SttRam } else { MemTech::Sram };
        let small = array_params(tech, geom(cap_pow, 64, 8), 1.0);
        let big = array_params(tech, geom(cap_pow + 1, 64, 8), 1.0);
        prop_assert!(big.read_latency_ps >= small.read_latency_ps);
        prop_assert!(big.read_energy_pj >= small.read_energy_pj);
        prop_assert!(big.leakage_mw >= small.leakage_mw);
        prop_assert!(big.area_mm2 >= small.area_mm2);
    }

    /// Lowering the rail always slows the array and cuts dynamic energy
    /// and leakage, for both technologies.
    #[test]
    fn monotone_in_voltage(
        cap_pow in 14u32..24,
        vdd in 0.62f64..0.98,
        stt in proptest::bool::ANY,
    ) {
        let tech = if stt { MemTech::SttRam } else { MemTech::Sram };
        let g = geom(cap_pow, 32, 4);
        let lo = array_params(tech, g, vdd);
        let hi = array_params(tech, g, 1.0);
        prop_assert!(lo.read_latency_ps > hi.read_latency_ps);
        prop_assert!(lo.read_energy_pj < hi.read_energy_pj);
        prop_assert!(lo.leakage_mw < hi.leakage_mw);
        prop_assert!((lo.area_mm2 - hi.area_mm2).abs() < 1e-12);
    }

    /// STT-RAM always leaks less and packs denser than SRAM at equal
    /// geometry and voltage — the paper's two headline device claims.
    #[test]
    fn stt_beats_sram_on_leakage_and_density(
        cap_pow in 14u32..26,
        vdd in 0.65f64..1.0,
    ) {
        let g = geom(cap_pow, 64, 8);
        let stt = array_params(MemTech::SttRam, g, vdd);
        let sram = array_params(MemTech::Sram, g, vdd);
        prop_assert!(stt.leakage_mw * 5.0 < sram.leakage_mw);
        prop_assert!(stt.area_mm2 * 3.0 < sram.area_mm2);
        // And writes are the price: slower than SRAM's.
        prop_assert!(stt.write_latency_ps > sram.write_latency_ps);
    }
}

/// The banked-energy law must be continuous at the bank boundary: a tiny
/// step across 256 KB cannot jump the access energy.
#[test]
fn banked_energy_continuous_at_boundary() {
    for tech in [MemTech::Sram, MemTech::SttRam] {
        let below = array_params(tech, CacheGeometry::new(256 * 1024, 64, 8), 1.0);
        let above = array_params(tech, CacheGeometry::new(512 * 1024, 64, 8), 1.0);
        let ratio = above.read_energy_pj / below.read_energy_pj;
        assert!(
            (1.0..1.25).contains(&ratio),
            "{tech:?}: doubling across the bank boundary scaled energy by {ratio}"
        );
    }
}

/// Leakage additivity: 16 private 16 KB arrays leak the same as one
/// 256 KB array (the identity the paper's Table III encodes).
#[test]
fn leakage_is_additive_across_banking() {
    for tech in [MemTech::Sram, MemTech::SttRam] {
        let one = array_params(tech, CacheGeometry::new(16 * 1024, 32, 4), 0.65);
        let big = array_params(tech, CacheGeometry::new(256 * 1024, 32, 4), 0.65);
        let ratio = big.leakage_mw / (16.0 * one.leakage_mw);
        assert!(
            (0.99..1.01).contains(&ratio),
            "{tech:?}: 16×16KB vs 256KB leakage ratio {ratio}"
        );
    }
}
