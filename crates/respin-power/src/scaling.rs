//! Voltage/frequency/leakage scaling laws.
//!
//! Three relations drive every number in this crate:
//!
//! 1. **Alpha-power-law gate delay** (Sakurai–Newton):
//!    `delay ∝ Vdd / (Vdd − Vth)^α` with `α ≈ 1.3` for modern short-channel
//!    devices. Near threshold the denominator collapses, which is exactly the
//!    ~5–10× slowdown the paper relies on.
//! 2. **Dynamic energy** per switching event `∝ C·Vdd²`.
//! 3. **Leakage power** `∝ Vdd` over the 0.4–1.0 V range. This linear model
//!    is what the paper states ("leakage power only scales linearly") and is
//!    exactly consistent with Table III (573 → 881 over 0.65 → 1.0 V).

use serde::{Deserialize, Serialize};

/// Default velocity-saturation exponent for the alpha-power law.
pub const DEFAULT_ALPHA: f64 = 1.3;

/// Threshold voltage of core logic transistors (volts). Chosen so that
/// scaling 1.0 V → 0.4 V slows a 2.5 GHz core to ≈ 500 MHz, the paper's
/// mid-band NT core frequency.
pub const CORE_LOGIC_VTH: f64 = 0.30;

/// Effective threshold of the SRAM array critical path (volts). Higher than
/// logic Vth because SRAM cells use the smallest devices and degrade fastest
/// at low voltage; calibrated so 16 KB SRAM slows 211.9 ps → 1337 ps when
/// dropping 1.0 V → 0.65 V (Table III).
pub const SRAM_ARRAY_VTH: f64 = 0.577;

/// Relative alpha-power-law delay at `vdd` normalised to 1.0 V.
///
/// Returns `f64::INFINITY` when `vdd <= vth` (the circuit does not switch).
///
/// ```
/// use respin_power::scaling::{alpha_power_delay_factor, CORE_LOGIC_VTH, DEFAULT_ALPHA};
/// let slow = alpha_power_delay_factor(0.4, CORE_LOGIC_VTH, DEFAULT_ALPHA);
/// assert!(slow > 4.5 && slow < 5.5); // ≈ 5× slowdown at NT
/// ```
pub fn alpha_power_delay_factor(vdd: f64, vth: f64, alpha: f64) -> f64 {
    if vdd <= vth {
        return f64::INFINITY;
    }
    let delay = |v: f64| v / (v - vth).powf(alpha);
    delay(vdd) / delay(1.0)
}

/// Bundle of the three scaling laws for one circuit family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageScaling {
    /// Threshold voltage of this circuit family (volts).
    pub vth: f64,
    /// Alpha-power-law exponent.
    pub alpha: f64,
}

impl VoltageScaling {
    /// Scaling laws for core logic.
    pub fn core_logic() -> Self {
        Self {
            vth: CORE_LOGIC_VTH,
            alpha: DEFAULT_ALPHA,
        }
    }

    /// Scaling laws for SRAM arrays.
    pub fn sram_array() -> Self {
        Self {
            vth: SRAM_ARRAY_VTH,
            alpha: DEFAULT_ALPHA,
        }
    }

    /// Relative delay at `vdd` vs 1.0 V (≥ 1 below nominal).
    pub fn delay_factor(&self, vdd: f64) -> f64 {
        alpha_power_delay_factor(vdd, self.vth, self.alpha)
    }

    /// Relative dynamic energy per event at `vdd` vs 1.0 V (`Vdd²`).
    pub fn dynamic_energy_factor(&self, vdd: f64) -> f64 {
        vdd * vdd
    }

    /// Relative leakage power at `vdd` vs 1.0 V (linear, per Table III).
    pub fn leakage_factor(&self, vdd: f64) -> f64 {
        vdd
    }

    /// Maximum clock frequency (MHz) at `vdd` given the nominal (1.0 V)
    /// frequency, with an optional per-instance threshold shift `dvth`
    /// (volts) from process variation. Positive `dvth` (higher threshold)
    /// slows the instance.
    pub fn fmax_mhz(&self, nominal_mhz: f64, vdd: f64, dvth: f64) -> f64 {
        let factor = alpha_power_delay_factor(vdd, self.vth + dvth, self.alpha);
        if !factor.is_finite() {
            return 0.0;
        }
        nominal_mhz / factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_is_one_at_nominal() {
        let s = VoltageScaling::core_logic();
        assert!((s.delay_factor(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delay_monotonically_decreasing_in_vdd() {
        let s = VoltageScaling::core_logic();
        let mut prev = f64::INFINITY;
        let mut v = s.vth + 0.05;
        while v <= 1.2 {
            let d = s.delay_factor(v);
            assert!(d < prev, "delay should fall as vdd rises");
            prev = d;
            v += 0.05;
        }
    }

    #[test]
    fn below_threshold_does_not_switch() {
        let s = VoltageScaling::core_logic();
        assert_eq!(s.delay_factor(0.2), f64::INFINITY);
        assert_eq!(s.fmax_mhz(2500.0, 0.2, 0.0), 0.0);
    }

    #[test]
    fn nt_core_frequency_band_matches_paper() {
        // The paper's NT cores span roughly 417–625 MHz at 0.4 V depending on
        // the per-core Vth draw. ±30 mV around the nominal threshold should
        // bracket that band from a 2.5 GHz nominal design.
        let s = VoltageScaling::core_logic();
        let slow = s.fmax_mhz(2500.0, 0.4, 0.030);
        let mid = s.fmax_mhz(2500.0, 0.4, 0.0);
        let fast = s.fmax_mhz(2500.0, 0.4, -0.030);
        assert!(slow < 450.0, "slow core {slow} MHz");
        assert!(mid > 450.0 && mid < 560.0, "mid core {mid} MHz");
        assert!(fast > 600.0, "fast core {fast} MHz");
        // "fast cores are almost twice as fast as slow ones"
        assert!(fast / slow > 1.6 && fast / slow < 2.6);
    }

    #[test]
    fn sram_voltage_slowdown_matches_table3() {
        // 1337 / 211.9 = 6.31× going 1.0 V → 0.65 V.
        let s = VoltageScaling::sram_array();
        let ratio = s.delay_factor(0.65);
        let target = 1337.0 / 211.9;
        assert!(
            (ratio - target).abs() / target < 0.05,
            "ratio {ratio} vs table {target}"
        );
    }

    #[test]
    fn energy_and_leakage_factors() {
        let s = VoltageScaling::core_logic();
        assert!((s.dynamic_energy_factor(0.65) - 0.4225).abs() < 1e-12);
        assert!((s.leakage_factor(0.65) - 0.65).abs() < 1e-12);
    }
}
