//! Regenerates the paper's Table III (L1 data-cache technology parameters)
//! from the analytical models, as a calibration check and for the
//! `respin-experiments table3` command.

use crate::sram::{l1d_private_geometry, l1d_shared_geometry, SramModel};
use crate::sttram::SttRamModel;
use crate::{ArrayModel, ArrayParams};
use serde::{Deserialize, Serialize};

/// One row of Table III.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Array label as printed in the paper.
    pub label: String,
    /// Supply voltage (volts).
    pub vdd: f64,
    /// Model outputs at that voltage.
    pub params: ArrayParams,
    /// The paper's published values for comparison
    /// (area, read latency, write latency, read energy, leakage).
    pub paper: PaperRow,
}

/// Published Table III values.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PaperRow {
    /// Area in mm² (for the full 256 KB of capacity).
    pub area_mm2: f64,
    /// Read latency in ps.
    pub read_latency_ps: f64,
    /// Write latency in ps.
    pub write_latency_ps: f64,
    /// Read energy in pJ.
    pub read_energy_pj: f64,
    /// Leakage in µW (the paper's unit for this column).
    pub leakage_uw: f64,
}

/// Generates all four Table III rows from the models.
pub fn generate() -> Vec<Table3Row> {
    let sram = SramModel::default();
    let stt = SttRamModel::default();

    let p16 = l1d_private_geometry();
    let p256 = l1d_shared_geometry();

    let scale16 = |mut p: ArrayParams| {
        // The paper reports the 16 KB row as "16 KB × 16": one cluster's
        // worth of private L1Ds. Area and leakage are for all 16 banks.
        p.area_mm2 *= 16.0;
        p.leakage_mw *= 16.0;
        p
    };

    vec![
        Table3Row {
            label: "SRAM (16KB x 16)".into(),
            vdd: 0.65,
            params: scale16(sram.params(p16, 0.65)),
            paper: PaperRow {
                area_mm2: 0.9176,
                read_latency_ps: 1337.0,
                write_latency_ps: 1337.0,
                read_energy_pj: 2.578,
                leakage_uw: 573.0,
            },
        },
        Table3Row {
            label: "SRAM (16KB x 16)".into(),
            vdd: 1.0,
            params: scale16(sram.params(p16, 1.0)),
            paper: PaperRow {
                area_mm2: 0.9176,
                read_latency_ps: 211.9,
                write_latency_ps: 211.9,
                read_energy_pj: 6.102,
                leakage_uw: 881.0,
            },
        },
        Table3Row {
            label: "SRAM (256KB)".into(),
            vdd: 1.0,
            params: sram.params(p256, 1.0),
            paper: PaperRow {
                area_mm2: 0.9176,
                read_latency_ps: 533.6,
                write_latency_ps: 533.6,
                read_energy_pj: 42.41,
                leakage_uw: 881.0,
            },
        },
        Table3Row {
            label: "STT-RAM (256KB)".into(),
            vdd: 1.0,
            params: stt.params(p256, 1.0),
            paper: PaperRow {
                area_mm2: 0.2451,
                read_latency_ps: 588.2,
                write_latency_ps: 5208.0,
                read_energy_pj: 29.32,
                leakage_uw: 114.0,
            },
        },
    ]
}

/// Renders the table as aligned text, with model-vs-paper columns.
pub fn render_text() -> String {
    let mut out = String::new();
    out.push_str(
        "Table III: L1 data cache technology parameters (model vs paper)\n\
         array              Vdd   area mm2 (paper)   rd ps (paper)    wr ps (paper)    rd pJ (paper)    leak uW (paper)\n",
    );
    for row in generate() {
        let p = &row.params;
        let q = &row.paper;
        out.push_str(&format!(
            "{:<18} {:<5} {:>8.4} ({:<7.4}) {:>8.1} ({:<7.1}) {:>8.1} ({:<7.1}) {:>7.3} ({:<6.3}) {:>8.1} ({:<6.1})\n",
            row.label,
            row.vdd,
            p.area_mm2,
            q.area_mm2,
            p.read_latency_ps,
            q.read_latency_ps,
            p.write_latency_ps,
            q.write_latency_ps,
            p.read_energy_pj,
            q.read_energy_pj,
            p.leakage_mw * 1000.0,
            q.leakage_uw,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_within_five_percent_of_paper() {
        for row in generate() {
            let p = &row.params;
            let q = &row.paper;
            let checks = [
                ("area", p.area_mm2, q.area_mm2),
                ("rd_lat", p.read_latency_ps, q.read_latency_ps),
                ("wr_lat", p.write_latency_ps, q.write_latency_ps),
                ("rd_energy", p.read_energy_pj, q.read_energy_pj),
                ("leak", p.leakage_mw * 1000.0, q.leakage_uw),
            ];
            for (name, got, want) in checks {
                let err = (got - want).abs() / want;
                assert!(
                    err < 0.05,
                    "{} {name}: model {got} vs paper {want} ({:.1}% off)",
                    row.label,
                    err * 100.0
                );
            }
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let text = render_text();
        assert_eq!(text.matches("SRAM (16KB x 16)").count(), 2);
        assert!(text.contains("STT-RAM (256KB)"));
    }
}
