//! # respin-power — technology and power models
//!
//! Analytical technology models standing in for the CACTI, NVSim, and McPAT
//! tool chain used by the Respin paper (Pan, Bacha, Teodorescu, IPDPS 2017).
//!
//! The paper consumes only scalar outputs from those tools: per-structure
//! access latency, per-access energy, leakage power, and area, at a given
//! supply voltage. This crate produces the same scalars from compact
//! analytical models that are **calibrated to reproduce the paper's
//! Table III** (L1 data-cache technology parameters):
//!
//! | Array              | Vdd   | Area (mm²) | Rd/Wr lat (ps) | Rd/Wr energy (pJ) | Leakage (µW) |
//! |--------------------|-------|------------|----------------|-------------------|---------|
//! | SRAM 16 KB × 16    | 0.65  | 0.9176     | 1337           | 2.578             | 573     |
//! | SRAM 16 KB × 16    | 1.0   | 0.9176     | 211.9          | 6.102             | 881     |
//! | SRAM 256 KB        | 1.0   | 0.9176     | 533.6          | 42.41             | 881     |
//! | STT-RAM 256 KB     | 1.0   | 0.2451     | 588.2 / 5208   | 29.32             | 114     |
//!
//! The published numbers pin down the scaling laws exactly:
//!
//! * **Leakage** is linear in capacity *and* in Vdd (573/881 = 0.650 = the
//!   voltage ratio; 881 is the same for 16 × 16 KB and 1 × 256 KB).
//! * **Dynamic energy** scales with `V²` (2.578/6.102 = 0.4225 = 0.65²) and
//!   with `capacity^0.7` (42.41/6.102 ≈ 16^0.7).
//! * **Latency** scales with `capacity^(1/3)` (533.6/211.9 ≈ 16^⅓) and with
//!   the alpha-power-law delay model in voltage.
//!
//! Modules:
//! * [`diag`] — structured [`diag::Violation`]/[`diag::Report`] diagnostics
//!   shared by every validation pass in the workspace.
//! * [`units`] — unit conventions and conversion helpers.
//! * [`scaling`] — voltage/frequency/leakage scaling laws.
//! * [`sram`] / [`sttram`] — memory-array models behind a common
//!   [`CacheGeometry`] → [`ArrayParams`] interface.
//! * [`logic`] — per-event core-logic energies (McPAT analogue).
//! * [`level_shifter`] — cross-voltage-domain shifter overheads.
//! * [`table3`] — regenerates the paper's Table III from these models.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Tests may unwrap: a panic IS the failure report there.
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(clippy::all)]

pub mod diag;
pub mod level_shifter;
pub mod logic;
pub mod scaling;
pub mod sram;
pub mod sttram;
pub mod table3;
pub mod units;

pub use diag::{Report, Severity, Violation};
pub use level_shifter::LevelShifter;
pub use logic::{CoreEnergyModel, CoreEvent};
pub use scaling::{alpha_power_delay_factor, VoltageScaling};
pub use sram::SramModel;
pub use sttram::SttRamModel;

use serde::{Deserialize, Serialize};

/// Memory technology used to implement a cache array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemTech {
    /// 6T CMOS SRAM.
    Sram,
    /// Spin-transfer-torque magnetic RAM (1T-1MTJ).
    SttRam,
}

impl MemTech {
    /// Human-readable name, matching the paper's configuration labels.
    pub fn name(self) -> &'static str {
        match self {
            MemTech::Sram => "SRAM",
            MemTech::SttRam => "STT-RAM",
        }
    }
}

/// Physical organisation of a cache array, the input to the array models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total data capacity in bytes.
    pub capacity_bytes: u64,
    /// Cache block (line) size in bytes.
    pub block_bytes: u32,
    /// Set associativity (ways).
    pub associativity: u32,
    /// Number of read ports.
    pub read_ports: u32,
    /// Number of write ports.
    pub write_ports: u32,
}

impl CacheGeometry {
    /// Convenience constructor with 1 read and 1 write port (the paper's
    /// Table I uses 1R/1W for every level).
    pub fn new(capacity_bytes: u64, block_bytes: u32, associativity: u32) -> Self {
        Self {
            capacity_bytes,
            block_bytes,
            associativity,
            read_ports: 1,
            write_ports: 1,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (self.block_bytes as u64 * self.associativity as u64)
    }

    /// Validates internal consistency (nonzero fields, whole sets). Set
    /// counts need not be powers of two: the Respin L3 capacities are
    /// 3·2^k, served by modulo indexing.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity_bytes == 0 || self.block_bytes == 0 || self.associativity == 0 {
            return Err("cache geometry fields must be nonzero".into());
        }
        let line_capacity = self.block_bytes as u64 * self.associativity as u64;
        if !self.capacity_bytes.is_multiple_of(line_capacity) {
            return Err(format!(
                "capacity {} not divisible by block×assoc {}",
                self.capacity_bytes, line_capacity
            ));
        }
        if self.sets() == 0 {
            return Err("geometry yields zero sets".into());
        }
        Ok(())
    }
}

/// Scalar technology parameters for one array at one operating voltage —
/// the same tuple CACTI/NVSim report and the simulator consumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayParams {
    /// Die area of the array in mm².
    pub area_mm2: f64,
    /// Read access latency in picoseconds.
    pub read_latency_ps: f64,
    /// Write access latency in picoseconds.
    pub write_latency_ps: f64,
    /// Energy of one read access in picojoules.
    pub read_energy_pj: f64,
    /// Energy of one write access in picojoules.
    pub write_energy_pj: f64,
    /// Static (leakage) power in milliwatts at the given voltage.
    pub leakage_mw: f64,
}

/// Common interface implemented by [`SramModel`] and [`SttRamModel`].
pub trait ArrayModel {
    /// Evaluates the model for `geometry` at supply voltage `vdd` (volts).
    fn params(&self, geometry: CacheGeometry, vdd: f64) -> ArrayParams;

    /// The technology this model describes.
    fn tech(&self) -> MemTech;
}

/// Evaluates the appropriate array model for `tech`.
pub fn array_params(tech: MemTech, geometry: CacheGeometry, vdd: f64) -> ArrayParams {
    match tech {
        MemTech::Sram => SramModel::default().params(geometry, vdd),
        MemTech::SttRam => SttRamModel::default().params(geometry, vdd),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_sets() {
        let g = CacheGeometry::new(256 * 1024, 32, 4);
        assert_eq!(g.sets(), 2048);
        g.validate().unwrap();
    }

    #[test]
    fn geometry_allows_three_times_power_of_two_sets() {
        // 48 MB, 16-way, 128 B blocks — the paper's medium L3.
        let g = CacheGeometry::new(48 * 1024 * 1024, 128, 16);
        assert_eq!(g.sets(), 24576);
        g.validate().unwrap();
    }

    #[test]
    fn geometry_rejects_indivisible_capacity() {
        let g = CacheGeometry::new(1000, 32, 3);
        assert!(g.validate().is_err());
    }

    #[test]
    fn geometry_rejects_zero() {
        assert!(CacheGeometry::new(0, 32, 2).validate().is_err());
        assert!(CacheGeometry::new(1024, 0, 2).validate().is_err());
        assert!(CacheGeometry::new(1024, 32, 0).validate().is_err());
    }

    #[test]
    fn dispatch_matches_direct_models() {
        let g = CacheGeometry::new(256 * 1024, 32, 4);
        let via_enum = array_params(MemTech::SttRam, g, 1.0);
        let direct = SttRamModel::default().params(g, 1.0);
        assert_eq!(via_enum, direct);
    }
}
