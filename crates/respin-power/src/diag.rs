//! Structured diagnostics for configuration and model validation.
//!
//! Every validation pass in the workspace — `ChipConfig` checking in
//! `respin-sim`, runner config loading in `respin-core`, and the static
//! invariant registry in `respin-verify` — reports problems through the
//! [`Violation`] / [`Report`] types defined here instead of panicking or
//! returning bare `String`s. Placing the vocabulary at the bottom of the
//! dependency graph (this crate) lets every layer share it without cycles.
//!
//! A [`Violation`] carries:
//! * a stable machine-readable `code` (e.g. `RAIL-ORDER`),
//! * the human name of the `invariant` it belongs to,
//! * a [`Severity`],
//! * a `location` naming the config field / table row / model state that
//!   triggered it, and
//! * a free-form `message` with the offending values.
//!
//! [`Report`] aggregates violations across passes and decides the overall
//! verdict: it is *clean* when it contains no `Error`-severity entries
//! (warnings are advisory and do not fail verification).

use serde::{Deserialize, Serialize};
use std::fmt;

/// How severe a violation is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Advisory: suspicious but not necessarily wrong. Does not fail a run.
    Warning,
    /// The configuration or model is invalid; verification fails.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One validated-invariant failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Stable machine-readable code, e.g. `RAIL-ORDER` or `FSM-STARVATION`.
    pub code: String,
    /// Human name of the invariant this violation belongs to.
    pub invariant: String,
    /// Severity of the violation.
    pub severity: Severity,
    /// Source location: config field, table row, or model state that
    /// triggered the violation (e.g. `ChipConfig.core_vdd`, `table3[2]`).
    pub location: String,
    /// Free-form detail with the offending values.
    pub message: String,
}

impl Violation {
    /// Builds an `Error`-severity violation.
    pub fn error(
        code: impl Into<String>,
        invariant: impl Into<String>,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Violation {
            code: code.into(),
            invariant: invariant.into(),
            severity: Severity::Error,
            location: location.into(),
            message: message.into(),
        }
    }

    /// Builds a `Warning`-severity violation.
    pub fn warning(
        code: impl Into<String>,
        invariant: impl Into<String>,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Violation {
            code: code.into(),
            invariant: invariant.into(),
            severity: Severity::Warning,
            location: location.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {} ({})",
            self.severity, self.code, self.location, self.message, self.invariant
        )
    }
}

/// Aggregated result of one or more validation passes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// All violations recorded, in discovery order.
    pub violations: Vec<Violation>,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Records one violation.
    pub fn push(&mut self, v: Violation) {
        self.violations.push(v);
    }

    /// Absorbs another report's violations.
    pub fn merge(&mut self, other: Report) {
        self.violations.extend(other.violations);
    }

    /// True when the report contains no `Error`-severity violations.
    /// Warnings alone still count as clean.
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Number of `Error`-severity violations.
    pub fn error_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Error)
            .count()
    }

    /// Number of `Warning`-severity violations.
    pub fn warning_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Warning)
            .count()
    }

    /// Converts the report into a `Result`: `Ok(())` when clean, otherwise
    /// `Err(self)` carrying the violations for the caller to render.
    pub fn into_result(self) -> Result<(), Report> {
        if self.is_clean() {
            Ok(())
        } else {
            Err(self)
        }
    }

    /// Process exit code for CLI front-ends: 0 when clean, 1 otherwise.
    pub fn exit_code(&self) -> i32 {
        i32::from(!self.is_clean())
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in &self.violations {
            writeln!(f, "{v}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s)",
            self.error_count(),
            self.warning_count()
        )
    }
}

impl std::error::Error for Report {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_clean() {
        let r = Report::new();
        assert!(r.is_clean());
        assert_eq!(r.exit_code(), 0);
        assert!(r.into_result().is_ok());
    }

    #[test]
    fn warnings_do_not_fail() {
        let mut r = Report::new();
        r.push(Violation::warning("W1", "inv", "loc", "msg"));
        assert!(r.is_clean());
        assert_eq!(r.warning_count(), 1);
        assert_eq!(r.exit_code(), 0);
    }

    #[test]
    fn errors_fail_and_merge() {
        let mut a = Report::new();
        a.push(Violation::error("E1", "inv", "loc", "msg"));
        let mut b = Report::new();
        b.push(Violation::warning("W1", "inv", "loc", "msg"));
        b.merge(a);
        assert_eq!(b.violations.len(), 2);
        assert!(!b.is_clean());
        assert_eq!(b.exit_code(), 1);
        assert!(b.into_result().is_err());
    }

    #[test]
    fn display_includes_code_and_location() {
        let v = Violation::error(
            "RAIL-ORDER",
            "dual-rail ordering",
            "ChipConfig.core_vdd",
            "x",
        );
        let s = v.to_string();
        assert!(s.contains("RAIL-ORDER"));
        assert!(s.contains("ChipConfig.core_vdd"));
        assert!(s.starts_with("error"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = Report::new();
        r.push(Violation::error("E1", "inv", "loc", "msg"));
        r.push(Violation::warning("W1", "inv2", "loc2", "msg2"));
        let json = serde_json::to_string(&r).expect("serialize");
        let back: Report = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, r);
    }
}
