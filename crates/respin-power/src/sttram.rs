//! STT-RAM array model (NVSim analogue).
//!
//! Anchored to the paper's Table III 256 KB row: 0.2451 mm² (≈ 3.74× denser
//! than SRAM), 588.2 ps read / 5208 ps write at 1.0 V, 29.32 pJ per read,
//! and 114 (units) leakage — about 1/7.7 of the equivalent SRAM, the paper's
//! "one eighth the leakage" claim.
//!
//! Modelling notes, each a documented assumption:
//!
//! * **Read latency** scales like SRAM reads (`capacity^(1/3)` and the
//!   alpha-power law): sensing is done by CMOS periphery.
//! * **Write latency** is MTJ-switching limited. It is nearly independent of
//!   capacity but strongly voltage-dependent (write current drops with the
//!   overdrive of the drive transistor). Calibrated so that a write takes
//!   5.2 ns at 1.0 V and ≈ 20 ns at 0.65 V — the paper's "10 cycles → about
//!   3 cycles for a core running at 500 MHz".
//! * **Write energy** is the CMOS periphery (≈ the read energy) plus a
//!   per-bit MTJ switching term. Table III reports a *single* Rd/Wr energy
//!   (29.32 pJ), implying a low-write-current MTJ; we use 0.1 pJ/bit, which
//!   puts a 32 B-line write at ≈ 1.9× the read — between the paper's
//!   face-value 1× and the pessimistic 3–4× older-generation MTJs. The MTJ
//!   term scales linearly with Vdd (current-driven), the periphery with
//!   Vdd².
//! * **Leakage** is CMOS-periphery only (the MTJ itself is non-volatile and
//!   leak-free), hence the 1/7.7 ratio; linear in capacity and Vdd.

use crate::scaling::{VoltageScaling, DEFAULT_ALPHA};
use crate::sram::banked_energy_factor;

use crate::{ArrayModel, ArrayParams, CacheGeometry, MemTech};
use serde::{Deserialize, Serialize};

/// Reference capacity of the Table III STT-RAM row (256 KB).
const REF_CAPACITY_BYTES: f64 = 256.0 * 1024.0;

/// Table III anchors at 1.0 V.
const ANCHOR_READ_LATENCY_PS: f64 = 588.2;
const ANCHOR_WRITE_LATENCY_PS: f64 = 5208.0;
const ANCHOR_READ_ENERGY_PJ: f64 = 29.32;
const ANCHOR_LEAKAGE_MW: f64 = 0.114; // Table III prints 114 µW
const ANCHOR_AREA_MM2: f64 = 0.2451;

/// MTJ switching energy per written bit at 1.0 V, pJ (see module docs).
pub const WRITE_PJ_PER_BIT: f64 = 0.1;

/// Capacity scaling exponents (shared with the SRAM model — CMOS periphery
/// dominates both; banking is handled by
/// [`crate::sram::banked_energy_factor`], whose 16 KB reference is scaled
/// to this model's 256 KB anchor below).
const LATENCY_CAP_EXP: f64 = 1.0 / 3.0;
const REF_ASSOC: f64 = 4.0;

/// `banked_energy_factor` is anchored at 16 KB; renormalise it to this
/// model's 256 KB anchor.
fn stt_energy_factor(capacity_bytes: f64) -> f64 {
    banked_energy_factor(capacity_bytes) / banked_energy_factor(REF_CAPACITY_BYTES)
}

/// Drive-transistor threshold governing MTJ write current.
const WRITE_DRIVER_VTH: f64 = 0.30;
/// Exponent calibrated so the 1.0 → 0.65 V write slows 5.2 → ~20 ns.
const WRITE_LATENCY_EXP: f64 = 1.95;

/// STT-RAM array model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SttRamModel {
    /// Scaling of the CMOS read periphery. STT-RAM sensing tolerates low
    /// voltage better than 6T cells, so it uses the logic threshold.
    pub read_scaling: VoltageScaling,
    /// Secondary associativity costs, as in the SRAM model.
    pub assoc_latency_per_doubling: f64,
    /// Secondary associativity energy cost.
    pub assoc_energy_per_doubling: f64,
}

impl Default for SttRamModel {
    fn default() -> Self {
        Self {
            read_scaling: VoltageScaling {
                vth: crate::scaling::CORE_LOGIC_VTH,
                alpha: DEFAULT_ALPHA,
            },
            assoc_latency_per_doubling: 0.04,
            assoc_energy_per_doubling: 0.10,
        }
    }
}

impl SttRamModel {
    fn assoc_factor(per_doubling: f64, assoc: u32) -> f64 {
        1.0 + per_doubling * (assoc.max(1) as f64 / REF_ASSOC).log2()
    }

    /// MTJ write latency at `vdd`, independent of array size.
    pub fn write_latency_ps(&self, vdd: f64) -> f64 {
        if vdd <= WRITE_DRIVER_VTH {
            return f64::INFINITY;
        }
        ANCHOR_WRITE_LATENCY_PS
            * ((1.0 - WRITE_DRIVER_VTH) / (vdd - WRITE_DRIVER_VTH)).powf(WRITE_LATENCY_EXP)
    }
}

impl ArrayModel for SttRamModel {
    fn params(&self, geometry: CacheGeometry, vdd: f64) -> ArrayParams {
        let cap_ratio = geometry.capacity_bytes as f64 / REF_CAPACITY_BYTES;

        let read_latency = ANCHOR_READ_LATENCY_PS
            * cap_ratio.powf(LATENCY_CAP_EXP)
            * Self::assoc_factor(self.assoc_latency_per_doubling, geometry.associativity)
            * self.read_scaling.delay_factor(vdd);
        let read_energy = ANCHOR_READ_ENERGY_PJ
            * stt_energy_factor(geometry.capacity_bytes as f64)
            * Self::assoc_factor(self.assoc_energy_per_doubling, geometry.associativity)
            * self.read_scaling.dynamic_energy_factor(vdd);
        // Write energy: periphery (≈ read) + per-bit MTJ switching term.
        let mtj_pj = WRITE_PJ_PER_BIT * geometry.block_bytes as f64 * 8.0 * vdd;
        let write_energy = read_energy + mtj_pj;
        let leakage = ANCHOR_LEAKAGE_MW * cap_ratio * self.read_scaling.leakage_factor(vdd);
        let area = ANCHOR_AREA_MM2 * cap_ratio;

        ArrayParams {
            area_mm2: area,
            read_latency_ps: read_latency,
            write_latency_ps: read_latency.max(self.write_latency_ps(vdd)),
            read_energy_pj: read_energy,
            write_energy_pj: write_energy,
            leakage_mw: leakage,
        }
    }

    fn tech(&self) -> MemTech {
        MemTech::SttRam
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram::SramModel;
    use crate::units::kib;

    fn close(actual: f64, expected: f64, tol: f64) -> bool {
        (actual - expected).abs() / expected <= tol
    }

    fn shared_l1d() -> CacheGeometry {
        CacheGeometry::new(kib(256), 32, 4)
    }

    #[test]
    fn table3_256kb_nominal() {
        let p = SttRamModel::default().params(shared_l1d(), 1.0);
        assert!(close(p.read_latency_ps, 588.2, 0.01), "{p:?}");
        assert!(close(p.write_latency_ps, 5208.0, 0.01), "{p:?}");
        assert!(close(p.read_energy_pj, 29.32, 0.01), "{p:?}");
        assert!(close(p.leakage_mw * 1000.0, 114.0, 0.01), "{p:?}");
        assert!(close(p.area_mm2, 0.2451, 0.01), "{p:?}");
    }

    #[test]
    fn one_eighth_leakage_of_sram() {
        let stt = SttRamModel::default().params(shared_l1d(), 1.0);
        let sram = SramModel::default().params(shared_l1d(), 1.0);
        let ratio = sram.leakage_mw / stt.leakage_mw;
        assert!(ratio > 7.0 && ratio < 8.5, "leakage ratio {ratio}");
    }

    #[test]
    fn density_advantage() {
        let stt = SttRamModel::default().params(shared_l1d(), 1.0);
        let sram = SramModel::default().params(shared_l1d(), 1.0);
        let ratio = sram.area_mm2 / stt.area_mm2;
        assert!(ratio > 3.5 && ratio < 4.0, "density ratio {ratio}");
    }

    #[test]
    fn write_latency_matches_paper_cycle_claim() {
        // §II: at 0.65 V a write costs ~10 cycles of a 500 MHz core (20 ns),
        // at 1.0 V about 3 cycles (~5.2 ns, rounded up to 3 × 2 ns).
        let m = SttRamModel::default();
        let core_cycle_ps = 2000.0; // 500 MHz
        let slow_cycles = (m.write_latency_ps(0.65) / core_cycle_ps).ceil();
        let fast_cycles = (m.write_latency_ps(1.0) / core_cycle_ps).ceil();
        assert_eq!(fast_cycles, 3.0);
        assert!((9.0..=11.0).contains(&slow_cycles), "slow {slow_cycles}");
    }

    #[test]
    fn write_below_driver_threshold_is_infinite() {
        assert!(!SttRamModel::default().write_latency_ps(0.2).is_finite());
    }

    #[test]
    fn write_energy_modestly_exceeds_read_energy() {
        // ≈1.9× at the L1 point; the banked periphery grows slower than
        // the (line-proportional) MTJ term at L2/L3 blocks, but the ratio
        // must stay well-behaved everywhere.
        let m = SttRamModel::default();
        let l1 = m.params(shared_l1d(), 1.0);
        let l1_ratio = l1.write_energy_pj / l1.read_energy_pj;
        assert!((1.5..=2.5).contains(&l1_ratio), "L1 ratio {l1_ratio}");
        let l2 = m.params(CacheGeometry::new(16 * 1024 * 1024, 64, 8), 1.0);
        let l2_ratio = l2.write_energy_pj / l2.read_energy_pj;
        assert!((1.0..=3.0).contains(&l2_ratio), "L2 ratio {l2_ratio}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn write_always_slower_than_read(
            cap_pow in 14u32..25, // 16 KB .. 32 MB
            vdd in 0.6f64..1.1,
        ) {
            let g = CacheGeometry::new(1u64 << cap_pow, 64, 8);
            let p = SttRamModel::default().params(g, vdd);
            prop_assert!(p.write_latency_ps >= p.read_latency_ps);
            prop_assert!(p.write_energy_pj > p.read_energy_pj);
        }

        #[test]
        fn leakage_linear_in_capacity(cap_pow in 14u32..24) {
            let m = SttRamModel::default();
            let g1 = CacheGeometry::new(1u64 << cap_pow, 64, 8);
            let g2 = CacheGeometry::new(1u64 << (cap_pow + 1), 64, 8);
            let p1 = m.params(g1, 1.0);
            let p2 = m.params(g2, 1.0);
            prop_assert!((p2.leakage_mw / p1.leakage_mw - 2.0).abs() < 1e-9);
        }
    }
}
