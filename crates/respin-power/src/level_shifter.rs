//! Cross-voltage-domain level shifters.
//!
//! The Respin chip has two externally regulated rails: the NT core rail
//! (0.4 V) and the nominal cache rail (1.0 V). Every *up-shift* transition
//! (core → cache) passes through level shifters. Following the paper (§II,
//! citing the circuits literature it references), up-shifting costs 0.75 ns;
//! down-shifting (cache → core) is essentially free because a high-voltage
//! signal drives a low-voltage gate directly.
//!
//! In the shared-cache timing model this 0.75 ns, together with wire delay,
//! is the "2 fast cache cycles (0.8 ns)" each request spends in flight
//! before the cache controller sees it (§II-A, Figure 3).

use serde::{Deserialize, Serialize};

/// Level-shifter delay and energy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelShifter {
    /// Up-shift (low → high domain) delay in picoseconds.
    pub upshift_delay_ps: f64,
    /// Down-shift (high → low domain) delay in picoseconds.
    pub downshift_delay_ps: f64,
    /// Energy per shifted request (address + data bus crossing), picojoules.
    pub energy_per_crossing_pj: f64,
}

impl Default for LevelShifter {
    fn default() -> Self {
        Self {
            upshift_delay_ps: 750.0,
            downshift_delay_ps: 0.0,
            energy_per_crossing_pj: 0.6,
        }
    }
}

impl LevelShifter {
    /// Total request-delivery latency from a core to the shared cache,
    /// expressed in whole cache cycles (rounded up): level shifting plus
    /// `wire_delay_ps` of interconnect.
    ///
    /// With the defaults and 50 ps of wire this is the paper's 2-cycle
    /// (0.8 ns) delivery at a 400 ps cache clock.
    pub fn delivery_cache_cycles(&self, wire_delay_ps: f64, cache_period_ps: f64) -> u32 {
        ((self.upshift_delay_ps + wire_delay_ps) / cache_period_ps).ceil() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_delivery_is_two_cache_cycles() {
        let ls = LevelShifter::default();
        assert_eq!(ls.delivery_cache_cycles(50.0, 400.0), 2);
    }

    #[test]
    fn slower_cache_clock_needs_fewer_cycles() {
        let ls = LevelShifter::default();
        assert_eq!(ls.delivery_cache_cycles(50.0, 800.0), 1);
    }

    #[test]
    fn downshift_is_free_by_default() {
        assert_eq!(LevelShifter::default().downshift_delay_ps, 0.0);
    }
}
