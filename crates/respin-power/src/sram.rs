//! SRAM array model (CACTI analogue).
//!
//! Anchored to the paper's Table III at the 16 KB and 256 KB points and
//! extrapolated with the scaling exponents those two points pin down:
//! latency `∝ capacity^(1/3)`, dynamic energy `∝ capacity^0.7`, leakage and
//! area linear in capacity. Associativity and port count add the usual
//! CACTI-style secondary costs (wider tag match, duplicated wordlines).

use crate::scaling::VoltageScaling;
use crate::units::kib;
use crate::{ArrayModel, ArrayParams, CacheGeometry, MemTech};
use serde::{Deserialize, Serialize};

/// Reference capacity the anchors are expressed at (16 KB).
const REF_CAPACITY_BYTES: f64 = 16.0 * 1024.0;

/// Table III anchors for a 16 KB, 4-way, 1R/1W SRAM array at 1.0 V.
const ANCHOR_LATENCY_PS: f64 = 211.9;
const ANCHOR_ENERGY_PJ: f64 = 6.102;
/// Leakage anchor: Table III prints 881 (µW) per 256 KB at 1.0 V — the
/// only reading consistent with the chip-level split of Figure 1 (a 114 MB
/// hierarchy leaking ~0.4 W, not ~400 W). Stored here in mW per 16 KB.
const ANCHOR_LEAKAGE_MW: f64 = 0.881 / 16.0;
/// Area anchor: 0.9176 mm² / 256 KB ⇒ per-16 KB share.
const ANCHOR_AREA_MM2: f64 = 0.9176 / 16.0;

/// Capacity scaling exponents implied by Table III (see crate docs).
const LATENCY_CAP_EXP: f64 = 1.0 / 3.0;
const ENERGY_CAP_EXP: f64 = 0.7;

/// Arrays beyond this capacity are banked: one access activates a single
/// bank, so dynamic energy stops following the monolithic `capacity^0.7`
/// law and only grows with the H-tree routing to the bank.
const BANK_CAPACITY_BYTES: f64 = 256.0 * 1024.0;
/// Routing-energy growth exponent beyond the bank size.
const HTREE_ENERGY_EXP: f64 = 0.15;

/// Dynamic-energy capacity factor with banking (relative to the 16 KB
/// anchor). Exact for both Table III points (≤ 256 KB is monolithic).
pub(crate) fn banked_energy_factor(capacity_bytes: f64) -> f64 {
    let bank_ratio = BANK_CAPACITY_BYTES / REF_CAPACITY_BYTES;
    if capacity_bytes <= BANK_CAPACITY_BYTES {
        (capacity_bytes / REF_CAPACITY_BYTES).powf(ENERGY_CAP_EXP)
    } else {
        bank_ratio.powf(ENERGY_CAP_EXP)
            * (capacity_bytes / BANK_CAPACITY_BYTES).powf(HTREE_ENERGY_EXP)
    }
}

/// Reference associativity of the anchor array.
const REF_ASSOC: f64 = 4.0;

/// SRAM array model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramModel {
    /// Voltage scaling laws for the array critical path.
    pub scaling: VoltageScaling,
    /// Secondary latency cost per doubling of associativity beyond the
    /// reference (CACTI shows a few percent per doubling from wider muxes).
    pub assoc_latency_per_doubling: f64,
    /// Secondary energy cost per doubling of associativity (more tag
    /// comparators and way readout).
    pub assoc_energy_per_doubling: f64,
    /// Area/leakage/energy multiplier per port beyond 1R+1W.
    pub extra_port_cost: f64,
}

impl Default for SramModel {
    fn default() -> Self {
        Self {
            scaling: VoltageScaling::sram_array(),
            assoc_latency_per_doubling: 0.04,
            assoc_energy_per_doubling: 0.10,
            extra_port_cost: 0.35,
        }
    }
}

impl SramModel {
    fn assoc_factor(per_doubling: f64, assoc: u32) -> f64 {
        let doublings = (assoc.max(1) as f64 / REF_ASSOC).log2();
        1.0 + per_doubling * doublings
    }

    fn port_factor(&self, geometry: CacheGeometry) -> f64 {
        let extra = (geometry.read_ports + geometry.write_ports).saturating_sub(2);
        1.0 + self.extra_port_cost * extra as f64
    }
}

impl ArrayModel for SramModel {
    fn params(&self, geometry: CacheGeometry, vdd: f64) -> ArrayParams {
        let cap_ratio = geometry.capacity_bytes as f64 / REF_CAPACITY_BYTES;
        let ports = self.port_factor(geometry);

        let latency = ANCHOR_LATENCY_PS
            * cap_ratio.powf(LATENCY_CAP_EXP)
            * Self::assoc_factor(self.assoc_latency_per_doubling, geometry.associativity)
            * self.scaling.delay_factor(vdd);
        let energy = ANCHOR_ENERGY_PJ
            * banked_energy_factor(geometry.capacity_bytes as f64)
            * Self::assoc_factor(self.assoc_energy_per_doubling, geometry.associativity)
            * ports
            * self.scaling.dynamic_energy_factor(vdd);
        let leakage = ANCHOR_LEAKAGE_MW * cap_ratio * ports * self.scaling.leakage_factor(vdd);
        let area = ANCHOR_AREA_MM2 * cap_ratio * ports;

        ArrayParams {
            area_mm2: area,
            read_latency_ps: latency,
            // SRAM reads and writes have essentially the same access time;
            // Table III reports a single Rd/Wr number.
            write_latency_ps: latency,
            read_energy_pj: energy,
            write_energy_pj: energy,
            leakage_mw: leakage,
        }
    }

    fn tech(&self) -> MemTech {
        MemTech::Sram
    }
}

/// The 16 KB private L1D geometry from Table I (4-way, 32 B blocks).
pub fn l1d_private_geometry() -> CacheGeometry {
    CacheGeometry::new(kib(16), 32, 4)
}

/// The 256 KB shared L1D geometry from Table I (4-way, 32 B blocks).
pub fn l1d_shared_geometry() -> CacheGeometry {
    CacheGeometry::new(kib(256), 32, 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(actual: f64, expected: f64, tol: f64) -> bool {
        (actual - expected).abs() / expected <= tol
    }

    #[test]
    fn table3_16kb_nominal() {
        let p = SramModel::default().params(l1d_private_geometry(), 1.0);
        assert!(close(p.read_latency_ps, 211.9, 0.01), "{p:?}");
        assert!(close(p.read_energy_pj, 6.102, 0.01), "{p:?}");
        // 16 banks of 16 KB make up the Table III leakage/area row (µW).
        assert!(close(p.leakage_mw * 16.0 * 1000.0, 881.0, 0.01), "{p:?}");
        assert!(close(p.area_mm2 * 16.0, 0.9176, 0.01), "{p:?}");
    }

    #[test]
    fn table3_16kb_low_voltage() {
        let p = SramModel::default().params(l1d_private_geometry(), 0.65);
        assert!(close(p.read_latency_ps, 1337.0, 0.05), "{p:?}");
        assert!(close(p.read_energy_pj, 2.578, 0.01), "{p:?}");
        assert!(close(p.leakage_mw * 16.0 * 1000.0, 573.0, 0.01), "{p:?}");
    }

    #[test]
    fn table3_256kb_nominal() {
        let p = SramModel::default().params(l1d_shared_geometry(), 1.0);
        assert!(close(p.read_latency_ps, 533.6, 0.01), "{p:?}");
        assert!(close(p.read_energy_pj, 42.41, 0.01), "{p:?}");
        assert!(close(p.leakage_mw * 1000.0, 881.0, 0.01), "{p:?}");
        assert!(close(p.area_mm2, 0.9176, 0.01), "{p:?}");
    }

    #[test]
    fn banked_energy_saturates_beyond_bank_size() {
        let m = SramModel::default();
        let bank = m.params(CacheGeometry::new(kib(256), 64, 8), 1.0);
        let big = m.params(CacheGeometry::new(16 * kib(1024), 64, 8), 1.0);
        // 64× the capacity must cost well under 4× the access energy.
        assert!(big.read_energy_pj < bank.read_energy_pj * 4.0);
        assert!(big.read_energy_pj > bank.read_energy_pj);
    }

    #[test]
    fn latency_grows_with_capacity() {
        let m = SramModel::default();
        let small = m.params(CacheGeometry::new(kib(16), 32, 4), 1.0);
        let big = m.params(CacheGeometry::new(kib(1024), 32, 4), 1.0);
        assert!(big.read_latency_ps > small.read_latency_ps);
        assert!(big.leakage_mw > small.leakage_mw);
        assert!(big.read_energy_pj > small.read_energy_pj);
    }

    #[test]
    fn extra_ports_cost_area_and_energy() {
        let m = SramModel::default();
        let mut g = l1d_private_geometry();
        let base = m.params(g, 1.0);
        g.read_ports = 2;
        let dual = m.params(g, 1.0);
        assert!(dual.area_mm2 > base.area_mm2);
        assert!(dual.read_energy_pj > base.read_energy_pj);
        assert!(dual.leakage_mw > base.leakage_mw);
    }

    #[test]
    fn associativity_secondary_costs() {
        let m = SramModel::default();
        let a4 = m.params(CacheGeometry::new(kib(256), 32, 4), 1.0);
        let a16 = m.params(CacheGeometry::new(kib(256), 32, 16), 1.0);
        assert!(a16.read_latency_ps > a4.read_latency_ps);
        assert!(a16.read_energy_pj > a4.read_energy_pj);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn params_are_positive_and_finite(
            cap_kb in 1u64..65536,
            vdd in 0.60f64..1.2,
        ) {
            let g = CacheGeometry::new(kib(cap_kb.next_power_of_two()), 32, 4);
            let p = SramModel::default().params(g, vdd);
            prop_assert!(p.read_latency_ps.is_finite() && p.read_latency_ps > 0.0);
            prop_assert!(p.read_energy_pj.is_finite() && p.read_energy_pj > 0.0);
            prop_assert!(p.leakage_mw.is_finite() && p.leakage_mw > 0.0);
            prop_assert!(p.area_mm2.is_finite() && p.area_mm2 > 0.0);
        }

        #[test]
        fn lower_voltage_is_slower_but_cheaper(
            cap_kb_pow in 4u32..14,
        ) {
            let g = CacheGeometry::new(1u64 << (cap_kb_pow + 10), 32, 4);
            let m = SramModel::default();
            let hi = m.params(g, 1.0);
            let lo = m.params(g, 0.65);
            prop_assert!(lo.read_latency_ps > hi.read_latency_ps);
            prop_assert!(lo.read_energy_pj < hi.read_energy_pj);
            prop_assert!(lo.leakage_mw < hi.leakage_mw);
            prop_assert_eq!(lo.area_mm2, hi.area_mm2); // area is voltage-independent
        }
    }
}
