//! Unit conventions used across the workspace.
//!
//! All models exchange plain `f64` values with unit-suffixed names rather
//! than newtypes; this module centralises the conventions and conversion
//! helpers so every crate agrees on them:
//!
//! * time — **picoseconds** (`_ps`)
//! * energy — **picojoules** (`_pj`)
//! * power — **milliwatts** (`_mw`)
//! * area — **mm²** (`_mm2`)
//! * voltage — **volts** (plain `vdd`)
//! * frequency — **megahertz** (`_mhz`)
//!
//! The identity that ties the simulator's energy accounting together:
//! `pJ = mW × ns`, i.e. `energy_pj = power_mw * time_ps / 1000`.

/// Picoseconds per nanosecond.
pub const PS_PER_NS: f64 = 1_000.0;

/// Picoseconds per second.
pub const PS_PER_S: f64 = 1e12;

/// Converts a frequency in MHz to a clock period in picoseconds.
///
/// ```
/// use respin_power::units::mhz_to_period_ps;
/// assert_eq!(mhz_to_period_ps(2500.0), 400.0); // the paper's cache clock
/// assert_eq!(mhz_to_period_ps(500.0), 2000.0); // a mid-band NT core
/// ```
pub fn mhz_to_period_ps(mhz: f64) -> f64 {
    1e6 / mhz
}

/// Converts a clock period in picoseconds to a frequency in MHz.
///
/// ```
/// use respin_power::units::period_ps_to_mhz;
/// assert_eq!(period_ps_to_mhz(400.0), 2500.0);
/// ```
pub fn period_ps_to_mhz(period_ps: f64) -> f64 {
    1e6 / period_ps
}

/// Integrates a constant power over an interval: `mW × ps → pJ`.
///
/// ```
/// use respin_power::units::leakage_energy_pj;
/// // 1 mW for 1 ns is 1 pJ.
/// assert_eq!(leakage_energy_pj(1.0, 1000.0), 1.0);
/// ```
pub fn leakage_energy_pj(power_mw: f64, interval_ps: f64) -> f64 {
    power_mw * interval_ps / PS_PER_NS
}

/// Average power from an energy total and an interval: `pJ / ps → mW`.
///
/// ```
/// use respin_power::units::average_power_mw;
/// assert_eq!(average_power_mw(10.0, 10_000.0), 1.0);
/// ```
pub fn average_power_mw(energy_pj: f64, interval_ps: f64) -> f64 {
    if interval_ps <= 0.0 {
        return 0.0;
    }
    energy_pj / interval_ps * PS_PER_NS
}

/// Kibibytes → bytes, for readable cache-size literals.
pub const fn kib(n: u64) -> u64 {
    n * 1024
}

/// Mebibytes → bytes, for readable cache-size literals.
pub const fn mib(n: u64) -> u64 {
    n * 1024 * 1024
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_frequency_period() {
        for mhz in [417.0, 500.0, 625.0, 2500.0] {
            let p = mhz_to_period_ps(mhz);
            assert!((period_ps_to_mhz(p) - mhz).abs() < 1e-9);
        }
    }

    #[test]
    fn leakage_power_roundtrip() {
        let e = leakage_energy_pj(3.5, 123_456.0);
        assert!((average_power_mw(e, 123_456.0) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn average_power_zero_interval_is_zero() {
        assert_eq!(average_power_mw(42.0, 0.0), 0.0);
    }

    #[test]
    fn size_helpers() {
        assert_eq!(kib(16), 16384);
        assert_eq!(mib(1), 1024 * kib(1));
    }
}
