//! Core-logic energy model (McPAT analogue).
//!
//! The simulator counts micro-architectural *events* (ALU operations,
//! register-file accesses, ROB dispatches, …) and multiplies each by a
//! per-event energy from this model. Event energies are specified at 1.0 V
//! and scale with `Vdd²`; core leakage is specified at 1.0 V and scales
//! linearly with `Vdd` (see [`crate::scaling`]).
//!
//! Calibration: with a typical dynamic instruction mix (dual-issue, ~30%
//! memory operations, ~15% branches, ~10% floating point) the per-instruction
//! dynamic energy lands near 8.2 pJ at 1.0 V. Together with 11.6 mW of
//! nominal per-core leakage this reproduces the chip-level split of the
//! paper's Figure 1: at 1.0 V roughly 46% core dynamic / 26% core leakage /
//! 14% cache dynamic / 14% cache leakage, flipping to a leakage-dominated
//! (~75%) profile at near-threshold voltage.

use crate::scaling::VoltageScaling;
use serde::{Deserialize, Serialize};

/// Micro-architectural events the simulator charges energy for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreEvent {
    /// One fetch-group access of the front end (charged per fetch, not per
    /// instruction; the L1I array access itself is charged separately).
    Fetch,
    /// Decode of one instruction.
    Decode,
    /// One branch-predictor lookup/update pair.
    BranchPredict,
    /// One register-file read port activation.
    RegRead,
    /// One register-file write port activation.
    RegWrite,
    /// One integer ALU operation.
    IntAlu,
    /// One floating-point unit operation.
    FpAlu,
    /// One address-generation operation (for loads/stores).
    AddressGen,
    /// One reorder-buffer dispatch + commit pair.
    RobEntry,
    /// One load/store-queue insertion + search.
    LsqEntry,
    /// One instruction-window wakeup/select.
    WindowWakeup,
    /// One cycle of clock-tree and pipeline-latch toggling, charged per
    /// core cycle while the core is powered (consolidation's gating removes
    /// it). McPAT attributes roughly a third of core dynamic power to the
    /// clock network.
    ClockTree,
}

impl CoreEvent {
    /// All event kinds, for iteration in reports and tests.
    pub const ALL: [CoreEvent; 12] = [
        CoreEvent::Fetch,
        CoreEvent::Decode,
        CoreEvent::BranchPredict,
        CoreEvent::RegRead,
        CoreEvent::RegWrite,
        CoreEvent::IntAlu,
        CoreEvent::FpAlu,
        CoreEvent::AddressGen,
        CoreEvent::RobEntry,
        CoreEvent::LsqEntry,
        CoreEvent::WindowWakeup,
        CoreEvent::ClockTree,
    ];
}

/// Per-event energies (at 1.0 V) and leakage for one dual-issue OoO core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreEnergyModel {
    /// Voltage scaling laws for core logic.
    pub scaling: VoltageScaling,
    /// Core leakage power at 1.0 V, milliwatts.
    pub leakage_mw_nominal: f64,
    /// Residual leakage fraction when the core is power-gated (header
    /// transistor leakage; a few percent).
    pub gated_leakage_fraction: f64,
}

impl Default for CoreEnergyModel {
    fn default() -> Self {
        Self {
            scaling: VoltageScaling::core_logic(),
            leakage_mw_nominal: 11.6,
            gated_leakage_fraction: 0.02,
        }
    }
}

impl CoreEnergyModel {
    /// Energy of one `event` at 1.0 V, in picojoules.
    pub fn event_energy_nominal_pj(&self, event: CoreEvent) -> f64 {
        match event {
            CoreEvent::Fetch => 2.4,
            CoreEvent::Decode => 0.8,
            CoreEvent::BranchPredict => 0.5,
            CoreEvent::RegRead => 0.7,
            CoreEvent::RegWrite => 0.9,
            CoreEvent::IntAlu => 1.6,
            CoreEvent::FpAlu => 4.0,
            CoreEvent::AddressGen => 1.0,
            CoreEvent::RobEntry => 1.4,
            CoreEvent::LsqEntry => 0.9,
            CoreEvent::WindowWakeup => 1.0,
            CoreEvent::ClockTree => 4.0,
        }
    }

    /// Energy of one `event` at supply voltage `vdd`, in picojoules.
    pub fn event_energy_pj(&self, event: CoreEvent, vdd: f64) -> f64 {
        self.event_energy_nominal_pj(event) * self.scaling.dynamic_energy_factor(vdd)
    }

    /// Leakage power of an *active* core at `vdd`, with an optional
    /// per-instance multiplier from process variation (leakier cores draw
    /// more), in milliwatts.
    pub fn leakage_mw(&self, vdd: f64, variation_factor: f64) -> f64 {
        self.leakage_mw_nominal * self.scaling.leakage_factor(vdd) * variation_factor
    }

    /// Leakage power of a *power-gated* core, in milliwatts.
    pub fn gated_leakage_mw(&self, vdd: f64, variation_factor: f64) -> f64 {
        self.leakage_mw(vdd, variation_factor) * self.gated_leakage_fraction
    }

    /// Rough per-instruction dynamic energy for a typical mix at `vdd`
    /// (documentation/calibration helper; the simulator charges real event
    /// counts instead).
    pub fn per_instruction_estimate_pj(&self, vdd: f64) -> f64 {
        // Typical dynamic mix: dual-issue, 4-wide fetch groups, 30% memory
        // ops, 15% branches, 10% FP, 70% int-ALU, 2 reg reads + 0.8 writes.
        let e = |ev| self.event_energy_nominal_pj(ev);
        let per_instr = e(CoreEvent::ClockTree) // ~IPC 1 at the design point
            + e(CoreEvent::Fetch) / 4.0
            + e(CoreEvent::Decode)
            + 0.15 * e(CoreEvent::BranchPredict)
            + 2.0 * e(CoreEvent::RegRead)
            + 0.8 * e(CoreEvent::RegWrite)
            + 0.70 * e(CoreEvent::IntAlu)
            + 0.10 * e(CoreEvent::FpAlu)
            + 0.30 * e(CoreEvent::AddressGen)
            + e(CoreEvent::RobEntry)
            + 0.30 * e(CoreEvent::LsqEntry)
            + e(CoreEvent::WindowWakeup);
        per_instr * self.scaling.dynamic_energy_factor(vdd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_instruction_calibration_point() {
        let m = CoreEnergyModel::default();
        let pj = m.per_instruction_estimate_pj(1.0);
        assert!((11.0..=14.0).contains(&pj), "per-instr {pj} pJ");
    }

    #[test]
    fn nt_dynamic_energy_is_16_percent() {
        let m = CoreEnergyModel::default();
        let ratio =
            m.event_energy_pj(CoreEvent::IntAlu, 0.4) / m.event_energy_pj(CoreEvent::IntAlu, 1.0);
        assert!((ratio - 0.16).abs() < 1e-12);
    }

    #[test]
    fn gated_leakage_is_small() {
        let m = CoreEnergyModel::default();
        let active = m.leakage_mw(0.4, 1.0);
        let gated = m.gated_leakage_mw(0.4, 1.0);
        assert!(gated < active * 0.05);
        assert!(gated > 0.0);
    }

    #[test]
    fn variation_factor_scales_leakage() {
        let m = CoreEnergyModel::default();
        assert!(m.leakage_mw(0.4, 1.3) > m.leakage_mw(0.4, 1.0));
        assert!((m.leakage_mw(0.4, 1.3) / m.leakage_mw(0.4, 1.0) - 1.3).abs() < 1e-12);
    }

    #[test]
    fn all_events_have_positive_energy() {
        let m = CoreEnergyModel::default();
        for ev in CoreEvent::ALL {
            assert!(m.event_energy_nominal_pj(ev) > 0.0, "{ev:?}");
        }
    }

    #[test]
    fn fp_costs_more_than_int() {
        let m = CoreEnergyModel::default();
        assert!(
            m.event_energy_nominal_pj(CoreEvent::FpAlu)
                > m.event_energy_nominal_pj(CoreEvent::IntAlu)
        );
    }
}
