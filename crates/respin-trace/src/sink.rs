//! Collection: the [`TraceSink`] trait, the [`Tracer`] handle the
//! simulator carries, and the stock sinks.
//!
//! The contract that makes the zero-cost guarantee checkable: sinks
//! *observe* — [`TraceSink::record`] takes `&self` and returns nothing,
//! so no sink can feed state back into the simulation. The disabled
//! path is `Option::None` plus an inlined closure, so a build with
//! tracing off constructs no events at all.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::event::TraceEvent;

/// A consumer of trace events.
///
/// Implementations must be thread-safe: experiment batches run
/// simulations from several threads into one sink.
pub trait TraceSink: Send + Sync {
    /// Accepts one event. Must not panic on any well-formed event.
    fn record(&self, event: &TraceEvent);
}

/// The handle threaded through the simulator.
///
/// Cheap to clone (an `Option<Arc>`). [`Tracer::emit`] takes a closure
/// so the event is only constructed when a sink is installed:
///
/// ```
/// use respin_trace::{RingSink, TraceEvent, TraceKind, Tracer};
/// use std::sync::Arc;
///
/// let off = Tracer::disabled();
/// off.emit(|| unreachable!("never constructed"));
///
/// let ring = Arc::new(RingSink::new(16));
/// let on = Tracer::new(ring.clone());
/// on.emit(|| TraceEvent::at(3, TraceKind::Decommission { cluster: 0, core: 1 }));
/// assert_eq!(ring.snapshot().len(), 1);
/// ```
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<dyn TraceSink>>);

impl Tracer {
    /// A tracer that drops everything without constructing it.
    pub fn disabled() -> Self {
        Self(None)
    }

    /// A tracer feeding `sink`.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Self(Some(sink))
    }

    /// Whether a sink is installed. Use to skip expensive snapshot
    /// bookkeeping, not as a branch that changes simulation behaviour.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records the event produced by `build`, or does nothing — without
    /// calling `build` — when disabled.
    #[inline]
    pub fn emit(&self, build: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.0 {
            sink.record(&build());
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.enabled() {
            "Tracer(enabled)"
        } else {
            "Tracer(disabled)"
        })
    }
}

/// A bounded in-memory ring buffer of events.
///
/// When full, the oldest events are dropped (and counted); a long run
/// with a small ring keeps the most recent window, which is what you
/// want when chasing an end-of-run anomaly.
pub struct RingSink {
    inner: Mutex<Ring>,
    capacity: usize,
}

struct Ring {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Ring {
                events: VecDeque::new(),
                dropped: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// An effectively unbounded sink for quick runs and tests.
    pub fn unbounded() -> Self {
        Self::new(usize::MAX)
    }

    /// Copies out the currently-buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let ring = self.inner.lock().expect("ring sink poisoned");
        ring.events.iter().cloned().collect()
    }

    /// How many events were evicted to respect the capacity.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("ring sink poisoned").dropped
    }
}

impl TraceSink for RingSink {
    fn record(&self, event: &TraceEvent) {
        let mut ring = self.inner.lock().expect("ring sink poisoned");
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event.clone());
    }
}

/// Wraps another sink, stamping a run id onto every event and
/// optionally capping the epoch range that is kept.
///
/// The experiment cache hands each de-duplicated simulation its own
/// `ScopedSink` so a batch's events can be told apart in one output
/// file, and `--trace-epochs N` maps to `limit = Some(N)`: epoch-series
/// records beyond epoch `N` are discarded at the source while discrete
/// events (consolidations, faults) are always kept.
pub struct ScopedSink {
    run: u32,
    limit: Option<u64>,
    inner: Arc<dyn TraceSink>,
}

impl ScopedSink {
    /// Scope `inner` to run id `run`, keeping epoch-series records only
    /// for epochs `< limit` when a limit is given.
    pub fn new(run: u32, limit: Option<u64>, inner: Arc<dyn TraceSink>) -> Self {
        Self { run, limit, inner }
    }
}

impl TraceSink for ScopedSink {
    fn record(&self, event: &TraceEvent) {
        if let (Some(limit), Some(epoch)) = (self.limit, event.epoch()) {
            if epoch >= limit {
                return;
            }
        }
        let mut stamped = event.clone();
        stamped.run = self.run;
        self.inner.record(&stamped);
    }
}

/// An incremental streaming sink: every event is rendered as one JSONL
/// line ([`crate::export::to_jsonl_line`]) and written — then flushed —
/// immediately, so a consumer on the other end of a pipe or socket sees
/// epoch traces *while the simulation runs* instead of after export.
///
/// Contrast with [`RingSink`] + [`crate::export::to_jsonl`], the batch
/// path: the ring buffers everything and the campaign sorts into
/// canonical cross-run order at the end. A stream cannot reorder, so a
/// multi-run batch streamed through one `StreamSink` interleaves runs
/// in completion order; per-run order is still deterministic (each
/// simulation is single-threaded), and every line carries its run id
/// for downstream grouping.
///
/// Write errors **latch**: after the first failed write (e.g. the
/// consumer hung up), the sink stops writing and [`StreamSink::failed`]
/// reports it. Observation must never take down the simulation, so the
/// error is never propagated as a panic.
pub struct StreamSink<W: std::io::Write + Send> {
    inner: Mutex<StreamState<W>>,
}

struct StreamState<W> {
    writer: W,
    failed: bool,
}

impl<W: std::io::Write + Send> StreamSink<W> {
    /// Streams events into `writer`, one JSONL line per event.
    pub fn new(writer: W) -> Self {
        Self {
            inner: Mutex::new(StreamState {
                writer,
                failed: false,
            }),
        }
    }

    /// True once a write or flush has failed; all later events are
    /// dropped silently.
    pub fn failed(&self) -> bool {
        self.inner.lock().expect("stream sink poisoned").failed
    }

    /// Consumes the sink, returning the writer (for handing a socket
    /// back, or inspecting a buffer in tests).
    pub fn into_inner(self) -> W {
        self.inner
            .into_inner()
            .expect("stream sink poisoned")
            .writer
    }
}

impl<W: std::io::Write + Send> TraceSink for StreamSink<W> {
    fn record(&self, event: &TraceEvent) {
        let mut state = self.inner.lock().expect("stream sink poisoned");
        if state.failed {
            return;
        }
        let line = crate::export::to_jsonl_line(event);
        let ok = state
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| state.writer.write_all(b"\n"))
            .and_then(|()| state.writer.flush())
            .is_ok();
        if !ok {
            state.failed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceKind;

    fn decommission(tick: u64) -> TraceEvent {
        TraceEvent::at(
            tick,
            TraceKind::Decommission {
                cluster: 0,
                core: 0,
            },
        )
    }

    fn chip_epoch(epoch: u64) -> TraceEvent {
        TraceEvent::at(
            epoch * 100,
            TraceKind::ChipEpoch {
                epoch,
                instructions: 1,
                energy_pj: 1.0,
                epi_pj: 1.0,
                l3_miss_rate: 0.0,
                active_cores: 1,
            },
        )
    }

    #[test]
    fn disabled_tracer_never_builds() {
        let tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        let mut built = false;
        tracer.emit(|| {
            built = true;
            decommission(0)
        });
        assert!(!built);
    }

    #[test]
    fn ring_drops_oldest() {
        let ring = RingSink::new(2);
        for t in 0..5 {
            ring.record(&decommission(t));
        }
        let kept = ring.snapshot();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].tick, 3);
        assert_eq!(kept[1].tick, 4);
        assert_eq!(ring.dropped(), 3);
    }

    #[test]
    fn scoped_sink_stamps_and_limits() {
        let ring = Arc::new(RingSink::unbounded());
        let scoped = ScopedSink::new(7, Some(2), ring.clone());
        scoped.record(&chip_epoch(0));
        scoped.record(&chip_epoch(1));
        scoped.record(&chip_epoch(2)); // at the limit: dropped
        scoped.record(&decommission(999)); // discrete: always kept
        let kept = ring.snapshot();
        assert_eq!(kept.len(), 3);
        assert!(kept.iter().all(|e| e.run == 7));
        assert_eq!(
            kept.iter().filter(|e| e.epoch().is_some()).count(),
            2,
            "epoch series capped at the limit"
        );
    }

    #[test]
    fn sink_is_shareable_across_threads() {
        let ring = Arc::new(RingSink::unbounded());
        let tracer = Tracer::new(ring.clone());
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                let t = tracer.clone();
                std::thread::spawn(move || {
                    for j in 0..100 {
                        t.emit(|| decommission(i * 1000 + j));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.snapshot().len(), 400);
    }

    #[test]
    fn stream_sink_writes_one_valid_jsonl_line_per_event_incrementally() {
        let sink = StreamSink::new(Vec::<u8>::new());
        sink.record(&decommission(5));
        sink.record(&chip_epoch(1));
        assert!(!sink.failed());
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        // Streamed lines must parse exactly like the batch export.
        let parsed = crate::export::validate_jsonl(&text).expect("streamed lines must validate");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], decommission(5));
        assert_eq!(parsed[1], chip_epoch(1));
    }

    /// A writer that fails after `ok_writes` successful writes.
    struct FlakyWriter {
        ok_writes: usize,
        written: Vec<u8>,
    }

    impl std::io::Write for FlakyWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.ok_writes == 0 {
                return Err(std::io::Error::other("consumer hung up"));
            }
            self.ok_writes -= 1;
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn stream_sink_latches_write_errors_instead_of_panicking() {
        let sink = StreamSink::new(FlakyWriter {
            ok_writes: 2, // one event = line + newline = two writes
            written: Vec::new(),
        });
        sink.record(&decommission(1));
        assert!(!sink.failed());
        sink.record(&decommission(2)); // write fails here
        assert!(sink.failed(), "the failed write must latch");
        sink.record(&decommission(3)); // silently dropped
        let writer = sink.into_inner();
        let text = String::from_utf8(writer.written).unwrap();
        assert_eq!(
            text.lines().count(),
            1,
            "only the pre-failure event may reach the writer"
        );
    }
}
