//! # respin-trace — epoch-level observability for the Respin stack
//!
//! The paper's claims are all *time-resolved*: the VCM consolidates on
//! per-epoch EPI deltas, half-misses emerge from transient arbiter
//! contention, and the fault machinery fires mid-run. This crate makes
//! those dynamics visible without perturbing them:
//!
//! * [`TraceEvent`] / [`TraceKind`] — the structured event taxonomy:
//!   ring-bufferable epoch time-series (per-cluster EPI, per-core
//!   frequency, half-miss rate, arbiter occupancy, L2/L3 miss rates,
//!   fault/retry/scrub counters) plus discrete events (consolidation
//!   power-off/on, migrations, decommissions, SECDED corrections).
//! * [`TraceSink`] — the collection trait. [`RingSink`] keeps a bounded
//!   in-memory ring; [`ScopedSink`] stamps run ids and applies an epoch
//!   cap so long campaigns keep only what was asked for.
//! * [`Tracer`] — the handle threaded through the simulator. A disabled
//!   tracer is a `None`: [`Tracer::emit`] takes a closure, so when
//!   tracing is off *no event is even constructed*. Simulation results
//!   are bit-identical with tracing on or off — sinks observe, they
//!   never steer.
//! * [`export`] — JSONL (one event per line) and Chrome-trace
//!   (Perfetto/`chrome://tracing`-loadable) renderings.
//!
//! The crate is a leaf: it depends only on the vendored serde layer, so
//! every other Respin crate can emit into it.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Tests may unwrap: a panic IS the failure report there.
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(clippy::all)]

pub mod event;
pub mod export;
pub mod sink;

pub use event::{finite_or_zero, TraceEvent, TraceKind};
pub use export::{canonical_order, to_chrome_trace, to_jsonl, to_jsonl_line, validate_jsonl};
pub use sink::{RingSink, ScopedSink, StreamSink, TraceSink, Tracer};
