//! The trace event taxonomy.
//!
//! Two families share one envelope:
//!
//! * **Epoch series** — sampled once per consolidation epoch, carrying an
//!   `epoch` index: [`TraceKind::ClusterEpoch`], [`TraceKind::CacheEpoch`],
//!   [`TraceKind::ChipEpoch`], [`TraceKind::FaultEpoch`],
//!   [`TraceKind::VcmDecision`]. These are the ring-buffered time-series
//!   behind the paper's figures (EPI, half-miss rate, occupancy, miss
//!   rates, fault counters).
//! * **Discrete events** — fired at the tick they happen:
//!   [`TraceKind::Consolidation`] (power-off/on), [`TraceKind::Migration`],
//!   [`TraceKind::CoreFault`], [`TraceKind::Decommission`],
//!   [`TraceKind::FaultCell`] (SECDED corrections and friends, forwarded
//!   from the bounded fault trace), and [`TraceKind::RunStart`] markers.

use serde::{Deserialize, Serialize};

/// Clamps a ratio to a JSON-representable value.
///
/// JSON has no `inf`/`NaN` literal, so undefined ratios — the EPI of an
/// epoch that retired nothing, for instance — are recorded as `0.0` by
/// convention. Emitters must pass every potentially-undefined `f64`
/// through this so a serialised trace roundtrips losslessly.
#[must_use]
pub fn finite_or_zero(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// One trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Run id stamped by the collection layer (0 when a single run is
    /// traced directly).
    pub run: u32,
    /// Cache tick the event refers to (epoch-end tick for epoch series).
    pub tick: u64,
    /// Payload.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Builds an event for a directly-traced run (run id 0).
    pub fn at(tick: u64, kind: TraceKind) -> Self {
        Self { run: 0, tick, kind }
    }

    /// The epoch index, for epoch-series records.
    pub fn epoch(&self) -> Option<u64> {
        match &self.kind {
            TraceKind::ClusterEpoch { epoch, .. }
            | TraceKind::CacheEpoch { epoch, .. }
            | TraceKind::ChipEpoch { epoch, .. }
            | TraceKind::FaultEpoch { epoch, .. }
            | TraceKind::VcmDecision { epoch, .. } => Some(*epoch),
            _ => None,
        }
    }

    /// Short stable name of the payload variant (Chrome-trace event name,
    /// grep target in smoke gates).
    pub fn name(&self) -> &'static str {
        match &self.kind {
            TraceKind::RunStart { .. } => "RunStart",
            TraceKind::ClusterEpoch { .. } => "ClusterEpoch",
            TraceKind::CacheEpoch { .. } => "CacheEpoch",
            TraceKind::ChipEpoch { .. } => "ChipEpoch",
            TraceKind::FaultEpoch { .. } => "FaultEpoch",
            TraceKind::VcmDecision { .. } => "VcmDecision",
            TraceKind::Consolidation { .. } => "Consolidation",
            TraceKind::Migration { .. } => "Migration",
            TraceKind::CoreFault { .. } => "CoreFault",
            TraceKind::Decommission { .. } => "Decommission",
            TraceKind::FaultCell { .. } => "FaultCell",
        }
    }
}

/// What happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A (de-duplicated) simulation actually started executing. The
    /// experiment cache emits exactly one per underlying run, so the
    /// count of these is the count of simulations paid for.
    RunStart {
        /// The canonical serialised `RunOptions` cache key.
        options: String,
    },
    /// Per-cluster consolidation-epoch sample.
    ClusterEpoch {
        /// Cluster index.
        cluster: usize,
        /// Epoch index since the last measurement reset.
        epoch: u64,
        /// Instructions retired by the cluster during the epoch.
        instructions: u64,
        /// Cluster-local energy spent during the epoch, pJ.
        energy_pj: f64,
        /// Energy per instruction, pJ (`0.0` when nothing retired — see
        /// [`finite_or_zero`]).
        epi_pj: f64,
        /// Active physical cores at epoch end.
        active_cores: usize,
        /// Cores not decommissioned by fault injection.
        healthy_cores: usize,
        /// Per-core effective frequency, MHz (0 for gated/faulty cores).
        core_freq_mhz: Vec<f64>,
    },
    /// Per-cluster shared-L1 + L2 behaviour over one epoch (deltas).
    CacheEpoch {
        /// Cluster index.
        cluster: usize,
        /// Epoch index.
        epoch: u64,
        /// Read requests this epoch.
        reads: u64,
        /// Read misses forwarded down the hierarchy.
        read_misses: u64,
        /// Half-miss responses (§II-A transient arbiter contention).
        half_misses: u64,
        /// Write-port operations (stores + fills).
        writes: u64,
        /// `half_misses / reads` for the epoch.
        half_miss_rate: f64,
        /// Mean requests arriving per cache cycle at the arbiter (from
        /// the Figure 10 arrival histogram; the 4+ bin counts as 4).
        arbiter_occupancy: f64,
        /// L2 miss rate over the epoch.
        l2_miss_rate: f64,
    },
    /// Chip-wide epoch sample.
    ChipEpoch {
        /// Epoch index.
        epoch: u64,
        /// Instructions retired chip-wide during the epoch.
        instructions: u64,
        /// Chip energy spent during the epoch, pJ (cluster-local books).
        energy_pj: f64,
        /// Chip-wide energy per instruction, pJ (`0.0` when nothing
        /// retired — see [`finite_or_zero`]).
        epi_pj: f64,
        /// L3 miss rate over the epoch.
        l3_miss_rate: f64,
        /// Total active cores at epoch end.
        active_cores: usize,
    },
    /// Fault/recovery counters accumulated during one epoch (deltas;
    /// emitted only while fault injection or scrubbing is configured).
    FaultEpoch {
        /// Epoch index.
        epoch: u64,
        /// STT-RAM write attempts that failed verification.
        write_faults: u64,
        /// Extra write attempts issued by write-verify-retry.
        write_retries: u64,
        /// Bit flips from retention decay.
        retention_flips: u64,
        /// Single-bit errors corrected by SECDED.
        ecc_corrected: u64,
        /// Double-bit errors detected by SECDED.
        ecc_detected: u64,
        /// Corrupted reads consumed undetected.
        uncorrected_escapes: u64,
        /// Lines visited by epoch-boundary scrubbing.
        scrubbed_lines: u64,
        /// Scrub visits that rewrote an ECC-corrected line.
        scrub_rewrites: u64,
        /// Recovery energy spent this epoch, pJ.
        recovery_energy_pj: f64,
    },
    /// A consolidation policy observed the epoch's EPI and asked for a
    /// different core count (the VCM's Figure 5 decision input).
    VcmDecision {
        /// Cluster index.
        cluster: usize,
        /// Epoch index.
        epoch: u64,
        /// Chip-wide EPI the decision was based on, pJ (`0.0` when
        /// undefined — see [`finite_or_zero`]).
        epi_pj: f64,
        /// Relative EPI change vs the previous epoch (`null` on the
        /// first usable epoch).
        epi_delta: Option<f64>,
        /// Active cores before the decision.
        current: usize,
        /// Requested active cores.
        target: usize,
    },
    /// Consolidation changed a cluster's active-core count (power-off
    /// when `to < from`, power-on when `to > from`).
    Consolidation {
        /// Cluster index.
        cluster: usize,
        /// Active cores before.
        from: usize,
        /// Active cores after.
        to: usize,
        /// Total active cores chip-wide after the change.
        total_active: usize,
    },
    /// A virtual core was migrated onto a new host core.
    Migration {
        /// Cluster index.
        cluster: usize,
        /// Cluster-local virtual-core id.
        vcore: usize,
        /// Destination physical core.
        to_core: usize,
    },
    /// A transient core fault was injected.
    CoreFault {
        /// Cluster index.
        cluster: usize,
        /// Core index within the cluster.
        core: usize,
        /// Faults observed on this core so far (including this one).
        fault_count: u32,
    },
    /// A core crossed the fault threshold and was decommissioned.
    Decommission {
        /// Cluster index.
        cluster: usize,
        /// Core index within the cluster.
        core: usize,
    },
    /// A cell-level fault event (SECDED correction/detection, retry,
    /// retention flip, scrub action) forwarded from the bounded
    /// per-array fault trace.
    FaultCell {
        /// Cluster whose shared-L1 array fired the event.
        cluster: usize,
        /// Stable kind label (e.g. `EccCorrected`, `WriteRetried`).
        kind: String,
        /// Block address involved (0 for core-level events).
        addr: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_extraction() {
        let e = TraceEvent::at(
            10,
            TraceKind::ChipEpoch {
                epoch: 3,
                instructions: 100,
                energy_pj: 1.0,
                epi_pj: 0.01,
                l3_miss_rate: 0.5,
                active_cores: 8,
            },
        );
        assert_eq!(e.epoch(), Some(3));
        assert_eq!(e.name(), "ChipEpoch");
        let d = TraceEvent::at(
            7,
            TraceKind::Decommission {
                cluster: 1,
                core: 2,
            },
        );
        assert_eq!(d.epoch(), None);
        assert_eq!(d.name(), "Decommission");
    }

    #[test]
    fn events_roundtrip_through_json() {
        let events = vec![
            TraceEvent::at(
                0,
                TraceKind::RunStart {
                    options: "{\"arch\":\"ShStt\"}".into(),
                },
            ),
            TraceEvent::at(
                5,
                TraceKind::CacheEpoch {
                    cluster: 0,
                    epoch: 1,
                    reads: 10,
                    read_misses: 2,
                    half_misses: 1,
                    writes: 4,
                    half_miss_rate: 0.1,
                    arbiter_occupancy: 0.8,
                    l2_miss_rate: 0.25,
                },
            ),
            TraceEvent::at(
                9,
                TraceKind::VcmDecision {
                    cluster: 1,
                    epoch: 2,
                    epi_pj: 42.0,
                    epi_delta: Some(-0.05),
                    current: 4,
                    target: 3,
                },
            ),
        ];
        for ev in events {
            let json = serde_json::to_string(&ev).unwrap();
            let back: TraceEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, ev);
        }
    }
}
