//! Renderings: JSONL for scripts, Chrome trace for eyeballs.
//!
//! JSONL is one [`TraceEvent`] per line — the stable machine interface;
//! [`validate_jsonl`] round-trips it and is what the CI smoke gate
//! calls. The Chrome-trace rendering targets `chrome://tracing` and
//! Perfetto's legacy JSON loader: epoch series become counter tracks
//! (`"ph": "C"`) and discrete events become instants (`"ph": "i"`), so
//! EPI, half-miss rate and active-core count plot as stacked tracks
//! with consolidations and faults pinned on top.

use serde::Value;

use crate::event::{TraceEvent, TraceKind};

/// Picoseconds of simulated time per cache tick, mirrored from the
/// simulator's clock base (2.5 GHz cache domain).
const CACHE_PERIOD_PS: f64 = 400.0;

/// Sorts events into the canonical cross-schedule order: a **stable**
/// sort by run id.
///
/// Each simulation emits its own events in deterministic order (the
/// simulator is seeded and single-threaded per run), but a parallel
/// sweep interleaves different runs' events in the shared sink in
/// whatever order the OS schedules them. Grouping by run id — stably,
/// so within-run order is untouched — restores a total order that is a
/// pure function of *what ran*: exports of the same campaign are
/// byte-identical at every `RESPIN_THREADS`. Run ids themselves are
/// schedule-independent hashes of the run's options/label (see
/// `respin-core`'s experiment cache), which is what makes this sort
/// canonical rather than merely deterministic-per-schedule.
pub fn canonical_order(events: &mut [TraceEvent]) {
    events.sort_by_key(|e| e.run);
}

/// Renders one event as its JSONL line (no trailing newline) — the
/// per-event unit [`to_jsonl`] is built from, exposed for incremental
/// consumers (the streaming sink, the `respin-serve` wire protocol)
/// that emit lines as events happen instead of exporting at the end.
pub fn to_jsonl_line(event: &TraceEvent) -> String {
    serde_json::to_string(event).expect("trace events always serialise")
}

/// Renders events as JSON Lines: one event per line, empty string for
/// no events.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&to_jsonl_line(ev));
        out.push('\n');
    }
    out
}

/// Parses JSONL produced by [`to_jsonl`] back into events.
///
/// Returns `Err((line_number, message))` (1-based) on the first line
/// that is not a valid [`TraceEvent`]. Blank lines are rejected: a
/// trace file with holes is a bug, not a formatting choice.
pub fn validate_jsonl(jsonl: &str) -> Result<Vec<TraceEvent>, (usize, String)> {
    let mut events = Vec::new();
    for (idx, line) in jsonl.lines().enumerate() {
        let parsed: TraceEvent =
            serde_json::from_str(line).map_err(|e| (idx + 1, format!("{e:?}")))?;
        events.push(parsed);
    }
    Ok(events)
}

/// Renders events as a Chrome-trace (Trace Event Format) JSON object,
/// loadable in `chrome://tracing` or Perfetto.
///
/// Timestamps are microseconds of *simulated* time (tick ×
/// 400 ps). Counter samples group by variant name and cluster; the
/// track id (`pid`) is the run id so batch traces don't collide.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let trace_events: Vec<Value> = events.iter().map(chrome_event).collect();
    let root = Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(trace_events)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ]);
    serde_json::to_string(&root).expect("chrome trace always serialises")
}

fn micros(tick: u64) -> f64 {
    // Guard: ticks far beyond any simulation length lose f64 precision,
    // which is fine for a visual timeline.
    (tick as f64) * CACHE_PERIOD_PS / 1_000_000.0
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn f(v: f64) -> Value {
    Value::Float(v)
}

fn u(v: u64) -> Value {
    Value::UInt(v)
}

fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

/// One event in Trace Event Format. `ph: "C"` counters carry their
/// samples in `args`; `ph: "i"` instants carry context in `args`.
fn chrome_event(ev: &TraceEvent) -> Value {
    let (name, ph, tid, args): (String, &str, u64, Value) = match &ev.kind {
        TraceKind::RunStart { options } => (
            "RunStart".to_string(),
            "i",
            0,
            obj(vec![("options", s(options))]),
        ),
        TraceKind::ClusterEpoch {
            cluster,
            epoch,
            instructions,
            energy_pj,
            epi_pj,
            active_cores,
            healthy_cores,
            ..
        } => (
            format!("cluster{cluster}"),
            "C",
            *cluster as u64 + 1,
            obj(vec![
                ("epoch", u(*epoch)),
                ("instructions", u(*instructions)),
                ("energy_pj", f(*energy_pj)),
                ("epi_pj", f(*epi_pj)),
                ("active_cores", u(*active_cores as u64)),
                ("healthy_cores", u(*healthy_cores as u64)),
            ]),
        ),
        TraceKind::CacheEpoch {
            cluster,
            epoch,
            half_miss_rate,
            arbiter_occupancy,
            l2_miss_rate,
            ..
        } => (
            format!("cache{cluster}"),
            "C",
            *cluster as u64 + 1,
            obj(vec![
                ("epoch", u(*epoch)),
                ("half_miss_rate", f(*half_miss_rate)),
                ("arbiter_occupancy", f(*arbiter_occupancy)),
                ("l2_miss_rate", f(*l2_miss_rate)),
            ]),
        ),
        TraceKind::ChipEpoch {
            epoch,
            epi_pj,
            l3_miss_rate,
            active_cores,
            ..
        } => (
            "chip".to_string(),
            "C",
            0,
            obj(vec![
                ("epoch", u(*epoch)),
                ("epi_pj", f(*epi_pj)),
                ("l3_miss_rate", f(*l3_miss_rate)),
                ("active_cores", u(*active_cores as u64)),
            ]),
        ),
        TraceKind::FaultEpoch {
            epoch,
            write_retries,
            ecc_corrected,
            uncorrected_escapes,
            scrubbed_lines,
            ..
        } => (
            "faults".to_string(),
            "C",
            0,
            obj(vec![
                ("epoch", u(*epoch)),
                ("write_retries", u(*write_retries)),
                ("ecc_corrected", u(*ecc_corrected)),
                ("uncorrected_escapes", u(*uncorrected_escapes)),
                ("scrubbed_lines", u(*scrubbed_lines)),
            ]),
        ),
        TraceKind::VcmDecision {
            cluster,
            epi_pj,
            current,
            target,
            ..
        } => (
            "VcmDecision".to_string(),
            "i",
            *cluster as u64 + 1,
            obj(vec![
                ("epi_pj", f(*epi_pj)),
                ("current", u(*current as u64)),
                ("target", u(*target as u64)),
            ]),
        ),
        TraceKind::Consolidation {
            cluster,
            from,
            to,
            total_active,
        } => (
            "Consolidation".to_string(),
            "i",
            *cluster as u64 + 1,
            obj(vec![
                ("from", u(*from as u64)),
                ("to", u(*to as u64)),
                ("total_active", u(*total_active as u64)),
            ]),
        ),
        TraceKind::Migration {
            cluster,
            vcore,
            to_core,
        } => (
            "Migration".to_string(),
            "i",
            *cluster as u64 + 1,
            obj(vec![
                ("vcore", u(*vcore as u64)),
                ("to_core", u(*to_core as u64)),
            ]),
        ),
        TraceKind::CoreFault {
            cluster,
            core,
            fault_count,
        } => (
            "CoreFault".to_string(),
            "i",
            *cluster as u64 + 1,
            obj(vec![
                ("core", u(*core as u64)),
                ("fault_count", u(u64::from(*fault_count))),
            ]),
        ),
        TraceKind::Decommission { cluster, core } => (
            "Decommission".to_string(),
            "i",
            *cluster as u64 + 1,
            obj(vec![("core", u(*core as u64))]),
        ),
        TraceKind::FaultCell {
            cluster,
            kind,
            addr,
        } => (
            "FaultCell".to_string(),
            "i",
            *cluster as u64 + 1,
            obj(vec![("kind", s(kind)), ("addr", u(*addr))]),
        ),
    };
    let mut fields = vec![
        ("name", s(&name)),
        ("ph", s(ph)),
        ("ts", f(micros(ev.tick))),
        ("pid", u(u64::from(ev.run))),
        ("tid", u(tid)),
        ("args", args),
    ];
    if ph == "i" {
        // Instant scope: "t" = thread-scoped tick mark.
        fields.push(("s", s("t")));
    }
    obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceKind;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::at(
                0,
                TraceKind::RunStart {
                    options: "{}".into(),
                },
            ),
            TraceEvent::at(
                2500,
                TraceKind::CacheEpoch {
                    cluster: 0,
                    epoch: 0,
                    reads: 100,
                    read_misses: 10,
                    half_misses: 5,
                    writes: 40,
                    half_miss_rate: 0.05,
                    arbiter_occupancy: 1.2,
                    l2_miss_rate: 0.3,
                },
            ),
            TraceEvent::at(
                2500,
                TraceKind::Consolidation {
                    cluster: 0,
                    from: 8,
                    to: 6,
                    total_active: 30,
                },
            ),
        ]
    }

    #[test]
    fn canonical_order_groups_by_run_and_keeps_within_run_order() {
        let ev = |run: u32, tick: u64| {
            let mut e = TraceEvent::at(
                tick,
                TraceKind::RunStart {
                    options: format!("r{run}t{tick}"),
                },
            );
            e.run = run;
            e
        };
        // Two interleavings of the same three runs (ids deliberately not
        // in arrival order), as a parallel sweep would produce.
        let mut a = vec![ev(9, 0), ev(2, 0), ev(9, 1), ev(5, 0), ev(2, 1)];
        let mut b = vec![ev(2, 0), ev(2, 1), ev(9, 0), ev(5, 0), ev(9, 1)];
        canonical_order(&mut a);
        canonical_order(&mut b);
        assert_eq!(a, b, "same runs, any schedule -> same canonical order");
        assert_eq!(to_jsonl(&a), to_jsonl(&b));
        // Within one run, emission order survives the stable sort.
        let ticks: Vec<u64> = a.iter().filter(|e| e.run == 9).map(|e| e.tick).collect();
        assert_eq!(ticks, vec![0, 1]);
    }

    #[test]
    fn jsonl_roundtrip() {
        let events = sample();
        let jsonl = to_jsonl(&events);
        assert_eq!(jsonl.lines().count(), events.len());
        let back = validate_jsonl(&jsonl).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn empty_trace_is_empty_string() {
        assert_eq!(to_jsonl(&[]), "");
        assert_eq!(validate_jsonl("").unwrap(), Vec::new());
    }

    #[test]
    fn validate_reports_bad_line() {
        let jsonl = format!("{}not json\n", to_jsonl(&sample()));
        let err = validate_jsonl(&jsonl).unwrap_err();
        assert_eq!(err.0, sample().len() + 1);
    }

    #[test]
    fn chrome_trace_has_counters_and_instants() {
        let doc = to_chrome_trace(&sample());
        let value: Value = serde_json::from_str(&doc).unwrap();
        let fields = value.as_object().expect("chrome trace must be an object");
        let events = fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .unwrap();
        let items = events.as_array().expect("traceEvents must be an array");
        assert_eq!(items.len(), 3);
        let phases: Vec<String> = items
            .iter()
            .map(|item| {
                let f = item.as_object().expect("event must be an object");
                let (_, ph) = f.iter().find(|(k, _)| k == "ph").unwrap();
                let Value::Str(p) = ph else {
                    panic!("ph must be a string");
                };
                p.clone()
            })
            .collect();
        assert_eq!(phases, vec!["i", "C", "i"]);
    }

    #[test]
    fn timestamps_are_simulated_micros() {
        // 2500 ticks × 400 ps = 1 µs.
        assert!((micros(2500) - 1.0).abs() < 1e-12);
    }
}
