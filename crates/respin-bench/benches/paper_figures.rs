//! Benches regenerating each figure of §V at micro scale (the full-scale
//! harness is the `respin-experiments` binary; these keep the regeneration
//! paths exercised and timed under `cargo bench`).
//!
//! One Criterion benchmark per figure: 1 / 6 / 7 / 8 / 10 / 11 and the
//! §V-D cluster sweep. Figures 9/12/13/14 (the consolidation set) live in
//! `consolidation.rs`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use respin_core::experiments::{cluster_sweep, fig1, fig10, fig11, fig6, fig7, fig8};
use respin_core::experiments::{ExpParams, RunCache};

/// Micro-scale parameters so a single regeneration fits a bench iteration.
fn micro() -> ExpParams {
    ExpParams {
        instructions_per_thread: 2_000,
        warmup_per_thread: 500,
        epoch_instructions: 1_000,
        seed: 42,
    }
}

macro_rules! fig_bench {
    ($fn_name:ident, $name:literal, $module:ident) => {
        fn $fn_name(c: &mut Criterion) {
            let mut g = c.benchmark_group("paper_figures");
            g.sample_size(10);
            g.bench_function($name, |b| {
                b.iter(|| {
                    // Fresh cache each iteration: measure the real work.
                    let cache = RunCache::new();
                    black_box($module::generate(&cache, &micro()))
                })
            });
            g.finish();
        }
    };
}

fig_bench!(bench_fig1, "fig1_power_breakdown", fig1);
fig_bench!(bench_fig6, "fig6_power", fig6);
fig_bench!(bench_fig7, "fig7_perf", fig7);
fig_bench!(bench_fig8, "fig8_energy_size", fig8);
fig_bench!(bench_fig10, "fig10_arrivals", fig10);
fig_bench!(bench_fig11, "fig11_latency", fig11);
fig_bench!(bench_cluster, "cluster_sweep", cluster_sweep);

criterion_group!(
    benches,
    bench_fig1,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig10,
    bench_fig11,
    bench_cluster
);
criterion_main!(benches);
