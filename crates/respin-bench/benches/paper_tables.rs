//! Benches regenerating the paper's tables: the Table III technology
//! model, the Table I/IV configuration builders, and chip construction
//! for every Table IV configuration.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use respin_core::arch::ArchConfig;
use respin_sim::{CacheSizeClass, Chip};
use respin_workloads::Benchmark;

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3_technology_model", |b| {
        b.iter(|| black_box(respin_power::table3::generate()))
    });
}

fn bench_table1_geometries(c: &mut Criterion) {
    c.bench_function("table1_cache_geometries", |b| {
        b.iter(|| {
            for size in CacheSizeClass::ALL {
                let cfg = ArchConfig::ShStt.chip_config(size, 16);
                black_box(cfg.l1d_geometry());
                black_box(cfg.l2_geometry());
                black_box(cfg.l3_geometry());
            }
        })
    });
}

fn bench_table4_chip_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_chip_construction");
    g.sample_size(10);
    for arch in [ArchConfig::PrSramNt, ArchConfig::ShStt, ArchConfig::ShSttCc] {
        g.bench_function(arch.name(), |b| {
            let spec = Benchmark::Fft.spec();
            b.iter(|| {
                let config = arch.chip_config(CacheSizeClass::Medium, 16);
                black_box(Chip::new(config, &spec, 1))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_table3,
    bench_table1_geometries,
    bench_table4_chip_construction
);
criterion_main!(benches);
