//! Benches of the §III consolidation machinery: the greedy search itself,
//! clone-replay oracle decisions, migration, and the consolidation figures
//! (9, 12/13, 14) at micro scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use respin_core::arch::ArchConfig;
use respin_core::consolidation::{oracle_decide, GreedyConfig, GreedySearch};
use respin_core::experiments::{fig12_13, fig14, fig9, ExpParams, RunCache};
use respin_sim::{CacheSizeClass, Chip};
use respin_workloads::Benchmark;

fn micro() -> ExpParams {
    ExpParams {
        instructions_per_thread: 2_000,
        warmup_per_thread: 500,
        epoch_instructions: 1_000,
        seed: 42,
    }
}

fn micro_chip() -> Chip {
    let mut config = ArchConfig::ShSttCc.chip_config(CacheSizeClass::Medium, 8);
    config.clusters = 1;
    config.instructions_per_thread = Some(1 << 40);
    config.epoch_instructions = 2_000;
    Chip::new(config, &Benchmark::Radix.spec(), 1)
}

fn bench_greedy_search(c: &mut Criterion) {
    c.bench_function("greedy_decide", |b| {
        let mut g = GreedySearch::new(16, GreedyConfig::default());
        let mut epi = 100.0;
        let mut current = 16;
        b.iter(|| {
            epi *= 0.999;
            current = g.decide(black_box(epi), current);
            black_box(current)
        })
    });
}

fn bench_oracle_decide(c: &mut Criterion) {
    let mut g = c.benchmark_group("oracle");
    g.sample_size(10);
    g.bench_function("oracle_decide_radius2", |b| {
        let mut chip = micro_chip();
        chip.run_epoch();
        b.iter(|| black_box(oracle_decide(&chip, 2)))
    });
    g.finish();
}

fn bench_migration(c: &mut Criterion) {
    let mut g = c.benchmark_group("migration");
    g.sample_size(10);
    g.bench_function("set_active_cores_roundtrip", |b| {
        let mut chip = micro_chip();
        chip.run_epoch();
        b.iter(|| {
            chip.set_active_cores(0, 4);
            chip.set_active_cores(0, 8);
            black_box(chip.clusters[0].active_cores)
        })
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_figures");
    g.sample_size(10);
    g.bench_function("fig9_energy", |b| {
        b.iter(|| {
            let cache = RunCache::new();
            black_box(fig9::generate(&cache, &micro()))
        })
    });
    g.finish();
}

fn bench_fig12_13(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_figures");
    g.sample_size(10);
    g.bench_function("fig12_13_traces", |b| {
        b.iter(|| {
            let cache = RunCache::new();
            black_box(fig12_13::generate(
                &cache,
                &micro(),
                "Figure 12",
                Benchmark::Radix,
            ))
        })
    });
    g.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_figures");
    g.sample_size(10);
    g.bench_function("fig14_active_cores", |b| {
        b.iter(|| {
            let cache = RunCache::new();
            black_box(fig14::generate(&cache, &micro()))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_greedy_search,
    bench_oracle_decide,
    bench_migration,
    bench_fig9,
    bench_fig12_13,
    bench_fig14
);
criterion_main!(benches);
