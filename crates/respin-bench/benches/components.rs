//! Microbenchmarks of the simulator substrates: cache arrays, the MESI
//! directory, the shared-L1 controller, workload generation, the variation
//! model, and raw chip stepping throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use respin_power::{array_params, CacheGeometry, MemTech};
use respin_sim::cache::{CacheArray, LineState};
use respin_sim::directory::Directory;
use respin_sim::shared_l1::SharedL1;
use respin_sim::{Chip, ChipConfig};
use respin_variation::{FrequencyBand, VariationConfig, VariationMap};
use respin_workloads::{Benchmark, ThreadGen};

fn bench_cache_array(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_array");
    g.throughput(Throughput::Elements(1));
    let geometry = CacheGeometry::new(256 * 1024, 32, 4);
    g.bench_function("touch_hit", |b| {
        let mut arr = CacheArray::new(geometry);
        arr.fill(0x1000, LineState::Exclusive);
        b.iter(|| black_box(arr.touch(black_box(0x1000))))
    });
    g.bench_function("fill_evict", |b| {
        let mut arr = CacheArray::new(geometry);
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(0x10000) & 0xFF_FFFF;
            black_box(arr.fill(black_box(addr), LineState::Modified))
        })
    });
    g.finish();
}

fn bench_directory(c: &mut Criterion) {
    let mut g = c.benchmark_group("mesi_directory");
    g.bench_function("read_write_evict", |b| {
        let mut dir = Directory::new();
        let mut line = 0u64;
        b.iter(|| {
            line = (line + 64) & 0xFFFF;
            dir.read(line, 0);
            dir.read(line, 1);
            dir.write(line, 2);
            dir.evict(line, 2);
        })
    });
    g.finish();
}

fn bench_shared_l1(c: &mut Criterion) {
    let mut g = c.benchmark_group("shared_l1");
    g.throughput(Throughput::Elements(1));
    g.bench_function("tick_with_traffic", |b| {
        let geometry = CacheGeometry::new(256 * 1024, 32, 4);
        let params = array_params(MemTech::SttRam, geometry, 1.0);
        let mut l1 = SharedL1::new(geometry, &params, 1, 14, 16, 0.6, 2);
        for i in 0..16u64 {
            l1.enqueue_fill(i << 10, 0, LineState::Exclusive);
        }
        let mut events = Vec::new();
        let mut t = 0u64;
        b.iter(|| {
            events.clear();
            let core = (t % 16) as usize;
            if t.is_multiple_of(4) && l1.can_accept_read(core) {
                l1.issue_read(core, (core as u64) << 10, t, 4);
            }
            l1.tick(t, &mut events);
            t += 1;
            black_box(events.len())
        })
    });
    g.finish();
}

fn bench_workload_gen(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_gen");
    g.throughput(Throughput::Elements(1));
    for bench in [Benchmark::Fft, Benchmark::Radiosity] {
        g.bench_function(bench.name(), |b| {
            let mut spec = bench.spec();
            spec.instructions_per_thread = u64::MAX / 2;
            let mut gen = ThreadGen::new(&spec, 0, 1);
            b.iter(|| black_box(gen.next_op()))
        });
    }
    g.finish();
}

fn bench_variation(c: &mut Criterion) {
    c.bench_function("variation_map_64_cores", |b| {
        let cfg = VariationConfig::default();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(VariationMap::generate(&cfg, 0.4, FrequencyBand::NT, seed))
        })
    });
}

fn bench_chip_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("chip_step");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("shared_16_cores_1k_ticks", |b| {
        let mut config = ChipConfig::nt_base();
        config.clusters = 1;
        config.instructions_per_thread = Some(u64::MAX / 4);
        let mut spec = Benchmark::Fft.spec();
        spec.instructions_per_thread = u64::MAX / 4;
        let mut chip = Chip::new(config, &spec, 1);
        b.iter(|| {
            for _ in 0..1000 {
                chip.step();
            }
            black_box(chip.tick)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cache_array,
    bench_directory,
    bench_shared_l1,
    bench_workload_gen,
    bench_variation,
    bench_chip_step
);
criterion_main!(benches);
