//! Fixed, seeded wall-clock suite behind the `bench_report` binary.
//!
//! Unlike the Criterion benches (statistical, interactive), this module
//! runs each suite **once** under [`std::time::Instant`] and reports the
//! raw numbers, so a `BENCH_PR<n>.json` snapshot can be committed at the
//! repo root and compared PR over PR (see DESIGN.md §12 for how to read
//! one). Everything is seeded from [`crate::BENCH_SEED`] or the
//! experiment defaults, so `instructions` and `ticks_skipped` are exact
//! across machines; only `wall_ms`/`ips` vary with the host.
//!
//! The idle-heavy suite doubles as a self-check of the event-driven fast
//! path: it runs the same workload under both the fast path and the
//! naive reference loop and [`run_suites`] returns an error unless the
//! two [`RunResult`]s are bit-identical and the fast path actually
//! skipped ticks.

use crate::BENCH_SEED;
use respin_core::arch::ArchConfig;
use respin_core::experiments::{ExpParams, RunCache};
use respin_core::runner::{self, RunOptions};
use respin_pool::Pool;
use respin_sim::{CacheSizeClass, Chip, FaultConfig, RunResult};
use respin_workloads::{Benchmark, Phase, PhaseSchedule, WorkloadSpec};
use std::time::Instant;

/// Identifies the report layout for downstream consumers (verify.sh, CI
/// schema check, future diffing tools). v2 = v1's `suites` map unchanged
/// plus the top-level `parallel` object (run-pool sweep timing). v3 =
/// v2 plus the top-level `cluster_shard` object (intra-run
/// cluster-parallel timing of one fixed big run at 1 vs N workers).
/// v4 = v3 plus the top-level `serve` object (daemon cold / memo-warm /
/// store-warm throughput under concurrent clients, and warm-hit
/// latency). v5 = v4 plus the `cluster_shard.gated` flag (the speedup
/// key is omitted when the measurement ran with more workers than host
/// CPUs, where a wall-clock speedup claim would be dishonest) and the
/// top-level `delta_vs_prev` object (per-suite ips ratio against the
/// previous committed `BENCH_PR<n>.json`; `null` when no prior report
/// was found).
pub const SCHEMA: &str = "respin-bench-report/v5";

/// One timed suite.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteResult {
    /// Suite name (JSON key in the report).
    pub name: &'static str,
    /// Wall-clock milliseconds for the whole suite (simulation only; no
    /// setup or I/O).
    pub wall_ms: f64,
    /// Retired instructions across every run in the suite
    /// (deterministic).
    pub instructions: u64,
    /// Simulated instructions per wall-clock second — the throughput
    /// figure tracked PR over PR.
    pub ips: f64,
    /// Ticks the event-driven fast path batch-skipped (deterministic; 0
    /// for reference-loop suites by construction).
    pub ticks_skipped: u64,
}

impl SuiteResult {
    fn new(name: &'static str, wall_ms: f64, instructions: u64, ticks_skipped: u64) -> Self {
        Self {
            name,
            wall_ms,
            instructions,
            // Guard the division: a degenerate 0 ms suite reports 0, not inf.
            ips: if wall_ms > 0.0 {
                instructions as f64 / (wall_ms / 1e3)
            } else {
                0.0
            },
            ticks_skipped,
        }
    }
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Run-pool sweep measurement: the same fixed batch of experiment runs
/// timed at one worker and at `threads` workers, self-gated on result
/// equality (see [`run_parallel_sweep`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelSweep {
    /// Worker count of the parallel pass (the resolved pool width).
    pub threads: usize,
    /// `std::thread::available_parallelism()` on the measuring host —
    /// context for the speedup (threads beyond physical CPUs cannot
    /// shorten CPU-bound wall-clock).
    pub host_cpus: usize,
    /// Batch positions dispatched (includes one deliberate duplicate).
    pub runs: usize,
    /// Distinct simulations actually paid for after batch pre-dedup.
    pub unique_runs: usize,
    /// Retired instructions summed over the batch (deterministic).
    pub instructions: u64,
    /// Wall-clock for the whole batch at threads=1.
    pub wall_ms_t1: f64,
    /// Wall-clock for the whole batch at `threads` workers.
    pub wall_ms_tn: f64,
    /// `wall_ms_t1 / wall_ms_tn`.
    pub speedup: f64,
}

/// The fixed sweep batch: ShStt and ShSttCc across a benchmark subset at
/// quick experiment scale (smoke shrinks budgets and the machine), plus
/// one duplicated entry so the batch pre-dedup path is always exercised.
fn sweep_batch(smoke: bool) -> Vec<RunOptions> {
    let mut params = ExpParams::quick();
    params.seed = BENCH_SEED;
    let benches: &[Benchmark] = if smoke {
        params.instructions_per_thread = 2_000;
        params.warmup_per_thread = 500;
        params.epoch_instructions = 1_000;
        &[Benchmark::Fft, Benchmark::Radix, Benchmark::Blackscholes]
    } else {
        &[
            Benchmark::Fft,
            Benchmark::Radix,
            Benchmark::Lu,
            Benchmark::Cholesky,
        ]
    };
    let mut batch = Vec::new();
    for &arch in &[ArchConfig::ShStt, ArchConfig::ShSttCc] {
        for &b in benches {
            let mut o = params.options(arch, b);
            if smoke {
                o.clusters = 1;
                o.cores_per_cluster = 8;
            }
            batch.push(o);
        }
    }
    let first = batch[0].clone();
    batch.push(first);
    batch
}

/// Times the fixed sweep at threads=1 and at `threads` workers (fresh
/// [`RunCache`] each, so the second pass cannot hit the first's memo)
/// and self-gates on the determinism contract.
///
/// # Errors
///
/// Returns a violated-contract description when any batch position's
/// [`RunResult`] differs between the two passes, or when the pre-dedup
/// collapsed the wrong number of distinct runs.
pub fn run_parallel_sweep(smoke: bool, threads: usize) -> Result<ParallelSweep, String> {
    let batch = sweep_batch(smoke);
    let unique_expected = batch.len() - 1; // one deliberate duplicate
    let run_at = |n: usize| {
        let cache = RunCache::new();
        let (results, wall_ms) = timed(|| cache.run_all_on(&Pool::with_threads(n), &batch));
        (results, cache.len(), wall_ms)
    };

    let (seq, seq_unique, wall_ms_t1) = run_at(1);
    let (par, par_unique, wall_ms_tn) = run_at(threads);

    for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
        if **s != **p {
            return Err(format!(
                "parallel sweep diverged from sequential at batch position {i}: \
                 threads=1 {{ticks: {}, instructions: {}}} vs threads={threads} \
                 {{ticks: {}, instructions: {}}}",
                s.ticks, s.instructions, p.ticks, p.instructions
            ));
        }
    }
    if seq_unique != unique_expected || par_unique != unique_expected {
        return Err(format!(
            "batch pre-dedup miscounted: expected {unique_expected} distinct runs, \
             got {seq_unique} (threads=1) / {par_unique} (threads={threads})"
        ));
    }

    Ok(ParallelSweep {
        threads,
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        runs: batch.len(),
        unique_runs: unique_expected,
        instructions: seq.iter().map(|r| r.instructions).sum(),
        wall_ms_t1,
        wall_ms_tn,
        speedup: if wall_ms_tn > 0.0 {
            wall_ms_t1 / wall_ms_tn
        } else {
            0.0
        },
    })
}

/// Intra-run cluster-sharding measurement: one fixed big run timed
/// sequentially (`cluster_workers = 1`) and cluster-parallel
/// (`cluster_workers = workers`), self-gated on bit-identical
/// [`RunResult`]s (see [`run_cluster_shard`]).
///
/// Unlike [`ParallelSweep`] there is **no speedup floor**: the sharded
/// loop synchronises every executed tick, so its profit depends on how
/// much per-cluster work each tick carries and on the host — the report
/// records what actually happened, with `host_cpus` as context.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterShard {
    /// Cluster-worker count of the parallel pass.
    pub workers: usize,
    /// `std::thread::available_parallelism()` on the measuring host.
    pub host_cpus: usize,
    /// Clusters in the fixed machine (the sharding width ceiling).
    pub clusters: usize,
    /// Retired instructions of the fixed run (deterministic).
    pub instructions: u64,
    /// Wall-clock for the run at `cluster_workers = 1`.
    pub wall_ms_w1: f64,
    /// Wall-clock for the run at `cluster_workers = workers`.
    pub wall_ms_wn: f64,
    /// `wall_ms_w1 / wall_ms_wn`.
    pub speedup: f64,
    /// True when `workers > host_cpus`: the passes time-sliced one CPU,
    /// so the wall-clock ratio measures scheduling overhead, not
    /// sharding profit. A gated report records the raw wall times but
    /// makes no speedup claim (the JSON omits the key).
    pub gated: bool,
}

/// The fixed cluster-shard run: barrier-heavy Ocean on a 4-cluster
/// SH-STT machine, where every cluster stays busy between global
/// barriers — the workload shape intra-run sharding exists for.
fn cluster_shard_options(smoke: bool) -> RunOptions {
    let mut o = RunOptions::new(ArchConfig::ShStt, Benchmark::Ocean);
    o.seed = BENCH_SEED;
    o.clusters = 4;
    o.cores_per_cluster = if smoke { 4 } else { 8 };
    o.instructions_per_thread = Some(if smoke { 2_000 } else { 12_000 });
    o.warmup_per_thread = if smoke { 500 } else { 2_000 };
    o.epoch_instructions = Some(if smoke { 1_000 } else { 3_000 });
    o
}

/// Times the fixed big run at `cluster_workers = 1` and at `workers`
/// (floored at 2: the point is to measure the *sharded* loop against
/// the sequential one, and a width-1 "parallel" pass would compare the
/// sequential loop to itself — on a 1-CPU host the floor honestly
/// records sharding overhead instead), and self-gates on the
/// determinism contract.
///
/// # Errors
///
/// Returns a violated-contract description when the cluster-parallel
/// [`RunResult`] differs from the sequential one in any field.
pub fn run_cluster_shard(smoke: bool, workers: usize) -> Result<ClusterShard, String> {
    let workers = workers.max(2);
    let base = cluster_shard_options(smoke);
    let run_at = |w: usize| {
        let mut o = base.clone();
        o.cluster_workers = Some(w);
        timed(|| runner::run_instrumented(&o).0)
    };

    let (seq, wall_ms_w1) = run_at(1);
    let (par, wall_ms_wn) = run_at(workers);
    if par != seq {
        return Err(format!(
            "cluster-sharded run diverged from sequential: \
             workers=1 {{ticks: {}, instructions: {}}} vs workers={workers} \
             {{ticks: {}, instructions: {}}}",
            seq.ticks, seq.instructions, par.ticks, par.instructions
        ));
    }

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    Ok(ClusterShard {
        workers,
        host_cpus,
        clusters: base.clusters,
        instructions: seq.instructions,
        wall_ms_w1,
        wall_ms_wn,
        speedup: if wall_ms_wn > 0.0 {
            wall_ms_w1 / wall_ms_wn
        } else {
            0.0
        },
        gated: workers > host_cpus,
    })
}

/// Daemon serving measurement: the fixed sweep batch pushed through a
/// live in-process `respin-serve` daemon by `clients` concurrent
/// connections in three phases — cold (every key simulated live),
/// memo-warm (same daemon, same keys), and store-warm (daemon restarted
/// over the same content-addressed store, memo empty) — self-gated on
/// every served result being bit-identical to the one-shot runner's
/// (see [`run_serve_bench`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBench {
    /// Concurrent client connections per phase.
    pub clients: usize,
    /// Daemon simulation thread budget.
    pub threads: usize,
    /// `std::thread::available_parallelism()` on the measuring host.
    pub host_cpus: usize,
    /// Batch positions each client requests per phase.
    pub runs_per_client: usize,
    /// Distinct simulations the cold phase actually pays for (the
    /// daemon memo dedups across racing clients).
    pub unique_runs: usize,
    /// Wall-clock for the cold phase (all clients, all requests).
    pub wall_ms_cold: f64,
    /// Wall-clock for the memo-warm phase.
    pub wall_ms_warm_memo: f64,
    /// Wall-clock for the store-warm phase (after daemon restart).
    pub wall_ms_warm_store: f64,
    /// Mean per-request latency of single-key warm requests — the
    /// figure a dashboard polling a resident daemon actually feels.
    pub warm_hit_ms: f64,
    /// Warm single-key requests timed for `warm_hit_ms`.
    pub warm_hits: usize,
}

/// Drives one phase: `clients` threads each sweep the full `batch`
/// through its own connection; returns per-client outcomes + wall time.
fn serve_phase(
    socket: &std::path::Path,
    batch: &[RunOptions],
    clients: usize,
) -> Result<(Vec<respin_serve::SweepOutcome>, f64), String> {
    let (outcomes, wall_ms) = timed(|| {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    scope.spawn(|| {
                        let mut client = respin_serve::Client::connect(socket)
                            .map_err(|e| format!("connect: {e}"))?;
                        client.sweep(batch.to_vec(), false)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().map_err(|_| "client thread panicked".to_string())?)
                .collect::<Result<Vec<_>, String>>()
        })
    });
    Ok((outcomes?, wall_ms))
}

/// Checks one phase's outcomes against the one-shot reference results
/// and returns how many positions were served live vs warm.
fn gate_phase(
    phase: &str,
    outcomes: &[respin_serve::SweepOutcome],
    reference: &[std::sync::Arc<RunResult>],
) -> Result<(usize, usize), String> {
    let mut live = 0;
    let mut warm = 0;
    for (c, outcome) in outcomes.iter().enumerate() {
        if !outcome.errors.is_empty() {
            return Err(format!(
                "serve {phase}: client {c} got errors: {:?}",
                outcome.errors
            ));
        }
        for (i, result) in outcome.results.iter().enumerate() {
            let Some(result) = result else {
                return Err(format!("serve {phase}: client {c} missing result {i}"));
            };
            if *result != *reference[i] {
                return Err(format!(
                    "serve {phase}: client {c} result {i} diverged from the one-shot \
                     runner: served {{ticks: {}, instructions: {}}} vs direct \
                     {{ticks: {}, instructions: {}}}",
                    result.ticks,
                    result.instructions,
                    reference[i].ticks,
                    reference[i].instructions
                ));
            }
        }
        live += outcome.done.live;
        warm += outcome.done.warm_memo + outcome.done.warm_store;
    }
    Ok((live, warm))
}

/// Hammers an in-process daemon with `clients` concurrent connections
/// over the fixed sweep batch: a cold phase, a memo-warm phase, a
/// daemon restart over the same store followed by a store-warm phase,
/// and a warm-hit latency loop — self-gated on the three-way
/// byte-identity contract (one-shot = live = warm) and on the warm
/// phases simulating nothing.
///
/// # Errors
///
/// Returns a violated-contract description when any served result
/// differs from the one-shot runner's, when a warm phase reports live
/// simulations, or when the daemon misbehaves (connection or protocol
/// errors).
pub fn run_serve_bench(smoke: bool, threads: usize) -> Result<ServeBench, String> {
    let batch = sweep_batch(smoke);
    let clients = if smoke { 3 } else { 4 };
    let reference = RunCache::new().run_all_on(&Pool::with_threads(threads.max(1)), &batch);

    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!("respin-bench-serve-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("serve bench dir: {e}"))?;
    let opts = respin_serve::ServeOptions {
        socket: dir.join("bench.sock"),
        store_dir: Some(dir.join("store")),
        store_budget_bytes: 0,
        threads: threads.max(1),
        max_jobs: 2,
        quiet: true,
    };
    let start = |opts: &respin_serve::ServeOptions| -> Result<std::thread::JoinHandle<()>, String> {
        let server = respin_serve::Server::bind(opts).map_err(|e| format!("bind daemon: {e}"))?;
        Ok(std::thread::spawn(move || {
            server.run().expect("daemon accept loop");
        }))
    };
    let stop = |handle: std::thread::JoinHandle<()>| -> Result<(), String> {
        let mut client =
            respin_serve::Client::connect(&opts.socket).map_err(|e| format!("connect: {e}"))?;
        client.shutdown()?;
        handle.join().map_err(|_| "daemon panicked".to_string())
    };

    // Phase 1+2: cold, then memo-warm, same daemon lifetime.
    let handle = start(&opts)?;
    eprintln!("bench: serve cold clients={clients} ...");
    let (cold, wall_ms_cold) = serve_phase(&opts.socket, &batch, clients)?;
    let (cold_live, _) = gate_phase("cold", &cold, &reference)?;
    if cold_live == 0 {
        return Err("serve cold phase simulated nothing live".to_string());
    }
    eprintln!("bench: serve warm-memo clients={clients} ...");
    let (warm, wall_ms_warm_memo) = serve_phase(&opts.socket, &batch, clients)?;
    let (warm_live, warm_warm) = gate_phase("warm-memo", &warm, &reference)?;
    if warm_live != 0 || warm_warm != clients * batch.len() {
        return Err(format!(
            "serve warm-memo phase must serve everything warm: live={warm_live} warm={warm_warm}"
        ));
    }

    // Warm-hit latency: single-key requests against the warm memo.
    let warm_hits = if smoke { 12 } else { 40 };
    let mut client =
        respin_serve::Client::connect(&opts.socket).map_err(|e| format!("connect: {e}"))?;
    let ((), warm_loop_ms) = timed(|| {
        for i in 0..warm_hits {
            let one = vec![batch[i % batch.len()].clone()];
            let outcome = client.sweep(one, false).expect("warm hit");
            assert_eq!(outcome.done.results, 1, "warm hit must serve one result");
        }
    });
    stop(handle)?;

    // Phase 3: restart over the same store; memo is empty, disk is not.
    let handle = start(&opts)?;
    eprintln!("bench: serve warm-store clients={clients} ...");
    let (stored, wall_ms_warm_store) = serve_phase(&opts.socket, &batch, clients)?;
    let (stored_live, stored_warm) = gate_phase("warm-store", &stored, &reference)?;
    if stored_live != 0 {
        return Err(format!(
            "serve warm-store phase re-simulated {stored_live} runs after restart"
        ));
    }
    if stored_warm != clients * batch.len() {
        return Err(format!(
            "serve warm-store phase served {stored_warm} warm, expected {}",
            clients * batch.len()
        ));
    }
    stop(handle)?;
    let _ = std::fs::remove_dir_all(&dir);

    Ok(ServeBench {
        clients,
        threads: threads.max(1),
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        runs_per_client: batch.len(),
        unique_runs: batch.len() - 1,
        wall_ms_cold,
        wall_ms_warm_memo,
        wall_ms_warm_store,
        warm_hit_ms: if warm_hits > 0 {
            warm_loop_ms / warm_hits as f64
        } else {
            0.0
        },
        warm_hits,
    })
}

/// fig6-style sweep: every benchmark (a subset in smoke mode) on the
/// ShStt configuration at quick scale, through the normal policy runner.
/// Public so `bench_report --fig6-only` can run just this suite for the
/// CI self-gating ips floor.
pub fn fig6_quick(smoke: bool) -> SuiteResult {
    let mut params = ExpParams::quick();
    let benches: &[Benchmark] = if smoke {
        params.instructions_per_thread = 2_000;
        params.warmup_per_thread = 500;
        params.epoch_instructions = 1_000;
        &[Benchmark::Fft, Benchmark::Radix, Benchmark::Blackscholes]
    } else {
        &Benchmark::ALL
    };
    let mut instructions = 0;
    let mut skipped = 0;
    let ((), wall_ms) = timed(|| {
        for &b in benches {
            let mut o = params.options(ArchConfig::ShStt, b);
            if smoke {
                o.clusters = 1;
                o.cores_per_cluster = 8;
            }
            let (r, s) = runner::run_instrumented(&o);
            instructions += r.instructions;
            skipped += s;
        }
    });
    SuiteResult::new("fig6_quick", wall_ms, instructions, skipped)
}

/// Resilience smoke: Radix on a 2×4 ShStt machine with write BER,
/// retention decay, ECC+scrub, and a seeded bad core that gets
/// decommissioned — the fault hooks on the hot path, timed.
fn resilience_smoke(smoke: bool) -> SuiteResult {
    let (ipt, warmup) = if smoke { (2_000, 500) } else { (12_000, 2_000) };
    let mut o = RunOptions::new(ArchConfig::ShStt, Benchmark::Radix);
    o.seed = BENCH_SEED;
    o.clusters = 2;
    o.cores_per_cluster = 4;
    o.instructions_per_thread = Some(ipt);
    o.warmup_per_thread = warmup;
    o.epoch_instructions = Some(2_000);
    let mut config = o.chip_config();
    config.faults = FaultConfig {
        write_ber: 1e-4,
        retention_flip_rate: 1e-12,
        retry_budget: 2,
        ecc: true,
        scrub: true,
        seeded_bad_core: Some(1),
        core_fault_threshold: 2,
        ..FaultConfig::off()
    };
    // ShStt has no consolidation policy, so driving the chip directly is
    // the same schedule `runner::run` would produce.
    let ((instructions, skipped), wall_ms) = timed(|| {
        let mut chip = Chip::new(config, &o.benchmark.spec(), o.seed);
        chip.run_warmup(warmup * 8);
        let r = chip.run_to_completion();
        (r.instructions, chip.ticks_skipped())
    });
    SuiteResult::new("resilience_smoke", wall_ms, instructions, skipped)
}

/// Consolidation-heavy: the greedy-search ShSttCc configuration on Radix,
/// where epoch boundaries (EPI probes, migrations, gating) dominate.
fn consolidation_heavy(smoke: bool) -> SuiteResult {
    let mut params = ExpParams::quick();
    if smoke {
        params.instructions_per_thread = 4_000;
        params.warmup_per_thread = 1_000;
        params.epoch_instructions = 1_000;
    }
    let mut o = params.options(ArchConfig::ShSttCc, Benchmark::Radix);
    if smoke {
        o.clusters = 2;
        o.cores_per_cluster = 8;
    }
    let mut instructions = 0;
    let mut skipped = 0;
    let ((), wall_ms) = timed(|| {
        let (r, s) = runner::run_instrumented(&o);
        instructions = r.instructions;
        skipped = s;
    });
    SuiteResult::new("consolidation_heavy", wall_ms, instructions, skipped)
}

/// The synthetic idle-heavy workload: long dependency stalls, so almost
/// every tick is dead time the fast path can batch over.
fn idle_spec(instructions_per_thread: u64) -> WorkloadSpec {
    let phase = Phase {
        idle_prob: 0.85,
        idle_cycles: 800,
        mem_frac: 0.10,
        ..Phase::compute(instructions_per_thread)
    };
    WorkloadSpec {
        name: "idle-heavy",
        schedule: PhaseSchedule::new(vec![phase]),
        private_ws_bytes: 16 * 1024,
        shared_ws_bytes: 256 * 1024,
        locks: 0,
        seed_salt: 0x1D7E,
        instructions_per_thread,
    }
}

/// Runs the idle-heavy workload on a 2×4 ShStt machine under either loop.
fn run_idle_heavy(reference: bool, ipt: u64) -> (RunResult, u64, f64) {
    let mut config = ArchConfig::ShStt.chip_config(CacheSizeClass::Medium, 4);
    config.clusters = 2;
    let ((result, skipped), wall_ms) = timed(|| {
        let mut chip = Chip::new(config, &idle_spec(ipt), BENCH_SEED);
        chip.set_reference_loop(reference);
        let r = chip.run_to_completion();
        let s = chip.ticks_skipped();
        (r, s)
    });
    (result, skipped, wall_ms)
}

/// Runs the full suite plus the run-pool parallel sweep and the
/// cluster-shard measurement. `smoke` shrinks every budget so the whole
/// thing finishes in a few seconds (used by verify.sh and CI); `threads`
/// is the worker count for the parallel pass of the sweep and for the
/// cluster-sharded run (capped at the machine's cluster count by the
/// chip itself).
///
/// # Errors
///
/// Returns a description of the violated contract when the idle-heavy
/// fast-path run is not bit-identical to the reference loop, when the
/// fast path failed to skip any ticks on a workload that is nearly all
/// idle time, when the parallel sweep diverges from its sequential twin
/// (see [`run_parallel_sweep`]), when the cluster-sharded run diverges
/// from its sequential twin (see [`run_cluster_shard`]), when the serve
/// bench violates the three-way byte-identity contract or a warm phase
/// simulates anything (see [`run_serve_bench`]), or — in full mode on a
/// host with ≥ 4 CPUs and ≥ 4 workers — when the pool speedup lands
/// below the 2x floor. The floor is conditional on `host_cpus` because
/// on a single-CPU host threads time-slice one core and a wall-clock
/// speedup is physically impossible; the determinism self-gates still
/// run there. The cluster-shard and serve measurements have no floors —
/// only identity gates.
pub fn run_suites(
    smoke: bool,
    threads: usize,
) -> Result<(Vec<SuiteResult>, ParallelSweep, ClusterShard, ServeBench), String> {
    let mut out = Vec::new();
    eprintln!("bench: fig6_quick ...");
    out.push(fig6_quick(smoke));
    eprintln!("bench: resilience_smoke ...");
    out.push(resilience_smoke(smoke));
    eprintln!("bench: consolidation_heavy ...");
    out.push(consolidation_heavy(smoke));

    eprintln!("bench: idle_heavy ...");
    let ipt = if smoke { 800 } else { 6_000 };
    let (fast, fast_skipped, fast_ms) = run_idle_heavy(false, ipt);
    eprintln!("bench: idle_heavy_reference ...");
    let (reference, ref_skipped, ref_ms) = run_idle_heavy(true, ipt);

    if fast != reference {
        return Err(format!(
            "fast path diverged from reference loop on idle-heavy: \
             fast {{ticks: {}, instructions: {}}} vs reference {{ticks: {}, instructions: {}}}",
            fast.ticks, fast.instructions, reference.ticks, reference.instructions
        ));
    }
    if fast_skipped == 0 {
        return Err("fast path skipped no ticks on the idle-heavy workload".to_string());
    }
    debug_assert_eq!(ref_skipped, 0, "reference loop must never skip");
    let speedup = if fast_ms > 0.0 { ref_ms / fast_ms } else { 0.0 };
    eprintln!("bench: idle_heavy ticks_skipped={fast_skipped} speedup={speedup:.2}");
    if !smoke && speedup < 2.0 {
        return Err(format!(
            "idle-heavy fast-path speedup {speedup:.2}x is below the 2x floor"
        ));
    }
    out.push(SuiteResult::new(
        "idle_heavy",
        fast_ms,
        fast.instructions,
        fast_skipped,
    ));
    out.push(SuiteResult::new(
        "idle_heavy_reference",
        ref_ms,
        reference.instructions,
        ref_skipped,
    ));

    eprintln!("bench: sweep_parallel threads={threads} ...");
    let parallel = run_parallel_sweep(smoke, threads)?;
    eprintln!(
        "bench: sweep_parallel runs={} unique={} t1={:.0}ms tN={:.0}ms speedup={:.2} \
         host_cpus={}",
        parallel.runs,
        parallel.unique_runs,
        parallel.wall_ms_t1,
        parallel.wall_ms_tn,
        parallel.speedup,
        parallel.host_cpus
    );
    if !smoke && threads >= 4 && parallel.host_cpus >= 4 && parallel.speedup < 2.0 {
        return Err(format!(
            "run-pool speedup {:.2}x at threads={threads} on a {}-CPU host is below the 2x floor",
            parallel.speedup, parallel.host_cpus
        ));
    }

    eprintln!("bench: cluster_shard workers={threads} ...");
    let cluster = run_cluster_shard(smoke, threads.max(1))?;
    if cluster.gated {
        eprintln!(
            "bench: cluster_shard clusters={} w1={:.0}ms wN={:.0}ms gated \
             (workers={} > host_cpus={}; no speedup claim)",
            cluster.clusters,
            cluster.wall_ms_w1,
            cluster.wall_ms_wn,
            cluster.workers,
            cluster.host_cpus
        );
    } else {
        eprintln!(
            "bench: cluster_shard clusters={} w1={:.0}ms wN={:.0}ms speedup={:.2} host_cpus={}",
            cluster.clusters,
            cluster.wall_ms_w1,
            cluster.wall_ms_wn,
            cluster.speedup,
            cluster.host_cpus
        );
    }

    eprintln!("bench: serve threads={threads} ...");
    let serve = run_serve_bench(smoke, threads)?;
    eprintln!(
        "bench: serve clients={} cold={:.0}ms warm_memo={:.0}ms warm_store={:.0}ms \
         warm_hit={:.2}ms host_cpus={}",
        serve.clients,
        serve.wall_ms_cold,
        serve.wall_ms_warm_memo,
        serve.wall_ms_warm_store,
        serve.warm_hit_ms,
        serve.host_cpus
    );
    Ok((out, parallel, cluster, serve))
}

/// One suite's ips compared against the previous committed report.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaSuite {
    /// Suite name (present in both reports).
    pub name: String,
    /// The previous report's ips for this suite.
    pub ips_prev: f64,
    /// This report's ips.
    pub ips_now: f64,
    /// `ips_now / ips_prev` (> 1 is faster).
    pub ratio: f64,
    /// True when the ratio fell below [`REGRESSION_FLOOR`] — a > 10%
    /// throughput regression worth a second look. Wall-clock noise on a
    /// shared host can trip this; the flag is a prompt, not a gate.
    pub regression: bool,
}

/// Ratio below which a suite is flagged as a regression in
/// `delta_vs_prev` (> 10% slower than the previous report).
pub const REGRESSION_FLOOR: f64 = 0.9;

/// Per-suite throughput delta against the previous committed
/// `BENCH_PR<n>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaVsPrev {
    /// File name of the baseline report the delta is computed against.
    pub baseline: String,
    /// One entry per suite present in both reports, in this report's
    /// suite order.
    pub suites: Vec<DeltaSuite>,
}

/// Numeric coercion over the vendored JSON value (ips is rendered
/// `{:.0}`, so it usually parses back as an unsigned integer).
fn value_as_f64(v: &serde::Value) -> Option<f64> {
    match v {
        serde::Value::UInt(n) => Some(*n as f64),
        serde::Value::Int(n) => Some(*n as f64),
        serde::Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Computes the per-suite ips delta between this run's suites and a
/// previous report's JSON text (`baseline` is the file name recorded in
/// the output). Returns `None` when the previous text does not parse as
/// a bench report or shares no suite names — the report then renders
/// `"delta_vs_prev": null` rather than failing the run: the delta is
/// advisory context, never a reason to lose fresh measurements.
pub fn compute_delta(
    baseline: &str,
    prev_text: &str,
    suites: &[SuiteResult],
) -> Option<DeltaVsPrev> {
    let prev: serde::Value = serde_json::from_str(prev_text).ok()?;
    let prev_suites = prev.get("suites")?;
    let mut out = Vec::new();
    for s in suites {
        let Some(ips_prev) = prev_suites
            .get(s.name)
            .and_then(|e| e.get("ips"))
            .and_then(value_as_f64)
        else {
            continue;
        };
        if ips_prev <= 0.0 {
            continue;
        }
        let ratio = s.ips / ips_prev;
        out.push(DeltaSuite {
            name: s.name.to_string(),
            ips_prev,
            ips_now: s.ips,
            ratio,
            regression: ratio < REGRESSION_FLOOR,
        });
    }
    if out.is_empty() {
        return None;
    }
    Some(DeltaVsPrev {
        baseline: baseline.to_string(),
        suites: out,
    })
}

/// Renders the report JSON by hand (stable key order, no new
/// dependencies): `{"schema", "mode", "parallel": {...}, "cluster_shard":
/// {...}, "serve": {...}, "delta_vs_prev": {...}|null, "suites": {name:
/// {wall_ms, instructions, ips, ticks_skipped}}}`. The `suites` map is
/// byte-compatible with the v1 layout; v2 added the `parallel` object,
/// v3 added `cluster_shard`, v4 added `serve`, v5 adds
/// `cluster_shard.gated` (speedup omitted when set) and
/// `delta_vs_prev`.
pub fn render_json(
    mode: &str,
    suites: &[SuiteResult],
    parallel: &ParallelSweep,
    cluster: &ClusterShard,
    serve: &ServeBench,
    delta: Option<&DeltaVsPrev>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!(
        "  \"parallel\": {{ \"threads\": {}, \"host_cpus\": {}, \"runs\": {}, \
         \"unique_runs\": {}, \"instructions\": {}, \"wall_ms_t1\": {:.3}, \
         \"wall_ms_tn\": {:.3}, \"speedup\": {:.3} }},\n",
        parallel.threads,
        parallel.host_cpus,
        parallel.runs,
        parallel.unique_runs,
        parallel.instructions,
        parallel.wall_ms_t1,
        parallel.wall_ms_tn,
        parallel.speedup
    ));
    // A gated measurement (more workers than CPUs) records the raw wall
    // times but omits the speedup key entirely: an absent claim cannot
    // be misquoted as a slowdown.
    let shard_tail = if cluster.gated {
        "\"gated\": true".to_string()
    } else {
        format!("\"speedup\": {:.3}, \"gated\": false", cluster.speedup)
    };
    s.push_str(&format!(
        "  \"cluster_shard\": {{ \"workers\": {}, \"host_cpus\": {}, \"clusters\": {}, \
         \"instructions\": {}, \"wall_ms_w1\": {:.3}, \"wall_ms_wn\": {:.3}, \
         {shard_tail} }},\n",
        cluster.workers,
        cluster.host_cpus,
        cluster.clusters,
        cluster.instructions,
        cluster.wall_ms_w1,
        cluster.wall_ms_wn,
    ));
    s.push_str(&format!(
        "  \"serve\": {{ \"clients\": {}, \"threads\": {}, \"host_cpus\": {}, \
         \"runs_per_client\": {}, \"unique_runs\": {}, \"wall_ms_cold\": {:.3}, \
         \"wall_ms_warm_memo\": {:.3}, \"wall_ms_warm_store\": {:.3}, \
         \"warm_hit_ms\": {:.3}, \"warm_hits\": {} }},\n",
        serve.clients,
        serve.threads,
        serve.host_cpus,
        serve.runs_per_client,
        serve.unique_runs,
        serve.wall_ms_cold,
        serve.wall_ms_warm_memo,
        serve.wall_ms_warm_store,
        serve.warm_hit_ms,
        serve.warm_hits
    ));
    match delta {
        Some(d) => {
            s.push_str(&format!(
                "  \"delta_vs_prev\": {{ \"baseline\": \"{}\", \"regressions\": {}, \"suites\": {{\n",
                d.baseline,
                d.suites.iter().filter(|x| x.regression).count()
            ));
            for (i, x) in d.suites.iter().enumerate() {
                let comma = if i + 1 == d.suites.len() { "" } else { "," };
                s.push_str(&format!(
                    "    \"{}\": {{ \"ips_prev\": {:.0}, \"ips_now\": {:.0}, \"ratio\": {:.3}, \"regression\": {} }}{}\n",
                    x.name, x.ips_prev, x.ips_now, x.ratio, x.regression, comma
                ));
            }
            s.push_str("  } },\n");
        }
        None => s.push_str("  \"delta_vs_prev\": null,\n"),
    }
    s.push_str("  \"suites\": {\n");
    for (i, r) in suites.iter().enumerate() {
        let comma = if i + 1 == suites.len() { "" } else { "," };
        s.push_str(&format!(
            "    \"{}\": {{ \"wall_ms\": {:.3}, \"instructions\": {}, \"ips\": {:.0}, \"ticks_skipped\": {} }}{}\n",
            r.name, r.wall_ms, r.instructions, r.ips, r.ticks_skipped, comma
        ));
    }
    s.push_str("  }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_parallel() -> ParallelSweep {
        ParallelSweep {
            threads: 4,
            host_cpus: 8,
            runs: 9,
            unique_runs: 8,
            instructions: 123_456,
            wall_ms_t1: 400.0,
            wall_ms_tn: 110.0,
            speedup: 400.0 / 110.0,
        }
    }

    fn fake_cluster() -> ClusterShard {
        ClusterShard {
            workers: 4,
            host_cpus: 8,
            clusters: 4,
            instructions: 654_321,
            wall_ms_w1: 300.0,
            wall_ms_wn: 180.0,
            speedup: 300.0 / 180.0,
            gated: false,
        }
    }

    fn fake_serve() -> ServeBench {
        ServeBench {
            clients: 3,
            threads: 2,
            host_cpus: 8,
            runs_per_client: 7,
            unique_runs: 6,
            wall_ms_cold: 900.0,
            wall_ms_warm_memo: 25.0,
            wall_ms_warm_store: 60.0,
            warm_hit_ms: 1.5,
            warm_hits: 12,
        }
    }

    #[test]
    fn report_json_is_well_formed_and_parsable() {
        let suites = vec![
            SuiteResult::new("alpha", 12.5, 1_000, 0),
            SuiteResult::new("beta", 0.0, 0, 42),
        ];
        let text = render_json(
            "smoke",
            &suites,
            &fake_parallel(),
            &fake_cluster(),
            &fake_serve(),
            None,
        );
        let v: serde::Value = serde_json::from_str(&text).expect("report must be valid JSON");
        let serde::Value::Object(top) = &v else {
            panic!("top level must be an object");
        };
        assert!(top.iter().any(|(k, _)| k == "schema"));
        let parallel_v = top
            .iter()
            .find(|(k, _)| k == "parallel")
            .map(|(_, v)| v)
            .expect("parallel key");
        let serde::Value::Object(parallel_obj) = parallel_v else {
            panic!("parallel must be an object");
        };
        for key in [
            "threads",
            "host_cpus",
            "runs",
            "unique_runs",
            "instructions",
            "wall_ms_t1",
            "wall_ms_tn",
            "speedup",
        ] {
            assert!(
                parallel_obj.iter().any(|(k, _)| k == key),
                "missing parallel.{key}"
            );
        }
        let cluster_v = top
            .iter()
            .find(|(k, _)| k == "cluster_shard")
            .map(|(_, v)| v)
            .expect("cluster_shard key");
        let serde::Value::Object(cluster_obj) = cluster_v else {
            panic!("cluster_shard must be an object");
        };
        for key in [
            "workers",
            "host_cpus",
            "clusters",
            "instructions",
            "wall_ms_w1",
            "wall_ms_wn",
            "speedup",
            "gated",
        ] {
            assert!(
                cluster_obj.iter().any(|(k, _)| k == key),
                "missing cluster_shard.{key}"
            );
        }
        assert!(
            top.iter().any(|(k, _)| k == "delta_vs_prev"),
            "missing delta_vs_prev"
        );
        let serve_v = top
            .iter()
            .find(|(k, _)| k == "serve")
            .map(|(_, v)| v)
            .expect("serve key");
        let serde::Value::Object(serve_obj) = serve_v else {
            panic!("serve must be an object");
        };
        for key in [
            "clients",
            "threads",
            "host_cpus",
            "runs_per_client",
            "unique_runs",
            "wall_ms_cold",
            "wall_ms_warm_memo",
            "wall_ms_warm_store",
            "warm_hit_ms",
            "warm_hits",
        ] {
            assert!(
                serve_obj.iter().any(|(k, _)| k == key),
                "missing serve.{key}"
            );
        }
        let suites_v = top
            .iter()
            .find(|(k, _)| k == "suites")
            .map(|(_, v)| v)
            .expect("suites key");
        let serde::Value::Object(suites_obj) = suites_v else {
            panic!("suites must be an object");
        };
        assert_eq!(suites_obj.len(), 2);
        for (_, entry) in suites_obj {
            let serde::Value::Object(fields) = entry else {
                panic!("each suite must be an object");
            };
            for key in ["wall_ms", "instructions", "ips", "ticks_skipped"] {
                assert!(fields.iter().any(|(k, _)| k == key), "missing {key}");
            }
        }
    }

    #[test]
    fn gated_cluster_shard_renders_no_speedup_claim() {
        let suites = vec![SuiteResult::new("alpha", 12.5, 1_000, 0)];
        let mut cluster = fake_cluster();
        cluster.workers = 2;
        cluster.host_cpus = 1;
        cluster.gated = true;
        let text = render_json(
            "smoke",
            &suites,
            &fake_parallel(),
            &cluster,
            &fake_serve(),
            None,
        );
        let v: serde::Value = serde_json::from_str(&text).expect("report must be valid JSON");
        let shard = v.get("cluster_shard").expect("cluster_shard key");
        assert_eq!(shard.get("gated"), Some(&serde::Value::Bool(true)));
        assert!(
            shard.get("speedup").is_none(),
            "gated report must not claim a speedup"
        );
        // The raw wall times stay: the data is recorded, only the claim
        // is withheld.
        assert!(shard.get("wall_ms_w1").is_some());
        assert!(shard.get("wall_ms_wn").is_some());
    }

    #[test]
    fn delta_vs_prev_flags_regressions_and_renders() {
        let suites = vec![
            SuiteResult::new("fast", 10.0, 2_000, 0), // 200k ips
            SuiteResult::new("slow", 10.0, 500, 0),   // 50k ips
            SuiteResult::new("new_suite", 10.0, 100, 0),
        ];
        let prev = r#"{
            "schema": "respin-bench-report/v4",
            "suites": {
                "fast": { "wall_ms": 10.0, "instructions": 1000, "ips": 100000, "ticks_skipped": 0 },
                "slow": { "wall_ms": 10.0, "instructions": 1000, "ips": 100000, "ticks_skipped": 0 }
            }
        }"#;
        let d = compute_delta("BENCH_PR9.json", prev, &suites).expect("delta");
        assert_eq!(d.baseline, "BENCH_PR9.json");
        assert_eq!(d.suites.len(), 2, "suites only present in both reports");
        let fast = &d.suites[0];
        assert!((fast.ratio - 2.0).abs() < 1e-9 && !fast.regression);
        let slow = &d.suites[1];
        assert!((slow.ratio - 0.5).abs() < 1e-9 && slow.regression);

        let text = render_json(
            "smoke",
            &suites,
            &fake_parallel(),
            &fake_cluster(),
            &fake_serve(),
            Some(&d),
        );
        let v: serde::Value = serde_json::from_str(&text).expect("report must be valid JSON");
        let delta = v.get("delta_vs_prev").expect("delta_vs_prev key");
        assert_eq!(delta.get("regressions"), Some(&serde::Value::UInt(1)));
        assert!(delta.get("suites").and_then(|s| s.get("slow")).is_some());
    }

    #[test]
    fn delta_vs_prev_degrades_to_none_on_garbage() {
        let suites = vec![SuiteResult::new("alpha", 10.0, 1_000, 0)];
        assert!(compute_delta("x.json", "not json", &suites).is_none());
        assert!(compute_delta("x.json", "{\"suites\": {}}", &suites).is_none());
    }

    #[test]
    fn zero_wall_clock_reports_zero_ips() {
        let r = SuiteResult::new("degenerate", 0.0, 10, 0);
        assert_eq!(r.ips, 0.0);
    }

    #[test]
    fn parallel_sweep_smoke_passes_its_own_gate() {
        let p = run_parallel_sweep(true, 2).expect("smoke sweep must satisfy the determinism gate");
        assert_eq!(p.runs, p.unique_runs + 1, "one deliberate duplicate");
        assert!(p.instructions > 0);
    }

    #[test]
    fn cluster_shard_smoke_passes_its_own_gate() {
        let c = run_cluster_shard(true, 2).expect("smoke shard must satisfy the identity gate");
        assert_eq!(c.clusters, 4);
        assert!(c.instructions > 0);
    }

    #[test]
    fn serve_bench_smoke_passes_its_own_gates() {
        let s = run_serve_bench(true, 2).expect("smoke serve bench must satisfy identity gates");
        assert_eq!(
            s.runs_per_client,
            s.unique_runs + 1,
            "one deliberate duplicate"
        );
        assert!(s.warm_hits > 0);
    }

    #[test]
    fn idle_heavy_spec_validates() {
        // PhaseSchedule::new panics on an invalid phase; constructing the
        // spec is the assertion.
        let spec = idle_spec(100);
        assert_eq!(spec.instructions_per_thread, 100);
    }
}
