//! Perf-trajectory harness: runs the fixed seeded suite and writes a
//! `BENCH_*.json` report (see DESIGN.md §12).
//!
//! ```text
//! bench_report [--smoke] [--out PATH]
//! ```
//!
//! * `--smoke` shrinks every suite to a few seconds (verify.sh / CI).
//! * `--out PATH` report destination (default `BENCH_PR4.json`).
//!
//! The harness self-gates: it exits non-zero if the idle-heavy fast-path
//! run is not bit-identical to the reference loop, if the fast path
//! skipped no ticks, or (full mode) if the idle-heavy speedup falls
//! below 2x.

use respin_bench::trajectory;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_PR4.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("bench_report: --out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: bench_report [--smoke] [--out PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bench_report: unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mode = if smoke { "smoke" } else { "full" };
    let suites = match trajectory::run_suites(smoke) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_report: FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };

    let report = trajectory::render_json(mode, &suites);
    if let Err(e) = std::fs::write(&out_path, &report) {
        eprintln!("bench_report: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    for s in &suites {
        println!(
            "bench: {} wall_ms={:.1} instructions={} ips={:.0} ticks_skipped={}",
            s.name, s.wall_ms, s.instructions, s.ips, s.ticks_skipped
        );
    }
    println!("bench_report: wrote {out_path} ({mode} mode)");
    ExitCode::SUCCESS
}
