//! Perf-trajectory harness: runs the fixed seeded suite, the run-pool
//! parallel sweep, the intra-run cluster-shard measurement, and the
//! `respin-serve` daemon bench (cold / memo-warm / store-warm phases
//! under concurrent clients), and writes a `BENCH_*.json` report (see
//! DESIGN.md §12, §16, and §17).
//!
//! ```text
//! bench_report [--smoke] [--out PATH] [--threads N]
//! ```
//!
//! * `--smoke` shrinks every suite to a few seconds (verify.sh / CI).
//! * `--out PATH` report destination (default `BENCH_PR9.json`).
//! * `--threads N` worker count for the parallel pass of the sweep and
//!   for the cluster-sharded run (outranking `RESPIN_THREADS`; default
//!   is the host parallelism).
//!
//! The harness self-gates: it exits non-zero if the idle-heavy fast-path
//! run is not bit-identical to the reference loop, if the fast path
//! skipped no ticks, if the parallel sweep's results differ from its
//! threads=1 twin in any way, if the cluster-sharded run differs from
//! its sequential twin in any way, or (full mode, ≥ 4 workers on a host
//! with ≥ 4 CPUs) if the fast-path or run-pool speedup falls below 2x.
//! The cluster-shard timing is recorded without a floor — sharding
//! synchronises every executed tick, so the honest number is the point.

use respin_bench::trajectory;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_PR9.json");
    let mut threads_flag = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("bench_report: --out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => threads_flag = Some(n),
                _ => {
                    eprintln!("bench_report: --threads requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: bench_report [--smoke] [--out PATH] [--threads N]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bench_report: unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(n) = threads_flag {
        respin_pool::set_threads(n);
    }
    let threads = respin_pool::resolved_threads();
    let mode = if smoke { "smoke" } else { "full" };
    let (suites, parallel, cluster, serve) = match trajectory::run_suites(smoke, threads) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_report: FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };

    let report = trajectory::render_json(mode, &suites, &parallel, &cluster, &serve);
    if let Err(e) =
        respin_core::persist::atomic_write(std::path::Path::new(&out_path), report.as_bytes())
    {
        eprintln!("bench_report: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    for s in &suites {
        println!(
            "bench: {} wall_ms={:.1} instructions={} ips={:.0} ticks_skipped={}",
            s.name, s.wall_ms, s.instructions, s.ips, s.ticks_skipped
        );
    }
    println!(
        "bench: sweep_parallel threads={} host_cpus={} runs={} unique_runs={} \
         wall_ms_t1={:.1} wall_ms_tn={:.1} speedup={:.2}",
        parallel.threads,
        parallel.host_cpus,
        parallel.runs,
        parallel.unique_runs,
        parallel.wall_ms_t1,
        parallel.wall_ms_tn,
        parallel.speedup
    );
    println!(
        "bench: cluster_shard workers={} host_cpus={} clusters={} wall_ms_w1={:.1} \
         wall_ms_wn={:.1} speedup={:.2}",
        cluster.workers,
        cluster.host_cpus,
        cluster.clusters,
        cluster.wall_ms_w1,
        cluster.wall_ms_wn,
        cluster.speedup
    );
    println!(
        "bench: serve clients={} threads={} host_cpus={} runs_per_client={} unique_runs={} \
         wall_ms_cold={:.1} wall_ms_warm_memo={:.1} wall_ms_warm_store={:.1} warm_hit_ms={:.2}",
        serve.clients,
        serve.threads,
        serve.host_cpus,
        serve.runs_per_client,
        serve.unique_runs,
        serve.wall_ms_cold,
        serve.wall_ms_warm_memo,
        serve.wall_ms_warm_store,
        serve.warm_hit_ms
    );
    println!("bench_report: wrote {out_path} ({mode} mode)");
    ExitCode::SUCCESS
}
