//! Perf-trajectory harness: runs the fixed seeded suite, the run-pool
//! parallel sweep, the intra-run cluster-shard measurement, and the
//! `respin-serve` daemon bench (cold / memo-warm / store-warm phases
//! under concurrent clients), and writes a `BENCH_*.json` report (see
//! DESIGN.md §12, §16, and §17).
//!
//! ```text
//! bench_report [--smoke] [--out PATH] [--threads N]
//! ```
//!
//! * `--smoke` shrinks every suite to a few seconds (verify.sh / CI).
//! * `--out PATH` report destination (default `BENCH_PR10.json`).
//! * `--threads N` worker count for the parallel pass of the sweep and
//!   for the cluster-sharded run (outranking `RESPIN_THREADS`; default
//!   is the host parallelism).
//!
//! The report's `delta_vs_prev` block compares this run's per-suite ips
//! against the most recent `BENCH_PR<n>.json` already present in the
//! output directory (the target file itself excluded), flagging > 10%
//! regressions. The delta is advisory context — wall-clock noise on a
//! shared host can trip it — so it never fails the run.
//!
//! The harness self-gates: it exits non-zero if the idle-heavy fast-path
//! run is not bit-identical to the reference loop, if the fast path
//! skipped no ticks, if the parallel sweep's results differ from its
//! threads=1 twin in any way, if the cluster-sharded run differs from
//! its sequential twin in any way, or (full mode, ≥ 4 workers on a host
//! with ≥ 4 CPUs) if the fast-path or run-pool speedup falls below 2x.
//! The cluster-shard timing is recorded without a floor — sharding
//! synchronises every executed tick, so the honest number is the point.

use respin_bench::trajectory;
use std::process::ExitCode;

/// Finds the most recent `BENCH_PR<n>.json` (highest `<n>`) in the
/// output path's directory, excluding the output file itself, and
/// returns its file name and contents. Any I/O or parse trouble
/// degrades to `None`: the delta block is context, not a gate.
fn previous_report(out_path: &str) -> Option<(String, String)> {
    let out = std::path::Path::new(out_path);
    let dir = match out.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let out_name = out.file_name()?.to_str()?.to_string();
    let mut best: Option<(u64, String)> = None;
    for entry in std::fs::read_dir(&dir).ok()? {
        let name = entry.ok()?.file_name().to_str()?.to_string();
        if name == out_name {
            continue;
        }
        let n: u64 = match name
            .strip_prefix("BENCH_PR")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|num| num.parse().ok())
        {
            Some(n) => n,
            None => continue,
        };
        if best.as_ref().is_none_or(|(b, _)| n > *b) {
            best = Some((n, name));
        }
    }
    let (_, name) = best?;
    let text = std::fs::read_to_string(dir.join(&name)).ok()?;
    Some((name, text))
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut fig6_only = false;
    let mut out_path = String::from("BENCH_PR10.json");
    let mut threads_flag = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--fig6-only" => fig6_only = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("bench_report: --out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => threads_flag = Some(n),
                _ => {
                    eprintln!("bench_report: --threads requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: bench_report [--smoke] [--fig6-only] [--out PATH] [--threads N]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bench_report: unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(n) = threads_flag {
        respin_pool::set_threads(n);
    }
    // `--fig6-only`: run just the fig6_quick suite and print its line —
    // the cheap measurement the CI self-gating ips floor compares
    // against the committed baseline. No report is written.
    if fig6_only {
        let s = trajectory::fig6_quick(smoke);
        println!(
            "bench: {} wall_ms={:.1} instructions={} ips={:.0} ticks_skipped={}",
            s.name, s.wall_ms, s.instructions, s.ips, s.ticks_skipped
        );
        return ExitCode::SUCCESS;
    }
    let threads = respin_pool::resolved_threads();
    let mode = if smoke { "smoke" } else { "full" };
    let (suites, parallel, cluster, serve) = match trajectory::run_suites(smoke, threads) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_report: FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };

    let delta = previous_report(&out_path)
        .and_then(|(name, text)| trajectory::compute_delta(&name, &text, &suites));
    let report =
        trajectory::render_json(mode, &suites, &parallel, &cluster, &serve, delta.as_ref());
    if let Err(e) =
        respin_core::persist::atomic_write(std::path::Path::new(&out_path), report.as_bytes())
    {
        eprintln!("bench_report: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    for s in &suites {
        println!(
            "bench: {} wall_ms={:.1} instructions={} ips={:.0} ticks_skipped={}",
            s.name, s.wall_ms, s.instructions, s.ips, s.ticks_skipped
        );
    }
    println!(
        "bench: sweep_parallel threads={} host_cpus={} runs={} unique_runs={} \
         wall_ms_t1={:.1} wall_ms_tn={:.1} speedup={:.2}",
        parallel.threads,
        parallel.host_cpus,
        parallel.runs,
        parallel.unique_runs,
        parallel.wall_ms_t1,
        parallel.wall_ms_tn,
        parallel.speedup
    );
    if cluster.gated {
        println!(
            "bench: cluster_shard workers={} host_cpus={} clusters={} wall_ms_w1={:.1} \
             wall_ms_wn={:.1} gated (no speedup claim)",
            cluster.workers,
            cluster.host_cpus,
            cluster.clusters,
            cluster.wall_ms_w1,
            cluster.wall_ms_wn
        );
    } else {
        println!(
            "bench: cluster_shard workers={} host_cpus={} clusters={} wall_ms_w1={:.1} \
             wall_ms_wn={:.1} speedup={:.2}",
            cluster.workers,
            cluster.host_cpus,
            cluster.clusters,
            cluster.wall_ms_w1,
            cluster.wall_ms_wn,
            cluster.speedup
        );
    }
    println!(
        "bench: serve clients={} threads={} host_cpus={} runs_per_client={} unique_runs={} \
         wall_ms_cold={:.1} wall_ms_warm_memo={:.1} wall_ms_warm_store={:.1} warm_hit_ms={:.2}",
        serve.clients,
        serve.threads,
        serve.host_cpus,
        serve.runs_per_client,
        serve.unique_runs,
        serve.wall_ms_cold,
        serve.wall_ms_warm_memo,
        serve.wall_ms_warm_store,
        serve.warm_hit_ms
    );
    match &delta {
        Some(d) => {
            for x in &d.suites {
                println!(
                    "bench: delta {} ratio={:.3} ({}){}",
                    x.name,
                    x.ratio,
                    d.baseline,
                    if x.regression { " REGRESSION" } else { "" }
                );
            }
        }
        None => println!("bench: delta no previous BENCH_PR*.json found"),
    }
    println!("bench_report: wrote {out_path} ({mode} mode)");
    ExitCode::SUCCESS
}
