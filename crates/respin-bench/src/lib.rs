//! Benchmark harness crate for the Respin reproduction.
//!
//! Two kinds of harness live here:
//!
//! * the Criterion micro/macro benches under `benches/` (statistical,
//!   interactive), and
//! * the [`trajectory`] module behind the `bench_report` binary: a
//!   fixed, seeded suite timed once under wall clock, whose output is
//!   committed as `BENCH_PR<n>.json` at the repo root so simulator
//!   throughput is tracked PR over PR (DESIGN.md §12 explains how to
//!   read one).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Tests may unwrap: a panic IS the failure report there.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod trajectory;

/// Re-exported so benches share one place to pick deterministic seeds.
pub const BENCH_SEED: u64 = 0x5e5_c0ffee;
