//! Benchmark harness crate for the Respin reproduction.
//!
//! All substance lives in the Criterion benches under `benches/`; this
//! library only hosts shared helpers for them.

#![warn(missing_docs)]

/// Re-exported so benches share one place to pick deterministic seeds.
pub const BENCH_SEED: u64 = 0x5e5_c0ffee;
