//! Benchmark harness crate for the Respin reproduction.
//!
//! All substance lives in the Criterion benches under `benches/`; this
//! library only hosts shared helpers for them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Tests may unwrap: a panic IS the failure report there.
#![cfg_attr(test, allow(clippy::unwrap_used))]

/// Re-exported so benches share one place to pick deterministic seeds.
pub const BENCH_SEED: u64 = 0x5e5_c0ffee;
