//! The `respin-serve/v1` wire protocol: JSONL envelopes exchanged over
//! the daemon's Unix-domain socket.
//!
//! This module is the *implementation*; the normative specification —
//! framing, versioning, error taxonomy, a worked session transcript —
//! is `docs/PROTOCOL.md`. The two are kept in lockstep: the spec's
//! field tables are generated from these types' shapes, and the
//! round-trip tests below pin the exact JSON spellings the spec quotes.
//!
//! Design rules:
//! * **One JSON object per line**, newline-terminated, UTF-8. No
//!   framing beyond the newline; no pretty-printing on the wire.
//! * **Every line carries the protocol version** (`"proto"`). A daemon
//!   rejects mismatched versions with an `SRV-PROTO` error instead of
//!   guessing — protocol errors reuse the
//!   [`respin_power::diag::Violation`] taxonomy, so clients handle one
//!   structured error shape everywhere in the workspace.
//! * **Requests are correlated by client-chosen `id`**; every event the
//!   daemon emits echoes the id of the request it answers. One request
//!   runs at a time per connection (the connection is the job queue);
//!   concurrency comes from opening more connections.

use respin_core::RunOptions;
use respin_power::diag::Violation;
use respin_sim::RunResult;
use respin_trace::TraceEvent;
use serde::{Deserialize, Serialize};

/// The protocol version every envelope must carry.
pub const PROTOCOL_VERSION: &str = "respin-serve/v1";

/// Violation code for malformed or version-mismatched protocol traffic.
pub const CODE_PROTO: &str = "SRV-PROTO";
/// Violation code for a run that panicked inside the daemon.
pub const CODE_RUN_PANIC: &str = "SRV-RUN-PANIC";
/// Violation code for an unknown or failed experiment request.
pub const CODE_EXPERIMENT: &str = "SRV-EXPERIMENT";

/// One client → daemon line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Must equal [`PROTOCOL_VERSION`].
    pub proto: String,
    /// Client-chosen correlation id, echoed on every reply event.
    pub id: u64,
    /// The request body.
    pub req: Request,
}

/// Request bodies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Handshake: ask the daemon to introduce itself.
    Hello,
    /// Run one simulation; equivalent to `Sweep` with one entry.
    Run {
        /// The run to execute (or serve warm).
        options: Box<RunOptions>,
        /// Stream per-epoch trace events while it runs.
        trace: bool,
    },
    /// Run a batch; results stream back as each completes.
    Sweep {
        /// The runs, in client order (echoed via `Result.index`).
        batch: Vec<RunOptions>,
        /// Stream per-epoch trace events while they run.
        trace: bool,
    },
    /// Generate a named experiment (`fig12`, `table3`, …); artifacts
    /// return as `Artifact` events.
    Experiment {
        /// Experiment name from
        /// [`respin_core::experiments::EXPERIMENT_NAMES`].
        name: String,
        /// Use the quick profile instead of the paper-scale one.
        quick: bool,
    },
    /// Snapshot daemon counters (memo size, store occupancy, jobs).
    Stats,
    /// Stop accepting connections and exit the accept loop.
    Shutdown,
}

/// Where a served result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResultSource {
    /// Simulated for this request.
    Live,
    /// Served from the daemon's in-memory memo cache.
    WarmMemo,
    /// Loaded from the persistent content-addressed store.
    WarmStore,
}

/// One daemon → client line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventEnvelope {
    /// Always [`PROTOCOL_VERSION`].
    pub proto: String,
    /// The id of the request this event answers (0 for connection-level
    /// protocol errors that could not be correlated).
    pub id: u64,
    /// The event body.
    pub ev: Event,
}

/// Event bodies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// Handshake reply.
    Hello {
        /// Total simulation thread budget.
        threads: usize,
        /// Concurrent jobs admitted before queueing.
        max_jobs: usize,
        /// Threads granted to each admitted job.
        fair_share: usize,
        /// Entries in the persistent store (0 when storeless).
        store_entries: usize,
        /// Bytes in the persistent store (0 when storeless).
        store_bytes: u64,
    },
    /// The job passed admission control and is running.
    Started {
        /// Threads granted to this job.
        granted_threads: usize,
    },
    /// One streamed trace event (only when the request set `trace`).
    Trace {
        /// The event, stamped with its stable run id.
        event: TraceEvent,
    },
    /// One completed run.
    Result {
        /// Position in the request batch (always 0 for `Run`).
        index: usize,
        /// Whether it was simulated, memo-warm, or store-warm.
        source: ResultSource,
        /// The result — byte-identical to a one-shot CLI run.
        result: Box<RunResult>,
    },
    /// One experiment artifact (text or JSON rendering).
    Artifact {
        /// Experiment name.
        name: String,
        /// `"txt"` or `"json"`.
        kind: String,
        /// The artifact body, byte-identical to the CLI's file output.
        body: String,
    },
    /// Daemon counters snapshot.
    Stats {
        /// Completed runs memoised in this daemon's lifetime.
        memo_runs: usize,
        /// Entries in the persistent store.
        store_entries: usize,
        /// Bytes in the persistent store.
        store_bytes: u64,
        /// Store loads that hit.
        store_hits: u64,
        /// Store saves.
        store_saves: u64,
        /// Jobs currently admitted.
        active_jobs: usize,
    },
    /// A structured error. The connection stays usable unless the error
    /// is `SRV-PROTO` (an unparseable peer is unrecoverable).
    Error {
        /// The violation, in the workspace diagnostic taxonomy.
        violation: Violation,
    },
    /// The request is finished; counts summarise what was served.
    Done {
        /// Results delivered.
        results: usize,
        /// Of those, simulated live.
        live: usize,
        /// Of those, served from the in-memory memo.
        warm_memo: usize,
        /// Of those, loaded from the persistent store.
        warm_store: usize,
    },
}

/// Serialises a request envelope as one wire line (no newline).
pub fn encode_request(env: &RequestEnvelope) -> String {
    serde_json::to_string(env).expect("request envelope serialises")
}

/// Serialises an event envelope as one wire line (no newline).
pub fn encode_event(env: &EventEnvelope) -> String {
    serde_json::to_string(env).expect("event envelope serialises")
}

/// Parses and version-checks one client line. Errors come back as
/// ready-to-send `SRV-PROTO` violations.
pub fn decode_request(line: &str) -> Result<RequestEnvelope, Violation> {
    let env: RequestEnvelope = serde_json::from_str(line.trim_end()).map_err(|e| {
        Violation::error(
            CODE_PROTO,
            "wire protocol",
            "request line",
            format!("unparseable request: {e}"),
        )
    })?;
    if env.proto != PROTOCOL_VERSION {
        return Err(Violation::error(
            CODE_PROTO,
            "wire protocol",
            "request envelope",
            format!(
                "protocol version mismatch: client speaks {:?}, daemon speaks {PROTOCOL_VERSION:?}",
                env.proto
            ),
        ));
    }
    Ok(env)
}

/// Parses and version-checks one daemon line (client side).
pub fn decode_event(line: &str) -> Result<EventEnvelope, Violation> {
    let env: EventEnvelope = serde_json::from_str(line.trim_end()).map_err(|e| {
        Violation::error(
            CODE_PROTO,
            "wire protocol",
            "event line",
            format!("unparseable event: {e}"),
        )
    })?;
    if env.proto != PROTOCOL_VERSION {
        return Err(Violation::error(
            CODE_PROTO,
            "wire protocol",
            "event envelope",
            format!(
                "protocol version mismatch: daemon speaks {:?}, client speaks {PROTOCOL_VERSION:?}",
                env.proto
            ),
        ));
    }
    Ok(env)
}

/// Builds an event envelope at the current protocol version.
pub fn event(id: u64, ev: Event) -> EventEnvelope {
    EventEnvelope {
        proto: PROTOCOL_VERSION.to_string(),
        id,
        ev,
    }
}

/// Builds a request envelope at the current protocol version.
pub fn request(id: u64, req: Request) -> RequestEnvelope {
    RequestEnvelope {
        proto: PROTOCOL_VERSION.to_string(),
        id,
        req,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_encoding() {
        let cases = vec![
            Request::Hello,
            Request::Experiment {
                name: "fig12".to_string(),
                quick: true,
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for (i, req) in cases.into_iter().enumerate() {
            let env = request(i as u64, req);
            let line = encode_request(&env);
            assert!(!line.contains('\n'), "wire lines must be single-line");
            let back = decode_request(&line).expect("round trip");
            assert_eq!(back, env);
        }
    }

    #[test]
    fn events_round_trip_through_the_wire_encoding() {
        let cases = vec![
            Event::Started { granted_threads: 2 },
            Event::Done {
                results: 3,
                live: 1,
                warm_memo: 1,
                warm_store: 1,
            },
            Event::Error {
                violation: Violation::error(CODE_RUN_PANIC, "job isolation", "key", "boom"),
            },
        ];
        for (i, ev) in cases.into_iter().enumerate() {
            let env = event(i as u64, ev);
            let line = encode_event(&env);
            assert!(!line.contains('\n'));
            let back = decode_event(&line).expect("round trip");
            assert_eq!(back, env);
        }
    }

    #[test]
    fn version_mismatch_is_a_srv_proto_violation() {
        let line = r#"{"proto":"respin-serve/v0","id":1,"req":"Hello"}"#;
        let err = decode_request(line).expect_err("v0 must be rejected");
        assert_eq!(err.code, CODE_PROTO);
        assert!(err.message.contains("version mismatch"), "{}", err.message);
    }

    #[test]
    fn garbage_is_a_srv_proto_violation_not_a_panic() {
        let err = decode_request("not json at all").expect_err("garbage rejected");
        assert_eq!(err.code, CODE_PROTO);
        let err = decode_event("{\"half\":").expect_err("truncated rejected");
        assert_eq!(err.code, CODE_PROTO);
    }
}
