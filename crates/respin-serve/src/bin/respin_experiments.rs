//! CLI regenerating every table and figure of the Respin paper —
//! one-shot, as a resident daemon, or as a client of one.
//!
//! ```text
//! respin-experiments <experiment|all> [--quick] [--out DIR] [--threads N]
//!                    [--trace-out PATH] [--trace-epochs N]
//!                    [--checkpoint-dir DIR] [--resume]
//!
//! respin-experiments serve [--socket PATH] [--store DIR]
//!                    [--store-budget-bytes N] [--threads N]
//!                    [--max-jobs N] [--quiet]
//!
//! respin-experiments client [--socket PATH] <experiment|all>
//!                    [--quick] [--out DIR]
//! respin-experiments client [--socket PATH] --stats
//! respin-experiments client [--socket PATH] --shutdown
//!
//! respin-experiments bench --profile [--smoke] [--out PATH]
//!
//! experiments: table1 table2 table3 table4 fig1 fig6 fig7 fig8 fig9
//!              fig10 fig11 fig12 fig13 fig14 cluster ablation voltage
//!              resilience
//! ```
//!
//! All three front-ends share one dispatch
//! ([`respin_core::experiments::generate_named`]) and one persistence
//! discipline (`atomic_write`), so an artifact is **byte-identical**
//! whether it was computed one-shot, live by the daemon, or served
//! warm from the daemon's content-addressed store — at every thread
//! count. The socket defaults to `$RESPIN_SOCKET` when the flag is
//! omitted; see `docs/OPERATIONS.md` for the daemon lifecycle and
//! `docs/PROTOCOL.md` for the wire format.
//!
//! Sweeps run on the `respin-pool` run pool. `--threads N` pins the
//! worker count (outranking `RESPIN_THREADS`; the default is the host
//! parallelism). The resolved worker count is echoed on the greppable
//! stdout status lines (`smoke:`/`trace:`/`serve:`) only, never into
//! `--out` files.
//!
//! `--trace-out PATH` records an epoch-level trace of every simulation:
//! `PATH.jsonl` (one structured event per line) and `PATH.chrome.json`
//! (Chrome-trace / Perfetto events). `--trace-epochs N` caps the
//! per-run epoch series. Tracing is observation-only.
//!
//! `--checkpoint-dir DIR` makes a one-shot campaign crash-safe
//! (journal + `--resume` replay); the daemon gets the same property
//! from its store directory, which carries both the content-addressed
//! entries and the failed-retryable journal.

use respin_core::experiments::{generate_named, ExpParams, RunCache, EXPERIMENT_NAMES};
use respin_core::persist::{self, atomic_write, ResultJournal};
use respin_serve::{Client, ServeOptions, Server};
use respin_trace::{canonical_order, to_chrome_trace, to_jsonl, RingSink, TraceSink};
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

struct Args {
    names: Vec<String>,
    quick: bool,
    out: Option<PathBuf>,
    threads: Option<usize>,
    trace_out: Option<PathBuf>,
    trace_epochs: Option<u64>,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
}

fn usage() -> String {
    format!(
        "usage: respin-experiments <{}|all> [--quick] [--out DIR] [--threads N] \
         [--trace-out PATH] [--trace-epochs N] [--checkpoint-dir DIR] [--resume]\n\
         \x20      respin-experiments serve [--socket PATH] [--store DIR] \
         [--store-budget-bytes N] [--threads N] [--max-jobs N] [--quiet]\n\
         \x20      respin-experiments client [--socket PATH] <experiment|all> \
         [--quick] [--out DIR] | --stats | --shutdown\n\
         \x20      respin-experiments bench --profile [--smoke] [--out PATH]",
        EXPERIMENT_NAMES.join("|")
    )
}

fn parse_args(args: impl Iterator<Item = String>) -> Args {
    let mut names = Vec::new();
    let mut quick = false;
    let mut out = None;
    let mut threads = None;
    let mut trace_out = None;
    let mut trace_epochs = None;
    let mut checkpoint_dir = None;
    let mut resume = false;
    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = Some(PathBuf::from(
                    args.next().expect("--out requires a directory"),
                ));
            }
            "--threads" => {
                let n = args.next().expect("--threads requires a count");
                let n: usize = n.parse().expect("--threads takes a positive integer");
                assert!(n > 0, "--threads takes a positive integer");
                threads = Some(n);
            }
            "--trace-out" => {
                trace_out = Some(PathBuf::from(
                    args.next().expect("--trace-out requires a file path"),
                ));
            }
            "--trace-epochs" => {
                let n = args.next().expect("--trace-epochs requires a count");
                trace_epochs = Some(n.parse().expect("--trace-epochs takes an integer"));
            }
            "--checkpoint-dir" => {
                checkpoint_dir = Some(PathBuf::from(
                    args.next().expect("--checkpoint-dir requires a directory"),
                ));
            }
            "--resume" => resume = true,
            "all" => names = EXPERIMENT_NAMES.iter().map(|s| s.to_string()).collect(),
            name if EXPERIMENT_NAMES.contains(&name) => names.push(name.to_string()),
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("{}", usage());
                std::process::exit(2);
            }
        }
    }
    if names.is_empty() {
        eprintln!("{}", usage());
        std::process::exit(2);
    }
    if resume && checkpoint_dir.is_none() {
        eprintln!("--resume requires --checkpoint-dir");
        eprintln!("{}", usage());
        std::process::exit(2);
    }
    Args {
        names,
        quick,
        out,
        threads,
        trace_out,
        trace_epochs,
        checkpoint_dir,
        resume,
    }
}

/// Appends ` threads=N` to the greppable `smoke:` status lines for
/// stdout. Written artifacts keep the unannotated text: report files
/// are bit-identical at every thread count by contract, and a worker
/// count baked into them would break exactly the byte-diff gate that
/// enforces it.
fn annotate_status_lines(text: &str, threads: usize) -> String {
    text.split('\n')
        .map(|line| {
            if line.starts_with("smoke: ") {
                format!("{line} threads={threads}")
            } else {
                line.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Strips a trailing `.jsonl` so `--trace-out t.jsonl` and
/// `--trace-out t` both produce `t.jsonl` + `t.chrome.json`.
fn trace_base(path: &std::path::Path) -> PathBuf {
    match path.to_str() {
        Some(s) if s.ends_with(".jsonl") => PathBuf::from(&s[..s.len() - ".jsonl".len()]),
        _ => path.to_path_buf(),
    }
}

/// The socket from `--socket`, else `$RESPIN_SOCKET`, else exit 2.
fn resolve_socket(flag: Option<PathBuf>) -> PathBuf {
    flag.or_else(|| std::env::var_os("RESPIN_SOCKET").map(PathBuf::from))
        .unwrap_or_else(|| {
            eprintln!("no socket: pass --socket PATH or set RESPIN_SOCKET");
            std::process::exit(2);
        })
}

/// `respin-experiments serve …`: bind and run the daemon until a
/// client requests shutdown.
fn serve_main(args: impl Iterator<Item = String>) {
    let mut socket = None;
    let mut store_dir = None;
    let mut store_budget_bytes = 0u64;
    let mut threads = 0usize;
    let mut max_jobs = 0usize;
    let mut quiet = false;
    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--socket" => socket = Some(PathBuf::from(args.next().expect("--socket needs PATH"))),
            "--store" => store_dir = Some(PathBuf::from(args.next().expect("--store needs DIR"))),
            "--store-budget-bytes" => {
                store_budget_bytes = args
                    .next()
                    .expect("--store-budget-bytes needs N")
                    .parse()
                    .expect("--store-budget-bytes takes an integer");
            }
            "--threads" => {
                threads = args
                    .next()
                    .expect("--threads needs N")
                    .parse()
                    .expect("--threads takes a positive integer");
                assert!(threads > 0, "--threads takes a positive integer");
            }
            "--max-jobs" => {
                max_jobs = args
                    .next()
                    .expect("--max-jobs needs N")
                    .parse()
                    .expect("--max-jobs takes a positive integer");
            }
            "--quiet" => quiet = true,
            other => {
                eprintln!("unknown serve argument '{other}'");
                eprintln!("{}", usage());
                std::process::exit(2);
            }
        }
    }
    let opts = ServeOptions {
        socket: resolve_socket(socket),
        store_dir,
        store_budget_bytes,
        threads,
        max_jobs,
        quiet,
    };
    let server = Server::bind(&opts).expect("bind daemon socket");
    println!("serve: listening socket={}", server.socket_path().display());
    server.run().expect("daemon accept loop");
}

/// `respin-experiments client …`: run experiments through a daemon
/// (artifacts byte-identical to the one-shot path), or poke it with
/// `--stats` / `--shutdown`.
fn client_main(args: impl Iterator<Item = String>) {
    let mut socket = None;
    let mut names: Vec<String> = Vec::new();
    let mut quick = false;
    let mut out: Option<PathBuf> = None;
    let mut stats = false;
    let mut shutdown = false;
    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--socket" => socket = Some(PathBuf::from(args.next().expect("--socket needs PATH"))),
            "--quick" => quick = true,
            "--out" => out = Some(PathBuf::from(args.next().expect("--out needs DIR"))),
            "--stats" => stats = true,
            "--shutdown" => shutdown = true,
            "all" => names = EXPERIMENT_NAMES.iter().map(|s| s.to_string()).collect(),
            name if EXPERIMENT_NAMES.contains(&name) => names.push(name.to_string()),
            other => {
                eprintln!("unknown client argument '{other}'");
                eprintln!("{}", usage());
                std::process::exit(2);
            }
        }
    }
    let socket = resolve_socket(socket);
    let mut client = Client::connect(&socket).expect("connect to daemon");
    if stats {
        let ev = client.stats().expect("stats request");
        println!("stats: {ev:?}");
    }
    if let Some(dir) = &out {
        fs::create_dir_all(dir).expect("create output directory");
    }
    let mut failed = 0usize;
    for name in &names {
        let outcome = client.experiment(name, quick).expect("experiment request");
        for violation in &outcome.errors {
            eprintln!("client: {violation}");
        }
        match (&outcome.text, &outcome.json) {
            (Some(text), Some(json)) => {
                print!("{text}");
                if !text.ends_with('\n') {
                    println!();
                }
                if let Some(dir) = &out {
                    atomic_write(&dir.join(format!("{name}.txt")), text.as_bytes())
                        .expect("write text");
                    atomic_write(&dir.join(format!("{name}.json")), json.as_bytes())
                        .expect("write json");
                }
                // The greppable provenance line the serve smoke gate
                // checks (`warm_store=…` after a daemon restart).
                println!(
                    "serve: name={name} results={} live={} warm_memo={} warm_store={}",
                    outcome.done.results,
                    outcome.done.live,
                    outcome.done.warm_memo,
                    outcome.done.warm_store
                );
            }
            _ => {
                eprintln!("client: {name} failed on the daemon");
                failed += 1;
            }
        }
    }
    if shutdown {
        client.shutdown().expect("shutdown request");
        println!("serve: shutdown acknowledged");
    }
    if failed > 0 {
        std::process::exit(1);
    }
}

/// `respin-experiments bench --profile`: run a representative sequential
/// workload with the [`respin_sim::profile::PhaseProfiler`] probe
/// installed and emit a `respin-profile/v1` report attributing run-loop
/// wall time to the five hot-path phases. The profiled chip is
/// bit-identical to an unprofiled one (probes are observation-only), so
/// this is safe to run against the same binary the byte-identity gates
/// check.
///
/// `--smoke` shrinks the workload to CI scale (seconds); `--out PATH`
/// writes the JSON atomically instead of printing it.
fn bench_main(args: impl Iterator<Item = String>) {
    let mut profile = false;
    let mut smoke = false;
    let mut out: Option<PathBuf> = None;
    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--profile" => profile = true,
            "--smoke" => smoke = true,
            "--out" => out = Some(PathBuf::from(args.next().expect("--out needs PATH"))),
            other => {
                eprintln!("unknown bench argument '{other}'");
                eprintln!("{}", usage());
                std::process::exit(2);
            }
        }
    }
    if !profile {
        eprintln!("bench requires --profile (the unprofiled suites live in respin-bench)");
        eprintln!("{}", usage());
        std::process::exit(2);
    }

    use respin_core::arch::ArchConfig;
    use respin_sim::profile::{PhaseProfiler, PHASE_NAMES};
    use respin_workloads::Benchmark;

    // The representative workload: the shared-L1 STT-RAM organisation on
    // Radix — the same shape `fig6_quick` measures — at the experiment
    // campaign's quick scale, shrunk further under `--smoke`.
    let mut params = ExpParams::quick();
    let mut opts = params.options(ArchConfig::ShStt, Benchmark::Radix);
    if smoke {
        params.instructions_per_thread = 2_000;
        params.warmup_per_thread = 500;
        params.epoch_instructions = 1_000;
        opts = params.options(ArchConfig::ShStt, Benchmark::Radix);
        opts.clusters = 1;
        opts.cores_per_cluster = 8;
    }
    // The profiled loop is the sequential reference semantics; force the
    // shard width so a pool default cannot route ticks off it.
    opts.cluster_workers = Some(1);

    let mut chip = opts.build_chip();
    chip.run_warmup(opts.warmup_per_thread * chip.config.total_cores() as u64);

    // Wall clocks are confined to bench/CLI code by determinism lint
    // D002; this binary is CLI code and the time never reaches an
    // artifact the byte-identity gates compare.
    // respin-lint: allow(D002, reason="bench --profile measures wall time; never written to result artifacts")
    let t0 = std::time::Instant::now();
    let mut clock = move || u64::try_from(t0.elapsed().as_nanos()).expect("run under 584 years");
    let mut profiler = PhaseProfiler::new(&mut clock);
    loop {
        let report = chip.run_epoch_profiled(&mut profiler);
        if report.finished {
            break;
        }
    }
    // Copying the accumulator is the profiler's last use, which releases
    // its borrow of `clock`.
    let acc = profiler.acc;
    let wall_ns = clock().max(1);
    let instructions = chip.total_instructions();

    let attributed_ns = acc.total_ns();
    let coverage_pct = attributed_ns as f64 / wall_ns as f64 * 100.0;
    let ips = instructions * 1_000_000_000 / wall_ns;
    let mut phases = String::new();
    for (i, name) in PHASE_NAMES.iter().enumerate() {
        if i > 0 {
            phases.push(',');
        }
        let pct = acc.ns[i] as f64 / wall_ns as f64 * 100.0;
        phases.push_str(&format!(
            "\"{name}\":{{\"ns\":{},\"pct\":{pct:.2}}}",
            acc.ns[i]
        ));
    }
    let json = format!(
        "{{\"schema\":\"respin-profile/v1\",\"mode\":\"{}\",\"arch\":\"sh_stt\",\
         \"benchmark\":\"radix\",\"executed_ticks\":{},\"instructions\":{instructions},\
         \"wall_ns\":{wall_ns},\"attributed_ns\":{attributed_ns},\
         \"coverage_pct\":{coverage_pct:.2},\"ips\":{ips},\"phases\":{{{phases}}}}}\n",
        if smoke { "smoke" } else { "quick" },
        acc.executed_ticks,
    );
    match &out {
        Some(path) => {
            atomic_write(path, json.as_bytes()).expect("write profile report");
            println!(
                "bench: profile coverage={coverage_pct:.2}% ips={ips} -> {}",
                path.display()
            );
        }
        None => print!("{json}"),
    }
}

fn main() {
    let mut argv = std::env::args().skip(1).peekable();
    match argv.peek().map(String::as_str) {
        Some("serve") => {
            argv.next();
            serve_main(argv);
            return;
        }
        Some("client") => {
            argv.next();
            client_main(argv);
            return;
        }
        Some("bench") => {
            argv.next();
            bench_main(argv);
            return;
        }
        _ => {}
    }
    let args = parse_args(argv);
    if let Some(n) = args.threads {
        respin_pool::set_threads(n);
    }
    let threads = respin_pool::resolved_threads();
    let params = if args.quick {
        ExpParams::quick()
    } else {
        ExpParams::full()
    };
    let out_dir = args.out.clone().or_else(|| {
        if args.names.len() == EXPERIMENT_NAMES.len() {
            Some(PathBuf::from("results"))
        } else {
            None
        }
    });
    if let Some(dir) = &out_dir {
        fs::create_dir_all(dir).expect("create output directory");
    }
    let ring = args
        .trace_out
        .as_ref()
        .map(|_| Arc::new(RingSink::unbounded()));
    let mut cache = match &ring {
        Some(ring) => RunCache::with_tracer(ring.clone(), args.trace_epochs),
        None => RunCache::new(),
    };
    if let Some(dir) = &args.checkpoint_dir {
        if args.resume {
            // Replay BEFORE opening the append handle: a torn tail is
            // truncated away first, so new appends extend a clean prefix.
            let replay = persist::replay(dir).expect("replay result journal");
            // `JRN-TORN` is warning-severity (the campaign recovers), so
            // gate on any violation at all, not on `is_clean()`.
            if !replay.report.violations.is_empty() {
                eprintln!("{}", replay.report);
            }
            let warmed = cache.warm(&replay.records);
            println!(
                "resume: replayed={} warmed={} failed_retryable={} truncated={}",
                replay.records.len(),
                warmed,
                replay.failed(),
                replay.truncated
            );
        }
        let journal = ResultJournal::open(dir).expect("open result journal");
        cache = cache.with_journal(Arc::new(journal));
    }
    let cache = cache;

    let emit = |name: &str, text: String, json: String| {
        println!("{}", annotate_status_lines(&text, threads));
        if let Some(dir) = &out_dir {
            atomic_write(&dir.join(format!("{name}.txt")), text.as_bytes()).expect("write text");
            atomic_write(&dir.join(format!("{name}.json")), json.as_bytes()).expect("write json");
        }
    };

    let mut failed_experiments: Vec<(String, String)> = Vec::new();
    for name in &args.names {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // The resilience experiment traces through its own scoped
            // sinks (fault runs are not cacheable); every other
            // experiment traces through the cache's ring.
            let sink = ring.clone().map(|r| r as Arc<dyn TraceSink>);
            match generate_named(name, &cache, &params, sink, args.trace_epochs) {
                Some((text, json)) => emit(name, text, json),
                None => unreachable!("validated in parse_args"),
            }
        }));
        match outcome {
            Ok(()) => eprintln!("[{name} done; {} cached runs]", cache.len()),
            Err(payload) => {
                // Fault isolation: completed sibling runs are already in
                // cache and journal; record the failure and keep going so
                // one bad experiment cannot take down the campaign.
                let why = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "panicked (non-string payload)".to_string());
                eprintln!("[{name} FAILED: {why}]");
                failed_experiments.push((name.clone(), why));
            }
        }
    }

    if let (Some(path), Some(ring)) = (&args.trace_out, &ring) {
        // Canonical order (stable grouping by schedule-independent run
        // id): parallel and sequential campaigns export byte-identical
        // files.
        let mut events = ring.snapshot();
        canonical_order(&mut events);
        let base = trace_base(path);
        let jsonl_path = base.with_extension("jsonl");
        let chrome_path = base.with_extension("chrome.json");
        if let Some(dir) = jsonl_path.parent().filter(|d| !d.as_os_str().is_empty()) {
            fs::create_dir_all(dir).expect("create trace directory");
        }
        atomic_write(&jsonl_path, to_jsonl(&events).as_bytes()).expect("write jsonl trace");
        atomic_write(&chrome_path, to_chrome_trace(&events).as_bytes())
            .expect("write chrome trace");
        println!(
            "trace: {} events ({} dropped) threads={} -> {} + {}",
            events.len(),
            ring.dropped(),
            threads,
            jsonl_path.display(),
            chrome_path.display()
        );
    }

    if !failed_experiments.is_empty() {
        // Structured partial-failure report: everything that did complete
        // is journaled/written above; the exit code tells automation the
        // campaign needs a --resume retry.
        eprintln!(
            "campaign: partial failure — {}/{} experiments failed",
            failed_experiments.len(),
            args.names.len()
        );
        for (name, why) in &failed_experiments {
            eprintln!("campaign:   {name}: {why}");
        }
        std::process::exit(1);
    }
}
