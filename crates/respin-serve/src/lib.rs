//! # respin-serve — Respin-as-a-service
//!
//! A multi-second near-threshold simulation is too expensive to rerun
//! every time a figure script asks for it, and a one-shot CLI forgets
//! its memoisation the moment it exits. This crate keeps the simulator
//! *resident*: a long-lived daemon accepts sweep and experiment jobs
//! over a Unix-domain socket, streams epoch traces and run results back
//! incrementally as JSONL, and backs the in-memory
//! [`respin_core::experiments::RunCache`] with a persistent
//! content-addressed [`store::ResultStore`] so warm results survive
//! daemon restarts — and even `SIGKILL` (every store write goes through
//! `respin_core::persist::atomic_write`).
//!
//! The determinism contract extends across process boundaries: a result
//! served **warm from the store**, **live from the daemon**, or
//! **computed by the one-shot CLI** is byte-identical. The store keys
//! entries by the canonical serialised `RunOptions`
//! ([`respin_core::experiments::common::canonical_key`]) — the same
//! single serialisation point behind the memo map and the stable trace
//! run ids — and stores the exact `RunResult` through the
//! CRC-guarded journal record codec, so a warm load is the same bytes
//! that the live run journaled.
//!
//! Layout:
//! * [`protocol`] — the versioned `respin-serve/v1` JSONL wire protocol
//!   (normative spec: `docs/PROTOCOL.md`).
//! * [`store`] — the content-addressed on-disk result store with CRC
//!   validation and LRU size-budget eviction.
//! * [`server`] — the daemon: listener, per-job admission control
//!   ([`respin_pool::Budget`]), per-connection trace streaming.
//! * [`client`] — a blocking client library used by the
//!   `respin-experiments client` subcommand, the integration tests, and
//!   the `bench_report` serve suite.
//!
//! Operator guide: `docs/OPERATIONS.md`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Tests may unwrap: a panic IS the failure report there.
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(clippy::all)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod store;

pub use client::{Client, ExperimentOutcome, SweepOutcome};
pub use protocol::{
    decode_event, decode_request, encode_event, encode_request, Event, EventEnvelope, Request,
    RequestEnvelope, ResultSource, PROTOCOL_VERSION,
};
pub use server::{ServeOptions, Server};
pub use store::{ResultStore, StoreStats};
