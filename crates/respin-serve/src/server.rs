//! The daemon: a Unix-domain-socket listener, per-job admission
//! control, and per-connection streaming.
//!
//! Threading model: one OS thread per connection (connections are
//! long-lived and few), with **simulation** parallelism governed by a
//! shared [`respin_pool::Budget`] — the operator's single `--threads`
//! budget is divided fairly among up to `--max-jobs` concurrently
//! admitted jobs, and a job beyond that blocks in admission (the
//! client sees the gap between its request and the `Started` event).
//!
//! Fault isolation: a panicking run is caught per-run, journaled as
//! failed-retryable through the [`RunCache`]'s crash-safe journal (the
//! same records `respin-experiments campaign --resume` replays), and
//! reported to the client as an `SRV-RUN-PANIC` violation — the
//! connection and the daemon survive, and the content-addressed store
//! is never written for the failed key (the save happens strictly
//! after a successful run). A *disconnecting client* is equally
//! harmless in the other direction: writes to a dead peer latch the
//! connection's sender (the [`respin_trace::StreamSink`] discipline)
//! while the admitted job runs to completion, so its results still
//! land in the memo and the store for the next client.

use crate::protocol::{
    self, decode_request, encode_event, Event, Request, ResultSource, CODE_EXPERIMENT,
    CODE_RUN_PANIC,
};
use crate::store::ResultStore;
use respin_core::experiments::common::canonical_key;
use respin_core::experiments::{generate_named, ExpParams, RunCache};
use respin_core::persist::ResultJournal;
use respin_core::RunOptions;
use respin_pool::{Budget, Pool};
use respin_power::diag::Violation;
use respin_trace::{TraceEvent, TraceSink};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// How the daemon is configured. Field-for-field the `serve`
/// subcommand's flags; defaults documented in `docs/OPERATIONS.md`.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Socket path to bind (`--socket` / `RESPIN_SOCKET`).
    pub socket: PathBuf,
    /// Persistent store directory (`--store`); `None` = memo-only.
    pub store_dir: Option<PathBuf>,
    /// Store byte budget (`--store-budget-bytes`); 0 = the default.
    pub store_budget_bytes: u64,
    /// Total simulation thread budget (`--threads`); 0 = host parallelism.
    pub threads: usize,
    /// Concurrently admitted jobs (`--max-jobs`); 0 = 2.
    pub max_jobs: usize,
    /// Suppress per-connection stderr logging.
    pub quiet: bool,
}

impl ServeOptions {
    /// Options for `socket` with everything else defaulted.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        Self {
            socket: socket.into(),
            store_dir: None,
            store_budget_bytes: 0,
            threads: 0,
            max_jobs: 0,
            quiet: false,
        }
    }
}

/// State shared by the accept loop and every connection handler.
struct Shared {
    cache: RunCache,
    store: Option<Arc<ResultStore>>,
    budget: Arc<Budget>,
    shutdown: AtomicBool,
    connections: AtomicUsize,
    quiet: bool,
}

impl Shared {
    fn log(&self, msg: impl AsRef<str>) {
        if !self.quiet {
            eprintln!("respin-serve: {}", msg.as_ref());
        }
    }
}

/// A bound, not-yet-running daemon. [`Server::run`] consumes it.
pub struct Server {
    listener: UnixListener,
    socket: PathBuf,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the socket and opens the store.
    ///
    /// A pre-existing socket file is probed with a connect: if a daemon
    /// answers, binding fails (`AddrInUse`); a stale file from a killed
    /// daemon is removed and rebound — the recovery path after
    /// `SIGKILL` needs no manual cleanup.
    pub fn bind(opts: &ServeOptions) -> std::io::Result<Server> {
        if opts.socket.exists() {
            if UnixStream::connect(&opts.socket).is_ok() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AddrInUse,
                    format!("a daemon is already serving on {}", opts.socket.display()),
                ));
            }
            std::fs::remove_file(&opts.socket)?;
        }
        let threads = if opts.threads == 0 {
            Pool::current().threads()
        } else {
            opts.threads
        };
        let max_jobs = if opts.max_jobs == 0 { 2 } else { opts.max_jobs };
        let mut cache = RunCache::new();
        let mut store = None;
        if let Some(dir) = &opts.store_dir {
            let opened = Arc::new(ResultStore::open(dir, opts.store_budget_bytes)?);
            // The failed-retryable journal lives next to the entries:
            // one directory is the daemon's whole persistent state.
            let journal = Arc::new(ResultJournal::open(dir)?);
            cache = cache
                .with_backing(
                    opened.clone() as Arc<dyn respin_core::experiments::common::ResultBacking>
                )
                .with_journal(journal);
            store = Some(opened);
        }
        let listener = UnixListener::bind(&opts.socket)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            socket: opts.socket.clone(),
            shared: Arc::new(Shared {
                cache,
                store,
                budget: Arc::new(Budget::new(threads, max_jobs)),
                shutdown: AtomicBool::new(false),
                connections: AtomicUsize::new(0),
                quiet: opts.quiet,
            }),
        })
    }

    /// The bound socket path.
    pub fn socket_path(&self) -> &std::path::Path {
        &self.socket
    }

    /// Accepts connections until a client sends `Shutdown`, then
    /// removes the socket file and returns.
    ///
    /// Shutdown is *immediate* for the accept loop but does not join
    /// in-flight connection handlers — the store's `atomic_write`
    /// discipline makes dying mid-job safe, and that is the property
    /// the operator actually needs (see `docs/OPERATIONS.md`,
    /// "Stopping").
    pub fn run(self) -> std::io::Result<()> {
        self.shared.log(format!(
            "serving on {} ({} threads / {} jobs, store: {})",
            self.socket.display(),
            self.shared.budget.total(),
            self.shared.budget.max_jobs(),
            self.shared
                .store
                .as_ref()
                .map_or("none".to_string(), |s| s.dir().display().to_string()),
        ));
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = self.shared.clone();
                    let id = shared.connections.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || handle_connection(&shared, stream, id));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
        self.shared.log("shutdown requested; leaving accept loop");
        let _ = std::fs::remove_file(&self.socket);
        Ok(())
    }
}

/// The write half of one connection: serialises envelope sends and
/// latches the first failure so a hung-up client never takes down the
/// job that is computing on its behalf.
struct Sender {
    inner: Mutex<SenderState>,
}

struct SenderState {
    stream: UnixStream,
    failed: bool,
}

impl Sender {
    fn new(stream: UnixStream) -> Self {
        Self {
            inner: Mutex::new(SenderState {
                stream,
                failed: false,
            }),
        }
    }

    /// Sends one event line; returns `false` once the peer is gone.
    fn send(&self, id: u64, ev: Event) -> bool {
        let mut state = self.inner.lock().expect("sender poisoned");
        if state.failed {
            return false;
        }
        let line = encode_event(&protocol::event(id, ev));
        let ok = state
            .stream
            .write_all(line.as_bytes())
            .and_then(|()| state.stream.write_all(b"\n"))
            .and_then(|()| state.stream.flush())
            .is_ok();
        if !ok {
            state.failed = true;
        }
        ok
    }

    fn failed(&self) -> bool {
        self.inner.lock().expect("sender poisoned").failed
    }
}

/// Adapts a connection's [`Sender`] into a [`TraceSink`]: each trace
/// event becomes one `Trace` envelope on the wire, streamed while the
/// simulation runs.
struct EnvelopeSink {
    sender: Arc<Sender>,
    id: u64,
}

impl TraceSink for EnvelopeSink {
    fn record(&self, event: &TraceEvent) {
        self.sender.send(
            self.id,
            Event::Trace {
                event: event.clone(),
            },
        );
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: UnixStream, conn: usize) {
    let reader = match stream.try_clone() {
        Ok(read_half) => BufReader::new(read_half),
        Err(e) => {
            shared.log(format!("conn {conn}: clone failed: {e}"));
            return;
        }
    };
    let sender = Arc::new(Sender::new(stream));
    shared.log(format!("conn {conn}: open"));
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let env = match decode_request(&line) {
            Ok(env) => env,
            Err(violation) => {
                // Can't trust anything further from this peer.
                sender.send(0, Event::Error { violation });
                break;
            }
        };
        let id = env.id;
        match env.req {
            Request::Hello => {
                let (entries, bytes) = store_occupancy(shared);
                sender.send(
                    id,
                    Event::Hello {
                        threads: shared.budget.total(),
                        max_jobs: shared.budget.max_jobs(),
                        fair_share: shared.budget.fair_share(),
                        store_entries: entries,
                        store_bytes: bytes,
                    },
                );
            }
            Request::Stats => {
                let (entries, bytes) = store_occupancy(shared);
                let (hits, saves) = shared
                    .store
                    .as_ref()
                    .map_or((0, 0), |s| (s.stats().hits, s.stats().saves));
                sender.send(
                    id,
                    Event::Stats {
                        memo_runs: shared.cache.len(),
                        store_entries: entries,
                        store_bytes: bytes,
                        store_hits: hits,
                        store_saves: saves,
                        active_jobs: shared.budget.active(),
                    },
                );
            }
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                sender.send(
                    id,
                    Event::Done {
                        results: 0,
                        live: 0,
                        warm_memo: 0,
                        warm_store: 0,
                    },
                );
                break;
            }
            Request::Run { options, trace } => {
                run_sweep(shared, &sender, id, vec![*options], trace);
            }
            Request::Sweep { batch, trace } => {
                run_sweep(shared, &sender, id, batch, trace);
            }
            Request::Experiment { name, quick } => {
                run_experiment(shared, &sender, id, &name, quick);
            }
        }
        if sender.failed() {
            break;
        }
    }
    shared.log(format!("conn {conn}: closed"));
}

fn store_occupancy(shared: &Shared) -> (usize, u64) {
    shared.store.as_ref().map_or((0, 0), |s| {
        let stats = s.stats();
        (stats.entries, stats.bytes)
    })
}

/// Executes a batch under admission control, streaming each result as
/// it completes (completion order; `index` restores client order).
fn run_sweep(
    shared: &Arc<Shared>,
    sender: &Arc<Sender>,
    id: u64,
    batch: Vec<RunOptions>,
    trace: bool,
) {
    let slot = shared.budget.acquire();
    sender.send(
        id,
        Event::Started {
            granted_threads: slot.threads(),
        },
    );
    // Pre-run provenance labels. Within-batch duplicate keys are all
    // labelled from the pre-run state (the memo dedups execution).
    let sources: Vec<ResultSource> = batch
        .iter()
        .map(|opts| {
            let key = canonical_key(opts);
            if shared.cache.peek_key(&key).is_some() {
                ResultSource::WarmMemo
            } else if shared.store.as_ref().is_some_and(|s| s.contains(&key)) {
                ResultSource::WarmStore
            } else {
                ResultSource::Live
            }
        })
        .collect();
    let cache = if trace {
        shared.cache.with_sink(
            Arc::new(EnvelopeSink {
                sender: sender.clone(),
                id,
            }),
            None,
        )
    } else {
        shared.cache.clone()
    };
    // Work-steal the batch across the job's granted threads; each run
    // is sent the moment it completes so a slow run never dams the
    // stream. A panicking run is journaled failed-retryable inside the
    // cache and surfaces here as an `Err` — it gets an Error event
    // instead of a Result and never touches the store.
    let next = AtomicUsize::new(0);
    let served = Mutex::new(vec![false; batch.len()]);
    std::thread::scope(|scope| {
        for _ in 0..slot.threads().min(batch.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= batch.len() {
                    break;
                }
                let outcome = catch_unwind(AssertUnwindSafe(|| cache.run(&batch[i])));
                match outcome {
                    Ok(result) => {
                        // Send is best-effort: when the peer is gone the
                        // run still completed and is warm for the next
                        // client, so it still counts as served.
                        sender.send(
                            id,
                            Event::Result {
                                index: i,
                                source: sources[i],
                                result: Box::new((*result).clone()),
                            },
                        );
                        served.lock().expect("served poisoned")[i] = true;
                    }
                    Err(panic) => {
                        let message = panic_message(&panic);
                        sender.send(
                            id,
                            Event::Error {
                                violation: Violation::error(
                                    CODE_RUN_PANIC,
                                    "job isolation",
                                    canonical_key(&batch[i]),
                                    format!(
                                        "run panicked ({message}); key journaled failed-retryable"
                                    ),
                                ),
                            },
                        );
                    }
                }
            });
        }
    });
    let served = served.into_inner().expect("served poisoned");
    let mut live = 0;
    let mut warm_memo = 0;
    let mut warm_store = 0;
    for (i, &ok) in served.iter().enumerate() {
        if ok {
            match sources[i] {
                ResultSource::Live => live += 1,
                ResultSource::WarmMemo => warm_memo += 1,
                ResultSource::WarmStore => warm_store += 1,
            }
        }
    }
    sender.send(
        id,
        Event::Done {
            results: live + warm_memo + warm_store,
            live,
            warm_memo,
            warm_store,
        },
    );
    drop(slot);
}

/// Generates one named experiment under admission control; artifacts
/// stream back as `Artifact` events, byte-identical to the CLI's files.
fn run_experiment(shared: &Arc<Shared>, sender: &Arc<Sender>, id: u64, name: &str, quick: bool) {
    let slot = shared.budget.acquire();
    sender.send(
        id,
        Event::Started {
            granted_threads: slot.threads(),
        },
    );
    let params = if quick {
        ExpParams::quick()
    } else {
        ExpParams::full()
    };
    let memo_before = shared.cache.len();
    let store_before = shared.store.as_ref().map(|s| s.stats());
    let cache = shared.cache.clone().with_pool(slot.pool());
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        generate_named(name, &cache, &params, None, None)
    }));
    match outcome {
        Ok(Some((text, json))) => {
            sender.send(
                id,
                Event::Artifact {
                    name: name.to_string(),
                    kind: "txt".to_string(),
                    body: text,
                },
            );
            sender.send(
                id,
                Event::Artifact {
                    name: name.to_string(),
                    kind: "json".to_string(),
                    body: json,
                },
            );
            let warm_store = match (&store_before, shared.store.as_ref()) {
                (Some(before), Some(store)) => (store.stats().hits - before.hits) as usize,
                _ => 0,
            };
            // A store hit is memoized too, so the memo delta alone would
            // double-count warm-from-store loads as live simulations.
            let live = shared
                .cache
                .len()
                .saturating_sub(memo_before)
                .saturating_sub(warm_store);
            sender.send(
                id,
                Event::Done {
                    results: 2,
                    live,
                    warm_memo: 0,
                    warm_store,
                },
            );
        }
        Ok(None) => {
            sender.send(
                id,
                Event::Error {
                    violation: Violation::error(
                        CODE_EXPERIMENT,
                        "experiment dispatch",
                        name,
                        "unknown experiment name",
                    ),
                },
            );
        }
        Err(panic) => {
            sender.send(
                id,
                Event::Error {
                    violation: Violation::error(
                        CODE_RUN_PANIC,
                        "job isolation",
                        name,
                        format!(
                            "experiment panicked ({}); failed keys journaled retryable",
                            panic_message(&panic)
                        ),
                    ),
                },
            );
        }
    }
    drop(slot);
}

/// Best-effort extraction of a panic payload message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
