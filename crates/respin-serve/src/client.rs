//! A blocking client for the `respin-serve/v1` protocol.
//!
//! Used by the `respin-experiments client` subcommand, the integration
//! tests, and the `bench_report` serve suite. The client is
//! deliberately dumb: it frames lines, checks versions, correlates ids,
//! and reassembles streamed results into client (batch) order — all
//! interpretation beyond that belongs to the caller.

use crate::protocol::{
    decode_event, encode_request, request, Event, Request, ResultSource, PROTOCOL_VERSION,
};
use respin_core::RunOptions;
use respin_power::diag::Violation;
use respin_sim::RunResult;
use respin_trace::TraceEvent;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Summary counts from a `Done` event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DoneCounts {
    /// Results delivered.
    pub results: usize,
    /// Of those, simulated live.
    pub live: usize,
    /// Of those, served from the daemon's in-memory memo.
    pub warm_memo: usize,
    /// Of those, loaded from the persistent store.
    pub warm_store: usize,
}

/// Everything a sweep request streamed back, reassembled.
#[derive(Debug, Clone, Default)]
pub struct SweepOutcome {
    /// Per-batch-position results (`None` = that run failed).
    pub results: Vec<Option<RunResult>>,
    /// Per-batch-position provenance labels.
    pub sources: Vec<Option<ResultSource>>,
    /// Streamed trace events, in arrival order.
    pub trace: Vec<TraceEvent>,
    /// Structured errors (`SRV-RUN-PANIC` for failed runs).
    pub errors: Vec<Violation>,
    /// The closing summary.
    pub done: DoneCounts,
    /// Threads the daemon granted this job.
    pub granted_threads: usize,
}

/// Everything an experiment request streamed back.
#[derive(Debug, Clone, Default)]
pub struct ExperimentOutcome {
    /// The text artifact, when the experiment succeeded.
    pub text: Option<String>,
    /// The JSON artifact, when the experiment succeeded.
    pub json: Option<String>,
    /// Structured errors.
    pub errors: Vec<Violation>,
    /// The closing summary.
    pub done: DoneCounts,
}

/// Daemon identity from the `Hello` handshake.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HelloInfo {
    /// Total simulation thread budget.
    pub threads: usize,
    /// Concurrent jobs admitted before queueing.
    pub max_jobs: usize,
    /// Threads granted to each admitted job.
    pub fair_share: usize,
    /// Entries in the persistent store.
    pub store_entries: usize,
    /// Bytes in the persistent store.
    pub store_bytes: u64,
}

/// One connection to a daemon.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
    next_id: u64,
}

impl Client {
    /// Connects to the daemon at `socket`.
    pub fn connect(socket: &Path) -> std::io::Result<Client> {
        let stream = UnixStream::connect(socket)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
            next_id: 1,
        })
    }

    /// The protocol version this client speaks.
    pub fn protocol(&self) -> &'static str {
        PROTOCOL_VERSION
    }

    fn send(&mut self, req: Request) -> Result<u64, String> {
        let id = self.next_id;
        self.next_id += 1;
        let line = encode_request(&request(id, req));
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))?;
        Ok(id)
    }

    /// Reads one event envelope, skipping blank lines.
    fn next_event(&mut self) -> Result<(u64, Event), String> {
        loop {
            let mut line = String::new();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| format!("read failed: {e}"))?;
            if n == 0 {
                return Err("daemon closed the connection".to_string());
            }
            if line.trim().is_empty() {
                continue;
            }
            let env = decode_event(&line).map_err(|v| v.to_string())?;
            return Ok((env.id, env.ev));
        }
    }

    /// Handshakes and returns the daemon's identity.
    pub fn hello(&mut self) -> Result<HelloInfo, String> {
        let id = self.send(Request::Hello)?;
        loop {
            let (got, ev) = self.next_event()?;
            if got != id {
                continue;
            }
            match ev {
                Event::Hello {
                    threads,
                    max_jobs,
                    fair_share,
                    store_entries,
                    store_bytes,
                } => {
                    return Ok(HelloInfo {
                        threads,
                        max_jobs,
                        fair_share,
                        store_entries,
                        store_bytes,
                    })
                }
                Event::Error { violation } => return Err(violation.to_string()),
                _ => {}
            }
        }
    }

    /// Runs a batch, blocking until its `Done`, reassembling streamed
    /// results into batch order.
    pub fn sweep(&mut self, batch: Vec<RunOptions>, trace: bool) -> Result<SweepOutcome, String> {
        let len = batch.len();
        let id = self.send(Request::Sweep { batch, trace })?;
        let mut outcome = SweepOutcome {
            results: vec![None; len],
            sources: vec![None; len],
            ..SweepOutcome::default()
        };
        loop {
            let (got, ev) = self.next_event()?;
            if got != id {
                continue;
            }
            match ev {
                Event::Started { granted_threads } => outcome.granted_threads = granted_threads,
                Event::Trace { event } => outcome.trace.push(event),
                Event::Result {
                    index,
                    source,
                    result,
                } if index < len => {
                    outcome.results[index] = Some(*result);
                    outcome.sources[index] = Some(source);
                }
                Event::Error { violation } => outcome.errors.push(violation),
                Event::Done {
                    results,
                    live,
                    warm_memo,
                    warm_store,
                } => {
                    outcome.done = DoneCounts {
                        results,
                        live,
                        warm_memo,
                        warm_store,
                    };
                    return Ok(outcome);
                }
                _ => {}
            }
        }
    }

    /// Runs one simulation (a one-entry sweep).
    pub fn run(&mut self, options: RunOptions, trace: bool) -> Result<SweepOutcome, String> {
        self.sweep(vec![options], trace)
    }

    /// Generates a named experiment, blocking until its `Done` (or a
    /// terminal error).
    pub fn experiment(&mut self, name: &str, quick: bool) -> Result<ExperimentOutcome, String> {
        let id = self.send(Request::Experiment {
            name: name.to_string(),
            quick,
        })?;
        let mut outcome = ExperimentOutcome::default();
        loop {
            let (got, ev) = self.next_event()?;
            if got != id {
                continue;
            }
            match ev {
                Event::Artifact { kind, body, .. } => match kind.as_str() {
                    "txt" => outcome.text = Some(body),
                    "json" => outcome.json = Some(body),
                    _ => {}
                },
                Event::Error { violation } => {
                    // Experiment errors are terminal: no Done follows an
                    // unknown name or a panic.
                    outcome.errors.push(violation);
                    return Ok(outcome);
                }
                Event::Done {
                    results,
                    live,
                    warm_memo,
                    warm_store,
                } => {
                    outcome.done = DoneCounts {
                        results,
                        live,
                        warm_memo,
                        warm_store,
                    };
                    return Ok(outcome);
                }
                _ => {}
            }
        }
    }

    /// Snapshots daemon counters.
    pub fn stats(&mut self) -> Result<Event, String> {
        let id = self.send(Request::Stats)?;
        loop {
            let (got, ev) = self.next_event()?;
            if got == id {
                return Ok(ev);
            }
        }
    }

    /// Asks the daemon to stop accepting connections.
    pub fn shutdown(&mut self) -> Result<(), String> {
        let id = self.send(Request::Shutdown)?;
        loop {
            let (got, ev) = self.next_event()?;
            if got == id {
                return match ev {
                    Event::Done { .. } => Ok(()),
                    Event::Error { violation } => Err(violation.to_string()),
                    _ => continue,
                };
            }
        }
    }
}
