//! The content-addressed on-disk result store behind the daemon's
//! [`RunCache`](respin_core::experiments::RunCache).
//!
//! Each completed run is one file, named by the 64-bit FNV-1a hash of
//! its canonical options key (`<16 hex digits>.json`) and containing a
//! single CRC-guarded journal line — the same
//! [`respin_core::persist::encode_record`] codec the crash-safe
//! campaign journal uses, so the store inherits its properties for
//! free: exact `f64` round-trips (bit-pattern encoding) and torn/bit-rot
//! detection on load. The full canonical key is stored *inside* the
//! record and verified on every load, so a (astronomically unlikely)
//! 64-bit hash collision degrades to a cache miss, never a wrong
//! result.
//!
//! Durability discipline: every write — entries and the LRU index —
//! goes through [`atomic_write`] (tmp + fsync + rename + dir fsync).
//! `SIGKILL` at any instant leaves either the old file or the new one,
//! never a torn hybrid; the kill-and-restart integration test and the
//! `verify.sh` serve smoke gate exercise exactly this.
//!
//! Eviction: the store carries a byte budget. An `index.json` sidecar
//! records a logical access clock per entry (no wall clock — the store
//! lives in a result-bearing crate, rule D002); when a save pushes the
//! total over budget, least-recently-used entries are deleted until it
//! fits. A missing or corrupt index is rebuilt from the entry files
//! (order unknowable, so survivors restart at clock zero) — the index
//! is an optimisation, never a source of truth.

use parking_lot::Mutex;
use respin_core::experiments::common::ResultBacking;
use respin_core::persist::{atomic_write, decode_record, encode_record, fnv1a64};
use respin_core::persist::{JournalRecord, RunOutcome};
use respin_sim::RunResult;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// File name of the LRU index sidecar.
pub const INDEX_FILE: &str = "index.json";

/// Default store byte budget: 256 MiB (thousands of quick-profile
/// results; a full-profile `RunResult` line is a few KiB).
pub const DEFAULT_BUDGET_BYTES: u64 = 256 * 1024 * 1024;

/// Serialised LRU index: schema version, logical clock high-water mark,
/// and one line per entry. Written atomically on every mutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct IndexFile {
    v: u64,
    clock: u64,
    entries: Vec<IndexLine>,
}

/// One indexed entry: content hash (hex file stem), size, last access.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct IndexLine {
    hash: String,
    bytes: u64,
    seq: u64,
}

/// In-memory index state, guarded by one store-wide mutex.
struct Index {
    clock: u64,
    entries: BTreeMap<String, (u64, u64)>, // hash -> (bytes, seq)
}

impl Index {
    fn total_bytes(&self) -> u64 {
        self.entries.values().map(|(b, _)| *b).sum()
    }
}

/// Counters snapshot for `stats` responses and the bench report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Entries currently on disk.
    pub entries: usize,
    /// Total entry bytes currently on disk.
    pub bytes: u64,
    /// Loads that returned a result.
    pub hits: u64,
    /// Loads that found nothing (or a corrupt/foreign entry).
    pub misses: u64,
    /// Results saved.
    pub saves: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
}

/// The persistent content-addressed result store.
///
/// Thread-safe ([`ResultBacking`] requires it); all failures degrade to
/// misses or skipped saves — a persistence problem costs warm starts,
/// never a campaign.
pub struct ResultStore {
    dir: PathBuf,
    budget_bytes: u64,
    index: Mutex<Index>,
    hits: AtomicU64,
    misses: AtomicU64,
    saves: AtomicU64,
    evictions: AtomicU64,
}

/// `<16 hex digits>` stem for a canonical key.
fn hash_stem(key: &str) -> String {
    format!("{:016x}", fnv1a64(key.as_bytes()))
}

/// True for file names shaped like store entries (`<16 hex>.json`).
fn is_entry_name(name: &str) -> bool {
    name.len() == 21 && name.ends_with(".json") && name[..16].bytes().all(|b| b.is_ascii_hexdigit())
}

impl ResultStore {
    /// Opens (creating if needed) the store at `dir` with the given
    /// byte budget (clamped to at least one entry's worth; `0` means
    /// [`DEFAULT_BUDGET_BYTES`]).
    ///
    /// Reconciles the index against the directory: entries on disk but
    /// not indexed join at clock zero (evicted first); index lines
    /// whose file vanished are dropped. A missing or unparseable index
    /// is rebuilt the same way — never an error.
    pub fn open(dir: &Path, budget_bytes: u64) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let budget = if budget_bytes == 0 {
            DEFAULT_BUDGET_BYTES
        } else {
            budget_bytes
        };
        let mut index = Index {
            clock: 0,
            entries: BTreeMap::new(),
        };
        if let Ok(text) = std::fs::read_to_string(dir.join(INDEX_FILE)) {
            if let Ok(file) = serde_json::from_str::<IndexFile>(&text) {
                index.clock = file.clock;
                for line in file.entries {
                    index.entries.insert(line.hash, (line.bytes, line.seq));
                }
            }
        }
        // Reconcile against what is actually on disk.
        let mut on_disk: BTreeMap<String, u64> = BTreeMap::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if is_entry_name(&name) {
                on_disk.insert(name[..16].to_string(), entry.metadata()?.len());
            }
        }
        index.entries.retain(|hash, _| on_disk.contains_key(hash));
        for (hash, bytes) in on_disk {
            // Unindexed survivors (index lost, or a crash between entry
            // and index write) join at clock 0: first in line to evict.
            index.entries.entry(hash).or_insert((bytes, 0));
        }
        let store = Self {
            dir: dir.to_path_buf(),
            budget_bytes: budget,
            index: Mutex::new(index),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            saves: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        };
        store.persist_index();
        Ok(store)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Entries currently indexed.
    pub fn len(&self) -> usize {
        self.index.lock().entries.len()
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether an entry file exists for `key`'s hash. A cheap pre-run
    /// label (`warm-store` vs `live`) — the authoritative check is the
    /// key comparison inside [`ResultBacking::load`].
    pub fn contains(&self, key: &str) -> bool {
        self.index.lock().entries.contains_key(&hash_stem(key))
    }

    /// Counters + occupancy snapshot.
    pub fn stats(&self) -> StoreStats {
        let index = self.index.lock();
        StoreStats {
            entries: index.entries.len(),
            bytes: index.total_bytes(),
            hits: self.hits.load(Ordering::SeqCst),
            misses: self.misses.load(Ordering::SeqCst),
            saves: self.saves.load(Ordering::SeqCst),
            evictions: self.evictions.load(Ordering::SeqCst),
        }
    }

    /// Absolute path of the entry file for `key`.
    pub fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{}.json", hash_stem(key)))
    }

    /// Serialises the index sidecar with `atomic_write`. Best-effort:
    /// an index write failure costs LRU fidelity, not correctness.
    fn persist_index(&self) {
        let file = {
            let index = self.index.lock();
            IndexFile {
                v: 1,
                clock: index.clock,
                entries: index
                    .entries
                    .iter()
                    .map(|(hash, &(bytes, seq))| IndexLine {
                        hash: hash.clone(),
                        bytes,
                        seq,
                    })
                    .collect(),
            }
        };
        let body = serde_json::to_string(&file).expect("index serialises");
        if let Err(e) = atomic_write(&self.dir.join(INDEX_FILE), body.as_bytes()) {
            eprintln!("respin-serve: store index write failed (degrading): {e}");
        }
    }

    /// Deletes LRU entries until the total fits the budget. The entry
    /// for `keep` (the one just written) is never evicted — a single
    /// over-budget result is still a warm result.
    fn evict_to_budget(&self, keep: &str) {
        let victims: Vec<String> = {
            let index = self.index.lock();
            let mut by_age: Vec<(&String, u64, u64)> = index
                .entries
                .iter()
                .map(|(hash, &(bytes, seq))| (hash, bytes, seq))
                .collect();
            by_age.sort_by_key(|&(hash, _, seq)| (seq, hash.clone()));
            let mut total = index.total_bytes();
            let mut victims = Vec::new();
            for (hash, bytes, _) in by_age {
                if total <= self.budget_bytes {
                    break;
                }
                if hash == keep {
                    continue;
                }
                total -= bytes;
                victims.push(hash.clone());
            }
            victims
        };
        for hash in victims {
            let path = self.dir.join(format!("{hash}.json"));
            if let Err(e) = std::fs::remove_file(&path) {
                if e.kind() != io::ErrorKind::NotFound {
                    eprintln!("respin-serve: eviction of {} failed: {e}", path.display());
                    continue;
                }
            }
            self.index.lock().entries.remove(&hash);
            self.evictions.fetch_add(1, Ordering::SeqCst);
        }
    }
}

impl ResultBacking for ResultStore {
    fn load(&self, key: &str) -> Option<RunResult> {
        let stem = hash_stem(key);
        if !self.index.lock().entries.contains_key(&stem) {
            self.misses.fetch_add(1, Ordering::SeqCst);
            return None;
        }
        let path = self.dir.join(format!("{stem}.json"));
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::SeqCst);
                return None;
            }
        };
        let record = match decode_record(text.trim_end()) {
            Ok(record) => record,
            Err(reason) => {
                // Torn or bit-rotted: quarantine by deletion so the next
                // save can land a clean entry, and report a miss.
                eprintln!(
                    "respin-serve: corrupt store entry {} ({reason}); removing",
                    path.display()
                );
                let _ = std::fs::remove_file(&path);
                self.index.lock().entries.remove(&stem);
                self.persist_index();
                self.misses.fetch_add(1, Ordering::SeqCst);
                return None;
            }
        };
        if record.key != key {
            // 64-bit hash collision (or a foreign file): the entry is
            // someone else's result. A miss, emphatically not a hit.
            self.misses.fetch_add(1, Ordering::SeqCst);
            return None;
        }
        match record.outcome {
            RunOutcome::Ok(result) => {
                // LRU touch.
                {
                    let mut index = self.index.lock();
                    index.clock += 1;
                    let clock = index.clock;
                    if let Some(slot) = index.entries.get_mut(&stem) {
                        slot.1 = clock;
                    }
                }
                self.persist_index();
                self.hits.fetch_add(1, Ordering::SeqCst);
                Some(*result)
            }
            // Failed records never warm anything (they are retryable by
            // definition) — and the daemon never saves them here anyway.
            RunOutcome::Failed(_) => {
                self.misses.fetch_add(1, Ordering::SeqCst);
                None
            }
        }
    }

    fn save(&self, key: &str, result: &RunResult) {
        let line = encode_record(&JournalRecord::ok(key, result));
        let stem = hash_stem(key);
        let path = self.dir.join(format!("{stem}.json"));
        let bytes = line.len() as u64 + 1;
        if let Err(e) = atomic_write(&path, format!("{line}\n").as_bytes()) {
            eprintln!("respin-serve: store save of {} failed: {e}", path.display());
            return;
        }
        {
            let mut index = self.index.lock();
            index.clock += 1;
            let clock = index.clock;
            index.entries.insert(stem.clone(), (bytes, clock));
        }
        self.evict_to_budget(&stem);
        self.persist_index();
        self.saves.fetch_add(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respin_core::experiments::common::canonical_key;
    use respin_core::experiments::ExpParams;
    use respin_core::run;
    use respin_core::ArchConfig;
    use respin_workloads::Benchmark;

    fn tiny_result() -> (String, RunResult) {
        let params = ExpParams::quick();
        let opts = params.options(ArchConfig::PrSramNt, Benchmark::Fft);
        let key = canonical_key(&opts);
        (key, run(&opts))
    }

    fn dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("respin-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trips_bit_identically_across_reopen() {
        let dir = dir("roundtrip");
        let (key, result) = tiny_result();
        {
            let store = ResultStore::open(&dir, 0).unwrap();
            assert!(store.load(&key).is_none(), "cold store must miss");
            store.save(&key, &result);
            assert!(store.contains(&key));
            assert_eq!(store.load(&key).unwrap(), result);
        }
        // A fresh handle (fresh process, after a restart) sees the entry.
        let store = ResultStore::open(&dir, 0).unwrap();
        let warm = store.load(&key).expect("entry must survive reopen");
        assert_eq!(warm, result, "warm result must be bit-identical");
        assert_eq!(store.stats().hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_degrades_to_a_miss_and_is_quarantined() {
        let dir = dir("corrupt");
        let (key, result) = tiny_result();
        let store = ResultStore::open(&dir, 0).unwrap();
        store.save(&key, &result);
        // Flip a byte in the stored line: the CRC must catch it.
        let path = store.entry_path(&key);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        atomic_write(&path, &bytes).unwrap();
        let store = ResultStore::open(&dir, 0).unwrap();
        assert!(store.load(&key).is_none(), "corrupt entry must miss");
        assert!(
            !store.entry_path(&key).exists(),
            "corrupt entry must be quarantined"
        );
        // The slot is reusable.
        store.save(&key, &result);
        assert_eq!(store.load(&key).unwrap(), result);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_is_lru_and_never_evicts_the_newest_save() {
        let dir = dir("evict");
        let (key, result) = tiny_result();
        // Budget of one entry (+ slack): every save evicts the LRU.
        let line_bytes = encode_record(&JournalRecord::ok(&key, &result)).len() as u64 + 1;
        let store = ResultStore::open(&dir, line_bytes + 16).unwrap();
        store.save("first-key", &result);
        store.save("second-key", &result);
        assert_eq!(store.len(), 1, "budget holds one entry");
        assert!(!store.contains("first-key"), "LRU entry evicted");
        assert!(store.contains("second-key"), "newest save kept");
        assert_eq!(store.stats().evictions, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lost_index_is_rebuilt_from_entry_files() {
        let dir = dir("reindex");
        let (key, result) = tiny_result();
        {
            let store = ResultStore::open(&dir, 0).unwrap();
            store.save(&key, &result);
        }
        std::fs::remove_file(dir.join(INDEX_FILE)).unwrap();
        let store = ResultStore::open(&dir, 0).unwrap();
        assert_eq!(store.len(), 1, "entry rediscovered without an index");
        assert_eq!(store.load(&key).unwrap(), result);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
