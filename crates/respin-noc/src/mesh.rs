//! The mesh network: hop timing, ingress contention, and message energy.

use crate::floorplan::Floorplan;
use serde::{Deserialize, Serialize};

/// Router + link traversal per hop, in 0.4 ns cache cycles. Nominal-voltage
/// routers cross a hop in a couple of cycles; 5 hops ≈ the 4 ns flat
/// cluster↔L3 figure the constant-latency model used.
pub const HOP_TICKS: u64 = 2;

/// Minimum spacing between messages accepted by one destination's ingress
/// port (a 64-byte line at 16 B/cycle link width).
pub const INGRESS_INTERVAL_TICKS: u64 = 4;

/// Energy per message per hop, pJ (router crossbar + link at nominal Vdd).
pub const HOP_ENERGY_PJ: f64 = 1.2;

/// Destinations of mesh traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Endpoint {
    /// Cluster tile `k`.
    Cluster(usize),
    /// The L3 tile.
    L3,
}

/// The chip's mesh interconnect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mesh {
    floorplan: Floorplan,
    /// Next tick each destination's ingress port is free
    /// (index = cluster id, last slot = L3).
    ingress_free: Vec<u64>,
    /// Messages delivered, for diagnostics.
    messages: u64,
    /// Accumulated hop energy since the last drain, pJ.
    pub energy_acc_pj: f64,
}

impl Mesh {
    /// Builds the mesh over a floorplan for `clusters` clusters.
    pub fn new(clusters: usize) -> Self {
        Self {
            floorplan: Floorplan::new(clusters),
            ingress_free: vec![0; clusters + 1],
            messages: 0,
            energy_acc_pj: 0.0,
        }
    }

    /// The underlying floorplan.
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    fn ingress_slot(&mut self, dst: Endpoint) -> &mut u64 {
        let idx = match dst {
            Endpoint::Cluster(k) => k,
            Endpoint::L3 => self.floorplan.clusters(),
        };
        &mut self.ingress_free[idx]
    }

    fn hops(&self, src: Endpoint, dst: Endpoint) -> u64 {
        match (src, dst) {
            (Endpoint::Cluster(a), Endpoint::Cluster(b)) => self.floorplan.hops_between(a, b),
            (Endpoint::Cluster(k), Endpoint::L3) | (Endpoint::L3, Endpoint::Cluster(k)) => {
                self.floorplan.hops_to_l3(k)
            }
            (Endpoint::L3, Endpoint::L3) => 0,
        }
    }

    /// Sends one message from `src` to `dst`, departing no earlier than
    /// `depart`. Returns the arrival tick, after hop latency and any wait
    /// for the destination's ingress port. Charges hop energy.
    pub fn traverse(&mut self, src: Endpoint, dst: Endpoint, depart: u64) -> u64 {
        let hops = self.hops(src, dst);
        self.energy_acc_pj += hops as f64 * HOP_ENERGY_PJ;
        self.messages += 1;
        let wire_arrival = depart + hops * HOP_TICKS;
        let slot = self.ingress_slot(dst);
        let arrival = wire_arrival.max(*slot);
        *slot = arrival + INGRESS_INTERVAL_TICKS;
        arrival
    }

    /// A full round trip `src → dst → src` (request + response), returning
    /// the tick the response is back at `src`.
    pub fn round_trip(&mut self, src: Endpoint, dst: Endpoint, depart: u64) -> u64 {
        let there = self.traverse(src, dst, depart);
        self.traverse(dst, src, there)
    }

    /// Messages delivered so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Zeroes the counters (measurement warm-up reset).
    pub fn reset_measurements(&mut self) {
        self.messages = 0;
        self.energy_acc_pj = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_latency_is_hops_times_hop_ticks() {
        let mut m = Mesh::new(4);
        // All four clusters are 2 hops from the L3.
        let arrival = m.traverse(Endpoint::Cluster(0), Endpoint::L3, 100);
        assert_eq!(arrival, 100 + 2 * HOP_TICKS);
    }

    #[test]
    fn concurrent_messages_queue_at_the_ingress() {
        let mut m = Mesh::new(4);
        let a = m.traverse(Endpoint::Cluster(0), Endpoint::L3, 0);
        let b = m.traverse(Endpoint::Cluster(1), Endpoint::L3, 0);
        let c = m.traverse(Endpoint::Cluster(2), Endpoint::L3, 0);
        assert_eq!(a, 4);
        assert_eq!(b, a + INGRESS_INTERVAL_TICKS);
        assert_eq!(c, b + INGRESS_INTERVAL_TICKS);
    }

    #[test]
    fn distinct_destinations_do_not_contend() {
        let mut m = Mesh::new(4);
        let a = m.traverse(Endpoint::Cluster(0), Endpoint::Cluster(1), 0);
        let b = m.traverse(Endpoint::Cluster(2), Endpoint::Cluster(3), 0);
        // Both arrive purely wire-limited.
        assert_eq!(a, m.floorplan().hops_between(0, 1) * HOP_TICKS);
        assert_eq!(b, m.floorplan().hops_between(2, 3) * HOP_TICKS);
    }

    #[test]
    fn round_trip_is_two_traversals() {
        let mut m = Mesh::new(4);
        let back = m.round_trip(Endpoint::Cluster(0), Endpoint::L3, 10);
        assert_eq!(back, 10 + 4 * HOP_TICKS);
        assert_eq!(m.messages(), 2);
    }

    #[test]
    fn energy_accumulates_per_hop() {
        let mut m = Mesh::new(4);
        m.traverse(Endpoint::Cluster(0), Endpoint::L3, 0); // 2 hops
        assert!((m.energy_acc_pj - 2.0 * HOP_ENERGY_PJ).abs() < 1e-12);
        m.reset_measurements();
        assert_eq!(m.energy_acc_pj, 0.0);
        assert_eq!(m.messages(), 0);
    }

    #[test]
    fn clone_is_independent() {
        let mut m = Mesh::new(4);
        m.traverse(Endpoint::Cluster(0), Endpoint::L3, 0);
        let fork = m.clone();
        m.traverse(Endpoint::Cluster(0), Endpoint::L3, 0);
        assert_eq!(fork.messages(), 1);
        assert_eq!(m.messages(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn arrival_never_precedes_departure(
            n in 1usize..16,
            msgs in proptest::collection::vec((0usize..16, 0u64..1000), 1..50),
        ) {
            let mut m = Mesh::new(n);
            let mut last_depart = 0;
            for (k, dt) in msgs {
                last_depart += dt;
                let arrival = m.traverse(Endpoint::Cluster(k % n), Endpoint::L3, last_depart);
                prop_assert!(arrival >= last_depart + HOP_TICKS);
            }
        }

        #[test]
        fn ingress_spacing_holds(n in 1usize..8, count in 2usize..20) {
            let mut m = Mesh::new(n);
            let mut arrivals = Vec::new();
            for i in 0..count {
                arrivals.push(m.traverse(Endpoint::Cluster(i % n), Endpoint::L3, 0));
            }
            arrivals.sort_unstable();
            for w in arrivals.windows(2) {
                prop_assert!(w[1] - w[0] >= INGRESS_INTERVAL_TICKS);
            }
        }
    }
}
