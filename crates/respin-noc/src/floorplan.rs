//! Chip floorplan: cluster tiles on a near-square grid, L3 in the middle.

use serde::{Deserialize, Serialize};

/// Tile coordinates in router-grid units.
pub type Coord = (i64, i64);

/// A chip floorplan for `clusters` cluster tiles plus one L3 tile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    cluster_coords: Vec<Coord>,
    l3_coord: Coord,
}

impl Floorplan {
    /// Lays `clusters` tiles out on a `ceil(sqrt(n))`-wide grid, scaled ×2
    /// so the L3 can sit at the exact geometric centre between tiles.
    pub fn new(clusters: usize) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        let cols = (clusters as f64).sqrt().ceil() as i64;
        let rows = (clusters as i64 + cols - 1) / cols;
        let cluster_coords: Vec<Coord> = (0..clusters as i64)
            .map(|i| (2 * (i % cols), 2 * (i / cols)))
            .collect();
        // Centre of the occupied bounding box.
        let l3_coord = (cols - 1, rows - 1);
        Self {
            cluster_coords,
            l3_coord,
        }
    }

    /// Number of cluster tiles.
    pub fn clusters(&self) -> usize {
        self.cluster_coords.len()
    }

    /// Coordinates of cluster `k`.
    pub fn cluster(&self, k: usize) -> Coord {
        self.cluster_coords[k]
    }

    /// Coordinates of the L3 tile.
    pub fn l3(&self) -> Coord {
        self.l3_coord
    }

    /// Manhattan (XY-routed) hop count from cluster `k` to the L3.
    /// Always at least 1: even an adjacent tile crosses one router.
    pub fn hops_to_l3(&self, k: usize) -> u64 {
        let (x, y) = self.cluster(k);
        let (lx, ly) = self.l3_coord;
        (((x - lx).abs() + (y - ly).abs()) as u64).max(1)
    }

    /// Manhattan hop count between two clusters (for cluster-to-cluster
    /// coherence transfers).
    pub fn hops_between(&self, a: usize, b: usize) -> u64 {
        if a == b {
            return 0;
        }
        let (ax, ay) = self.cluster(a);
        let (bx, by) = self.cluster(b);
        (((ax - bx).abs() + (ay - by).abs()) as u64).max(1)
    }

    /// The largest cluster→L3 hop count (the worst-case corner).
    pub fn max_hops_to_l3(&self) -> u64 {
        (0..self.clusters())
            .map(|k| self.hops_to_l3(k))
            .max()
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_clusters_form_a_square_around_the_l3() {
        let f = Floorplan::new(4);
        assert_eq!(f.clusters(), 4);
        // 2×2 grid scaled ×2: tiles at (0,0),(2,0),(0,2),(2,2); L3 at (1,1).
        assert_eq!(f.l3(), (1, 1));
        for k in 0..4 {
            assert_eq!(f.hops_to_l3(k), 2, "cluster {k} equidistant");
        }
    }

    #[test]
    fn sixteen_clusters_have_unequal_distances() {
        let f = Floorplan::new(16);
        let hops: Vec<u64> = (0..16).map(|k| f.hops_to_l3(k)).collect();
        assert!(hops.iter().min().unwrap() < hops.iter().max().unwrap());
        assert_eq!(f.max_hops_to_l3(), *hops.iter().max().unwrap());
    }

    #[test]
    fn hops_between_is_symmetric_and_zero_on_self() {
        let f = Floorplan::new(8);
        for a in 0..8 {
            assert_eq!(f.hops_between(a, a), 0);
            for b in 0..8 {
                assert_eq!(f.hops_between(a, b), f.hops_between(b, a));
            }
        }
    }

    #[test]
    fn single_cluster_still_crosses_one_router() {
        let f = Floorplan::new(1);
        assert_eq!(f.hops_to_l3(0), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn triangle_inequality_through_l3(n in 2usize..32, a in 0usize..32, b in 0usize..32) {
            let f = Floorplan::new(n);
            let (a, b) = (a % n, b % n);
            prop_assert!(f.hops_between(a, b) <= f.hops_to_l3(a) + f.hops_to_l3(b));
        }

        #[test]
        fn all_distances_positive_and_bounded(n in 1usize..64) {
            let f = Floorplan::new(n);
            let side = 2 * (n as f64).sqrt() as u64 + 4;
            for k in 0..n {
                let h = f.hops_to_l3(k);
                prop_assert!(h >= 1 && h <= 2 * side);
            }
        }
    }
}
