//! # respin-noc — the on-chip network substrate
//!
//! The Respin floorplan (the paper's Figure 2) places the clusters around a
//! shared L3. Traffic between a cluster's L2 and the L3 crosses the chip's
//! interconnect; this crate models that interconnect as a 2D mesh:
//!
//! * **Floorplan** — cluster tiles on a near-square grid with the L3 at the
//!   geometric centre ([`Floorplan`]).
//! * **Routing** — dimension-ordered (XY) hop counts between tiles; each
//!   hop costs a fixed router+link traversal ([`HOP_TICKS`]).
//! * **Contention** — the L3's ingress port accepts one message per
//!   [`INGRESS_INTERVAL_TICKS`]; concurrent requests from the four clusters
//!   queue ([`Mesh::traverse`] mutates per-destination schedules).
//! * **Energy** — per hop per message ([`HOP_ENERGY_PJ`]); charged by the
//!   caller into its interconnect account.
//!
//! Everything is deterministic and `Clone` (the simulator's oracle relies
//! on cloned replay).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Tests may unwrap: a panic IS the failure report there.
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(clippy::all)]

pub mod floorplan;
pub mod mesh;

pub use floorplan::Floorplan;
pub use mesh::{Mesh, HOP_ENERGY_PJ, HOP_TICKS, INGRESS_INTERVAL_TICKS};
