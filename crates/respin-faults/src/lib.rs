//! # respin-faults — deterministic fault injection & recovery models
//!
//! Respin runs cores at near-threshold voltage — exactly the regime where
//! variation-induced timing faults spike — while betting the cache
//! hierarchy on STT-RAM, whose writes are stochastic and whose retention
//! decays (paper §II). This crate makes both failure modes first-class:
//!
//! * **STT-RAM write failures** — every array write fails with a
//!   per-array bit-error rate; the controller recovers with
//!   write-verify-retry under a bounded retry budget
//!   ([`ArrayFaults::on_write`]).
//! * **Retention decay** — resident lines accumulate bit flips as a
//!   Poisson process in line age × the retention parameter
//!   ([`ArrayFaults::on_read`]), repaired by SECDED ECC ([`secded`]) and
//!   epoch-boundary scrubbing ([`ArrayFaults::scrub_line`]).
//! * **Transient core faults** — the simulator draws per-core fault
//!   events keyed on the VARIUS variation field (slow cores at NT voltage
//!   fault more often); cores whose counter crosses a threshold are
//!   decommissioned and their virtual cores remapped. The chip-level
//!   policy lives in `respin-sim`; this crate supplies the seeded draw
//!   primitives and the [`stats`] plumbing.
//!
//! ## Determinism
//!
//! Every stochastic decision is a *stateless* hash draw, never a stream:
//! the outcome of an event is `unit_f64(combine([key, domain, addr, tick,
//! …]))` compared against a probability. There is no RNG cursor to keep
//! in sync, so (a) a disabled fault layer consumes nothing and is
//! bit-identical to the pre-fault simulator, (b) cloned chips (oracle
//! replay) see identical faults, and (c) two runs with the same seeds
//! produce bit-identical fault traces. See [`hash`] for the seed
//! derivation contract.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod hash;
pub mod model;
pub mod secded;
pub mod stats;

pub use model::{ArrayFaults, LineHealth, ReadOutcome, ScrubAction, WriteOutcome};
pub use stats::{FaultEvent, FaultEventKind, FaultStats, FaultSummary};

use serde::{Deserialize, Serialize};

/// Fault-injection configuration, embedded in the simulator's
/// `ChipConfig`. The default ([`FaultConfig::off`]) disables every model;
/// with all rates at zero the hooks are provably zero-cost (no draws, no
/// state, no event reordering).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Fault-seed salt, combined with the chip seed (see [`hash`]) so the
    /// fault universe can be resampled independently of the variation map
    /// and workload.
    pub seed: u64,
    /// Per-bit probability that one STT-RAM write attempt fails to
    /// switch. Scaled to a per-line failure probability internally.
    pub write_ber: f64,
    /// Retention-decay flip rate, per bit per cache tick. Real parts sit
    /// around 1e-18..1e-12 in these units; larger values model
    /// relaxed-retention arrays (ARC-style).
    pub retention_flip_rate: f64,
    /// Write-verify-retry budget: maximum *extra* attempts after the
    /// initial write. The controller never retries more than this.
    pub retry_budget: u32,
    /// SECDED ECC on cache lines: corrects single-bit flips, detects
    /// double-bit flips (treated as a miss + refetch).
    pub ecc: bool,
    /// Epoch-boundary scrubbing: walk resident lines, refresh retention
    /// age, rewrite ECC-correctable lines, drop detectably-dead ones.
    pub scrub: bool,
    /// Per-core transient fault probability per epoch at nominal speed;
    /// scaled by the core's variation-derived period multiplier so slow
    /// (high-Vth) cores fault more often.
    pub core_fault_rate: f64,
    /// A core whose fault counter reaches this threshold is
    /// decommissioned (powered off like a consolidation power-off and its
    /// virtual cores remapped).
    pub core_fault_threshold: u32,
    /// Force a fault on this global core index (cluster-major) every
    /// epoch — the seeded "bad core" of the graceful-degradation
    /// experiment.
    pub seeded_bad_core: Option<usize>,
}

impl FaultConfig {
    /// All models disabled: zero rates, no seeded bad core. This is the
    /// default embedded in every shipped configuration.
    pub fn off() -> Self {
        Self {
            seed: 0,
            write_ber: 0.0,
            retention_flip_rate: 0.0,
            retry_budget: 2,
            ecc: false,
            scrub: false,
            core_fault_rate: 0.0,
            core_fault_threshold: 3,
            seeded_bad_core: None,
        }
    }

    /// True when any fault model can fire.
    pub fn enabled(&self) -> bool {
        self.cell_faults_enabled() || self.core_faults_enabled()
    }

    /// True when the STT-RAM cell models (write failures / retention
    /// decay) can fire.
    pub fn cell_faults_enabled(&self) -> bool {
        self.write_ber > 0.0 || self.retention_flip_rate > 0.0
    }

    /// True when the transient-core-fault model can fire.
    pub fn core_faults_enabled(&self) -> bool {
        self.core_fault_rate > 0.0 || self.seeded_bad_core.is_some()
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_disabled() {
        let c = FaultConfig::off();
        assert!(!c.enabled());
        assert!(!c.cell_faults_enabled());
        assert!(!c.core_faults_enabled());
        assert_eq!(c, FaultConfig::default());
    }

    #[test]
    fn any_rate_enables() {
        let mut c = FaultConfig::off();
        c.write_ber = 1e-6;
        assert!(c.enabled() && c.cell_faults_enabled());
        let mut c = FaultConfig::off();
        c.retention_flip_rate = 1e-12;
        assert!(c.enabled() && c.cell_faults_enabled());
        let mut c = FaultConfig::off();
        c.core_fault_rate = 0.01;
        assert!(c.enabled() && c.core_faults_enabled());
        let mut c = FaultConfig::off();
        c.seeded_bad_core = Some(3);
        assert!(c.enabled() && c.core_faults_enabled());
    }

    #[test]
    fn config_roundtrips_through_json() {
        let mut c = FaultConfig::off();
        c.seed = 7;
        c.write_ber = 1e-5;
        c.ecc = true;
        c.seeded_bad_core = Some(2);
        let s = serde_json::to_string(&c).unwrap();
        let back: FaultConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(back, c);
    }
}
