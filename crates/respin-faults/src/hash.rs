//! Stateless seeded draws: splitmix64 finalisation over event
//! coordinates.
//!
//! ## Seed derivation contract
//!
//! Fault decisions must be reproducible (same seeds → bit-identical fault
//! traces), order-independent (the shared-L1 arbiter may reorder events
//! between epochs without perturbing unrelated draws) and free when
//! disabled (no RNG stream to advance). We therefore key every decision
//! on its *coordinates* instead of drawing from a stream:
//!
//! ```text
//! array key  = combine([chip_seed, fault_seed, DOMAIN, cluster_index])
//! write draw = unit_f64(combine([array_key, DOMAIN_WRITE, addr, tick, attempt]))
//! decay draw = unit_f64(combine([array_key, DOMAIN_RETENTION, addr, tick]))
//! core draw  = unit_f64(combine([core_key, DOMAIN_CORE, cluster, core, epoch]))
//! ```
//!
//! `chip_seed` is the simulator seed that also drives variation and
//! workloads; `fault_seed` is `FaultConfig::seed`, a salt that lets the
//! fault universe be resampled while holding everything else fixed.

/// Domain tag for STT-RAM write-attempt draws.
pub const DOMAIN_WRITE: u64 = 1;
/// Domain tag for retention-decay draws.
pub const DOMAIN_RETENTION: u64 = 2;
/// Domain tag for transient-core-fault draws.
pub const DOMAIN_CORE: u64 = 3;

/// splitmix64 finalizer: a strong 64-bit mixing permutation. Every output
/// bit depends on every input bit, which is what makes coordinate-keyed
/// draws statistically independent.
#[must_use]
pub fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds a coordinate vector into one key: `mix(mix(…mix(a)+b…)+c)`.
/// Order-sensitive by design (the domain tag position matters).
#[must_use]
pub fn combine(parts: &[u64]) -> u64 {
    let mut acc = 0u64;
    for &p in parts {
        acc = mix(acc.wrapping_add(p));
    }
    acc
}

/// Maps a hash to a uniform f64 in `[0, 1)` using the top 53 bits — the
/// standard `u64 → f64` uniform construction, exact in double precision.
#[must_use]
pub fn unit_f64(h: u64) -> f64 {
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
    (h >> 11) as f64 * SCALE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix(0), mix(0));
        assert_ne!(mix(0), mix(1));
        // Adjacent inputs should differ in many bits (avalanche sanity).
        let d = (mix(41) ^ mix(42)).count_ones();
        assert!(d > 16, "poor avalanche: {d} bits");
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(&[1, 2]), combine(&[2, 1]));
        assert_eq!(combine(&[1, 2, 3]), combine(&[1, 2, 3]));
    }

    #[test]
    fn unit_is_in_range_and_roughly_uniform() {
        let mut sum = 0.0;
        for i in 0..4096u64 {
            let u = unit_f64(mix(i));
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
