//! Per-array STT-RAM fault model: stochastic write failures with
//! write-verify-retry, retention-decay flips, SECDED-at-line-granularity
//! recovery, and epoch-boundary scrubbing.
//!
//! The model tracks *health* per resident line — when it was last
//! (re)written and how many uncorrected bit flips it carries — and makes
//! every stochastic decision through the stateless hash draws in
//! [`crate::hash`], so outcomes depend only on the event's coordinates
//! (key, address, tick, attempt), never on evaluation order.

use crate::hash::{combine, unit_f64, DOMAIN_RETENTION, DOMAIN_WRITE};
use crate::stats::{FaultEventKind, FaultStats};
use crate::FaultConfig;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Health of one resident cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineHealth {
    /// Tick of the last write / refresh — retention age is measured from
    /// here.
    pub written_tick: u64,
    /// Uncorrected bit flips currently in the line (saturates at small
    /// counts; ≥2 is already uncorrectable under SECDED).
    pub flips: u8,
}

/// Result of a write through the fault model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Extra attempts needed beyond the initial write (0 = first try
    /// stuck). Never exceeds the configured retry budget.
    pub retries: u32,
    /// True when the budget was exhausted and the line holds residual
    /// flips.
    pub exhausted: bool,
}

/// Result of a read through the fault model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Line healthy; serve normally.
    Clean,
    /// SECDED corrected a single-bit flip; the controller charges one
    /// rewrite's worth of energy.
    Corrected,
    /// SECDED detected an uncorrectable error; the controller must
    /// invalidate the line and refetch (treat as a miss).
    Refetch,
    /// A corrupted value was consumed undetected (no ECC).
    Escape,
}

/// What scrubbing decided for one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScrubAction {
    /// Line healthy (or flips invisible without ECC); retention age
    /// refreshed in place.
    Refreshed,
    /// Single-bit error corrected and the line rewritten — the controller
    /// charges one array write.
    Rewritten,
    /// Uncorrectable error: the controller must invalidate the line.
    Dropped {
        /// True when the line was dirty, i.e. modified data was lost.
        /// The loss is *detected* (SECDED flagged it), so it is recorded
        /// in the trace but not counted as a silent escape.
        dirty: bool,
    },
}

/// Fault state for one STT-RAM array (one shared L1 slice).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayFaults {
    cfg: FaultConfig,
    /// Array draw key: `combine([chip_seed, fault_seed, cluster])`.
    key: u64,
    /// Bits per cache line (geometry's block bytes × 8).
    line_bits: u32,
    /// Per-line write-attempt failure probability,
    /// `1 - (1-BER)^line_bits`.
    p_write_fail: f64,
    /// Health of resident lines, keyed by block address. BTreeMap for
    /// deterministic iteration order during scrubbing.
    health: BTreeMap<u64, LineHealth>,
    /// Counters and bounded event trace.
    pub stats: FaultStats,
}

impl ArrayFaults {
    /// Builds the fault state for one array. `chip_seed` is the simulator
    /// seed, `cluster` the array's cluster index, `line_bits` the line
    /// size in bits.
    pub fn new(cfg: FaultConfig, chip_seed: u64, cluster: usize, line_bits: u32) -> Self {
        let p_write_fail = if cfg.write_ber > 0.0 {
            1.0 - (1.0 - cfg.write_ber).powi(line_bits as i32)
        } else {
            0.0
        };
        Self {
            cfg,
            key: combine(&[chip_seed, cfg.seed, cluster as u64]),
            line_bits,
            p_write_fail,
            health: BTreeMap::new(),
            stats: FaultStats::default(),
        }
    }

    /// The configuration this array runs under.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// A write (store drain or fill) lands on `addr` at `tick`:
    /// write-verify-retry up to the budget, then give up and leave
    /// residual flips.
    pub fn on_write(&mut self, addr: u64, tick: u64) -> WriteOutcome {
        if self.p_write_fail <= 0.0 {
            // Fresh write always clears retention age; only track lines
            // once a cell-level model is active (retention needs ages).
            if self.cfg.retention_flip_rate > 0.0 {
                self.health.insert(
                    addr,
                    LineHealth {
                        written_tick: tick,
                        flips: 0,
                    },
                );
            }
            return WriteOutcome {
                retries: 0,
                exhausted: false,
            };
        }
        let mut attempt: u32 = 0;
        loop {
            let u = unit_f64(combine(&[
                self.key,
                DOMAIN_WRITE,
                addr,
                tick,
                u64::from(attempt),
            ]));
            if u >= self.p_write_fail {
                // This attempt verified.
                if attempt > 0 {
                    self.stats.record(
                        tick,
                        addr,
                        FaultEventKind::WriteRetried { retries: attempt },
                    );
                }
                self.health.insert(
                    addr,
                    LineHealth {
                        written_tick: tick,
                        flips: 0,
                    },
                );
                return WriteOutcome {
                    retries: attempt,
                    exhausted: false,
                };
            }
            self.stats.summary.write_faults += 1;
            if attempt >= self.cfg.retry_budget {
                // Budget exhausted: the line is left with one stuck bit,
                // or two when a second coordinate draw also fails —
                // models multi-cell write failure.
                let u2 = unit_f64(combine(&[
                    self.key,
                    DOMAIN_WRITE,
                    addr,
                    tick,
                    u64::from(attempt) + 1_000_000,
                ]));
                let flips = if u2 < self.p_write_fail { 2 } else { 1 };
                self.stats.summary.retry_exhausted += 1;
                self.stats
                    .record(tick, addr, FaultEventKind::RetryExhausted { flips });
                self.health.insert(
                    addr,
                    LineHealth {
                        written_tick: tick,
                        flips,
                    },
                );
                return WriteOutcome {
                    retries: attempt,
                    exhausted: true,
                };
            }
            attempt += 1;
            self.stats.summary.write_retries += 1;
        }
    }

    /// Applies retention decay to a line's health at `tick`. One draw
    /// against the Poisson tail probabilities for ≥1 and ≥2 new flips in
    /// the elapsed age; the age is then re-based so decay is sampled
    /// per-interval, never double-counted.
    fn apply_decay(&mut self, addr: u64, tick: u64) {
        let rate = self.cfg.retention_flip_rate;
        if rate <= 0.0 {
            return;
        }
        let entry = self.health.entry(addr).or_insert(LineHealth {
            written_tick: tick,
            flips: 0,
        });
        if tick <= entry.written_tick {
            return;
        }
        let age = (tick - entry.written_tick) as f64;
        let lambda = rate * f64::from(self.line_bits) * age;
        entry.written_tick = tick;
        if lambda <= 0.0 {
            return;
        }
        // P[N ≥ 1] = 1 − e^{−λ}; P[N ≥ 2] = 1 − e^{−λ}(1 + λ).
        let p_ge1 = -(-lambda).exp_m1();
        let p_ge2 = 1.0 - (-lambda).exp() * (1.0 + lambda);
        let u = unit_f64(combine(&[self.key, DOMAIN_RETENTION, addr, tick]));
        let added: u8 = if u < p_ge2 {
            2
        } else if u < p_ge1 {
            1
        } else {
            0
        };
        if added > 0 {
            let entry = self.health.entry(addr).or_insert(LineHealth {
                written_tick: tick,
                flips: 0,
            });
            entry.flips = entry.flips.saturating_add(added);
            self.stats.summary.retention_flips += u64::from(added);
            self.stats
                .record(tick, addr, FaultEventKind::RetentionFlip { flips: added });
        }
    }

    /// A read hits `addr` at `tick`: age the line, then run the ECC
    /// decision table over its accumulated flips.
    pub fn on_read(&mut self, addr: u64, tick: u64) -> ReadOutcome {
        if !self.cfg.cell_faults_enabled() {
            return ReadOutcome::Clean;
        }
        self.apply_decay(addr, tick);
        let flips = self.health.get(&addr).map_or(0, |h| h.flips);
        match (self.cfg.ecc, flips) {
            (_, 0) => ReadOutcome::Clean,
            (true, 1) => {
                if let Some(h) = self.health.get_mut(&addr) {
                    h.flips = 0;
                    h.written_tick = tick;
                }
                self.stats.summary.ecc_corrected += 1;
                self.stats.record(tick, addr, FaultEventKind::EccCorrected);
                ReadOutcome::Corrected
            }
            (true, _) => {
                self.health.remove(&addr);
                self.stats.summary.ecc_detected += 1;
                self.stats.record(tick, addr, FaultEventKind::EccDetected);
                ReadOutcome::Refetch
            }
            (false, _) => {
                // No ECC: the corrupted value is consumed. Count the
                // escape once, then clear the flip counter so one bad
                // line is not recounted on every subsequent read.
                if let Some(h) = self.health.get_mut(&addr) {
                    h.flips = 0;
                }
                self.stats.summary.uncorrected_escapes += 1;
                self.stats
                    .record(tick, addr, FaultEventKind::UncorrectedEscape);
                ReadOutcome::Escape
            }
        }
    }

    /// Scrubs one resident line at an epoch boundary. `dirty` is whether
    /// the array holds the line in a dirty state (a dropped dirty line
    /// is detected data loss — recorded in the trace, not counted as a
    /// silent escape).
    pub fn scrub_line(&mut self, addr: u64, dirty: bool, tick: u64) -> ScrubAction {
        self.apply_decay(addr, tick);
        self.stats.summary.scrubbed_lines += 1;
        let flips = self.health.get(&addr).map_or(0, |h| h.flips);
        if flips == 0 {
            return ScrubAction::Refreshed;
        }
        if !self.cfg.ecc {
            // Without ECC the scrubber cannot see flips; refresh only.
            return ScrubAction::Refreshed;
        }
        if flips == 1 {
            if let Some(h) = self.health.get_mut(&addr) {
                h.flips = 0;
                h.written_tick = tick;
            }
            self.stats.summary.ecc_corrected += 1;
            self.stats.summary.scrub_rewrites += 1;
            self.stats.record(tick, addr, FaultEventKind::ScrubRewrite);
            return ScrubAction::Rewritten;
        }
        self.health.remove(&addr);
        self.stats.summary.ecc_detected += 1;
        self.stats
            .record(tick, addr, FaultEventKind::ScrubDrop { dirty });
        ScrubAction::Dropped { dirty }
    }

    /// The line left the array (eviction / invalidation): forget its
    /// health.
    pub fn on_invalidate(&mut self, addr: u64) {
        self.health.remove(&addr);
    }

    /// Clears measured counters and the trace; line health (physical
    /// state) persists across measurement resets.
    pub fn reset_measurements(&mut self) {
        self.stats.reset();
    }

    /// Number of lines currently tracked (test hook).
    pub fn tracked_lines(&self) -> usize {
        self.health.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg(ber: f64, budget: u32) -> FaultConfig {
        let mut c = FaultConfig::off();
        c.write_ber = ber;
        c.retry_budget = budget;
        c.ecc = true;
        c
    }

    #[test]
    fn zero_ber_never_faults() {
        let mut a = ArrayFaults::new(FaultConfig::off(), 42, 0, 256);
        for addr in (0..4096u64).step_by(32) {
            let o = a.on_write(addr, addr);
            assert_eq!(
                o,
                WriteOutcome {
                    retries: 0,
                    exhausted: false
                }
            );
            assert_eq!(a.on_read(addr, addr + 100), ReadOutcome::Clean);
        }
        assert_eq!(a.stats.summary.total_injected(), 0);
        assert_eq!(a.tracked_lines(), 0);
    }

    #[test]
    fn writes_are_deterministic_in_coordinates() {
        let mut a = ArrayFaults::new(cfg(1e-3, 4), 7, 0, 256);
        let mut b = ArrayFaults::new(cfg(1e-3, 4), 7, 0, 256);
        for i in 0..2_000u64 {
            assert_eq!(a.on_write(i * 32, i), b.on_write(i * 32, i));
        }
        assert_eq!(a.stats, b.stats);
        // A different fault seed diverges.
        let mut c_cfg = cfg(1e-3, 4);
        c_cfg.seed = 99;
        let mut c = ArrayFaults::new(c_cfg, 7, 0, 256);
        for i in 0..2_000u64 {
            c.on_write(i * 32, i);
        }
        assert_ne!(a.stats.summary, c.stats.summary);
    }

    #[test]
    fn exhausted_write_leaves_flips_then_ecc_recovers() {
        // BER high enough that exhaustion happens quickly.
        let mut a = ArrayFaults::new(cfg(0.5, 1), 1, 0, 256);
        let mut exhausted_addr = None;
        for i in 0..512u64 {
            let o = a.on_write(i * 32, i);
            assert!(o.retries <= 1);
            if o.exhausted {
                exhausted_addr = Some(i * 32);
                break;
            }
        }
        let addr = exhausted_addr.expect("0.5 per-bit BER must exhaust a 1-retry budget fast");
        // The next read either corrects (1 flip) or refetches (2 flips).
        let r = a.on_read(addr, 10_000);
        assert!(matches!(r, ReadOutcome::Corrected | ReadOutcome::Refetch));
        assert_eq!(a.stats.summary.uncorrected_escapes, 0);
    }

    #[test]
    fn retention_decay_flips_and_scrub_repairs() {
        let mut c = FaultConfig::off();
        c.retention_flip_rate = 1e-4; // extreme, to force flips fast
        c.ecc = true;
        c.scrub = true;
        let mut a = ArrayFaults::new(c, 3, 0, 256);
        a.on_write(64, 0);
        // Age the line a long time, then read: decay must have fired.
        let r = a.on_read(64, 1_000_000);
        assert!(matches!(r, ReadOutcome::Corrected | ReadOutcome::Refetch));
        assert!(a.stats.summary.retention_flips > 0);
        // Scrubbing a clean line refreshes it.
        a.on_write(128, 1_000_000);
        assert_eq!(a.scrub_line(128, false, 1_000_001), ScrubAction::Refreshed);
        assert!(a.stats.summary.scrubbed_lines > 0);
    }

    #[test]
    fn without_ecc_corruption_escapes() {
        let mut c = FaultConfig::off();
        c.write_ber = 0.5;
        c.retry_budget = 1;
        c.ecc = false;
        let mut a = ArrayFaults::new(c, 11, 0, 256);
        for i in 0..512u64 {
            if a.on_write(i * 32, i).exhausted {
                assert_eq!(a.on_read(i * 32, i + 1), ReadOutcome::Escape);
                assert!(a.stats.summary.uncorrected_escapes > 0);
                return;
            }
        }
        panic!("expected an exhausted write at BER 0.5");
    }

    #[test]
    fn invalidate_forgets_health() {
        let mut c = cfg(0.5, 1);
        c.retention_flip_rate = 1e-9;
        let mut a = ArrayFaults::new(c, 5, 0, 256);
        a.on_write(96, 1);
        assert!(a.tracked_lines() > 0);
        a.on_invalidate(96);
        assert_eq!(a.tracked_lines(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Retry count never exceeds the configured budget, for arbitrary
        /// BER, budget, and write coordinates.
        fn retries_never_exceed_budget(
            ber_mill in 0u64..1000,
            budget in 1u32..8,
            writes in proptest::collection::vec((0u64..1u64 << 20, 0u64..1u64 << 24), 1..64),
        ) {
            let mut c = FaultConfig::off();
            c.write_ber = ber_mill as f64 / 1000.0;
            c.retry_budget = budget;
            let mut a = ArrayFaults::new(c, 17, 0, 256);
            for (addr, tick) in writes {
                let o = a.on_write(addr & !31, tick);
                prop_assert!(o.retries <= budget, "retries {} > budget {budget}", o.retries);
                if o.exhausted {
                    prop_assert!(o.retries == budget);
                }
            }
        }
    }
}
