//! Fault-event accounting: counters and a bounded event trace, merged up
//! through `respin-sim`'s `ChipStats`.

use serde::{Deserialize, Serialize};

/// Maximum events kept per trace. Sweeps with high BER generate millions
/// of events; the counters carry the aggregate, the trace carries the
/// first [`TRACE_CAP`] for debugging and determinism tests.
pub const TRACE_CAP: usize = 256;

/// Aggregate fault / recovery counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// STT-RAM write attempts that failed verification.
    pub write_faults: u64,
    /// Extra write attempts issued by write-verify-retry.
    pub write_retries: u64,
    /// Writes that exhausted the retry budget and left a corrupted line.
    pub retry_exhausted: u64,
    /// Bit flips accumulated from retention decay.
    pub retention_flips: u64,
    /// Single-bit errors corrected by SECDED.
    pub ecc_corrected: u64,
    /// Double-bit errors detected by SECDED (line dropped + refetched).
    pub ecc_detected: u64,
    /// Corrupted reads that escaped detection (no ECC, or >2 flips
    /// counted as an undetected pattern). Zero in any ECC+retry config
    /// the resilience smoke test accepts.
    pub uncorrected_escapes: u64,
    /// Lines visited by epoch-boundary scrubbing.
    pub scrubbed_lines: u64,
    /// Scrub visits that rewrote an ECC-corrected line.
    pub scrub_rewrites: u64,
    /// Transient core faults injected.
    pub core_faults: u64,
    /// Cores decommissioned after crossing the fault threshold.
    pub cores_decommissioned: u64,
    /// Extra dynamic energy spent on recovery (retries, ECC rewrites,
    /// scrub traffic), in pJ. Also folded into the cache dynamic energy
    /// so chip totals stay consistent.
    pub recovery_energy_pj: f64,
}

impl FaultSummary {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &FaultSummary) {
        self.write_faults += other.write_faults;
        self.write_retries += other.write_retries;
        self.retry_exhausted += other.retry_exhausted;
        self.retention_flips += other.retention_flips;
        self.ecc_corrected += other.ecc_corrected;
        self.ecc_detected += other.ecc_detected;
        self.uncorrected_escapes += other.uncorrected_escapes;
        self.scrubbed_lines += other.scrubbed_lines;
        self.scrub_rewrites += other.scrub_rewrites;
        self.core_faults += other.core_faults;
        self.cores_decommissioned += other.cores_decommissioned;
        self.recovery_energy_pj += other.recovery_energy_pj;
    }

    /// Total faults injected across all models — the resilience smoke
    /// test asserts this is nonzero.
    pub fn total_injected(&self) -> u64 {
        self.write_faults + self.retention_flips + self.core_faults
    }

    /// Counters accumulated since `earlier` was captured — `earlier`
    /// must be a previous snapshot of this same monotonically-growing
    /// summary (e.g. an epoch-start copy for per-epoch tracing).
    pub fn delta_since(&self, earlier: &FaultSummary) -> FaultSummary {
        FaultSummary {
            write_faults: self.write_faults - earlier.write_faults,
            write_retries: self.write_retries - earlier.write_retries,
            retry_exhausted: self.retry_exhausted - earlier.retry_exhausted,
            retention_flips: self.retention_flips - earlier.retention_flips,
            ecc_corrected: self.ecc_corrected - earlier.ecc_corrected,
            ecc_detected: self.ecc_detected - earlier.ecc_detected,
            uncorrected_escapes: self.uncorrected_escapes - earlier.uncorrected_escapes,
            scrubbed_lines: self.scrubbed_lines - earlier.scrubbed_lines,
            scrub_rewrites: self.scrub_rewrites - earlier.scrub_rewrites,
            core_faults: self.core_faults - earlier.core_faults,
            cores_decommissioned: self.cores_decommissioned - earlier.cores_decommissioned,
            recovery_energy_pj: self.recovery_energy_pj - earlier.recovery_energy_pj,
        }
    }

    /// True when every counter is zero (an all-quiet epoch).
    pub fn is_zero(&self) -> bool {
        *self == FaultSummary::default()
    }
}

/// What happened in one traced fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEventKind {
    /// A write needed `retries` extra attempts before sticking.
    WriteRetried {
        /// Extra attempts beyond the initial write.
        retries: u32,
    },
    /// A write exhausted its retry budget; the line is corrupted.
    RetryExhausted {
        /// Residual flips left in the line (1 or 2).
        flips: u8,
    },
    /// Retention decay flipped bits in a resident line.
    RetentionFlip {
        /// Flips added by this event (1 or 2).
        flips: u8,
    },
    /// SECDED corrected a single-bit error on read.
    EccCorrected,
    /// SECDED detected a double-bit error; line dropped and refetched.
    EccDetected,
    /// A corrupted value was consumed undetected.
    UncorrectedEscape,
    /// Scrubbing rewrote an ECC-corrected line.
    ScrubRewrite,
    /// Scrubbing dropped a detectably-dead line.
    ScrubDrop {
        /// True when the line was dirty (modified data lost).
        dirty: bool,
    },
    /// A transient core fault was injected.
    CoreFault {
        /// Cluster index.
        cluster: usize,
        /// Core index within the cluster.
        core: usize,
    },
    /// A core crossed the fault threshold and was decommissioned.
    CoreDecommissioned {
        /// Cluster index.
        cluster: usize,
        /// Core index within the cluster.
        core: usize,
    },
}

/// One traced fault event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Cache tick at which the event fired.
    pub tick: u64,
    /// Block address involved (0 for core-level events).
    pub addr: u64,
    /// Event payload.
    pub kind: FaultEventKind,
}

/// Counters plus the bounded event trace.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Aggregate counters.
    pub summary: FaultSummary,
    /// First [`TRACE_CAP`] events, in injection order.
    pub trace: Vec<FaultEvent>,
}

impl FaultStats {
    /// Appends an event, respecting the trace cap (counters in
    /// [`FaultSummary`] are updated by the callers and never capped).
    pub fn record(&mut self, tick: u64, addr: u64, kind: FaultEventKind) {
        if self.trace.len() < TRACE_CAP {
            self.trace.push(FaultEvent { tick, addr, kind });
        }
    }

    /// Accumulates counters and appends the other trace up to the cap.
    pub fn merge(&mut self, other: &FaultStats) {
        self.summary.merge(&other.summary);
        let room = TRACE_CAP.saturating_sub(self.trace.len());
        self.trace.extend(other.trace.iter().take(room).copied());
    }

    /// Clears measured counters and the trace. Persistent fault *state*
    /// (line health, core fault counters) lives elsewhere and survives.
    pub fn reset(&mut self) {
        self.summary = FaultSummary::default();
        self.trace.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_capped() {
        let mut s = FaultStats::default();
        for t in 0..2 * TRACE_CAP as u64 {
            s.record(t, 0, FaultEventKind::EccCorrected);
        }
        assert_eq!(s.trace.len(), TRACE_CAP);
        assert_eq!(s.trace[0].tick, 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = FaultStats::default();
        a.summary.write_faults = 2;
        a.record(1, 8, FaultEventKind::WriteRetried { retries: 1 });
        let mut b = FaultStats::default();
        b.summary.write_faults = 3;
        b.summary.core_faults = 1;
        b.record(
            5,
            0,
            FaultEventKind::CoreFault {
                cluster: 0,
                core: 2,
            },
        );
        a.merge(&b);
        assert_eq!(a.summary.write_faults, 5);
        assert_eq!(a.summary.total_injected(), 6);
        assert_eq!(a.trace.len(), 2);
    }

    #[test]
    fn delta_subtracts_snapshots() {
        let start = FaultSummary {
            write_faults: 2,
            ecc_corrected: 1,
            recovery_energy_pj: 10.0,
            ..FaultSummary::default()
        };
        let mut end = start;
        end.write_faults = 5;
        end.ecc_corrected = 4;
        end.scrubbed_lines = 7;
        end.recovery_energy_pj = 25.0;
        let d = end.delta_since(&start);
        assert_eq!(d.write_faults, 3);
        assert_eq!(d.ecc_corrected, 3);
        assert_eq!(d.scrubbed_lines, 7);
        assert!((d.recovery_energy_pj - 15.0).abs() < 1e-12);
        assert!(!d.is_zero());
        assert!(end.delta_since(&end).is_zero());
    }

    #[test]
    fn stats_roundtrip_through_json() {
        let mut s = FaultStats::default();
        s.summary.ecc_corrected = 4;
        s.record(9, 64, FaultEventKind::ScrubDrop { dirty: true });
        let j = serde_json::to_string(&s).unwrap();
        let back: FaultStats = serde_json::from_str(&j).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn reset_clears() {
        let mut s = FaultStats::default();
        s.summary.retention_flips = 7;
        s.record(0, 0, FaultEventKind::EccDetected);
        s.reset();
        assert_eq!(s, FaultStats::default());
    }
}
