//! SECDED ECC: Hamming(72,64) — single-error-correct,
//! double-error-detect.
//!
//! The classic extended Hamming layout over a 72-bit codeword (held in a
//! `u128`): bit 0 is the overall parity bit, bits 1, 2, 4, 8, 16, 32, 64
//! are the Hamming parity bits, and the 64 data bits fill the remaining
//! positions `1..=71` in ascending order. A 64-byte cache line carries
//! eight such words; the simulator models ECC at line granularity (flip
//! counters per line), but this module is the real code so the property
//! tests can prove the correct/detect guarantees rather than assume them.

/// Outcome of decoding a possibly-corrupted codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// No error detected; payload returned.
    Clean(u64),
    /// Exactly one bit was flipped (data, parity, or overall bit) and has
    /// been corrected; payload returned.
    Corrected(u64),
    /// An uncorrectable double-bit error was detected. The caller must
    /// treat the line as lost (miss + refetch).
    DoubleError,
}

/// Positions `1..=71` that are not powers of two hold data bits.
fn is_data_position(pos: u32) -> bool {
    pos != 0 && !pos.is_power_of_two()
}

/// Encodes 64 data bits into a 72-bit SECDED codeword.
#[must_use]
pub fn encode(data: u64) -> u128 {
    let mut word: u128 = 0;
    // Scatter data bits into non-power-of-two positions.
    let mut bit = 0u32;
    for pos in 1..72u32 {
        if is_data_position(pos) {
            if (data >> bit) & 1 == 1 {
                word |= 1u128 << pos;
            }
            bit += 1;
        }
    }
    // Hamming parity bits: parity bit at position p covers every position
    // whose index has bit p set.
    for p in [1u32, 2, 4, 8, 16, 32, 64] {
        let mut parity = 0u32;
        for pos in 1..72u32 {
            if pos & p != 0 && (word >> pos) & 1 == 1 {
                parity ^= 1;
            }
        }
        if parity == 1 {
            word |= 1u128 << p;
        }
    }
    // Overall parity (bit 0) makes the whole 72-bit word even-parity.
    if (word.count_ones() & 1) == 1 {
        word |= 1;
    }
    word
}

/// Extracts the 64 data bits from a codeword (no checking).
fn extract(word: u128) -> u64 {
    let mut data = 0u64;
    let mut bit = 0u32;
    for pos in 1..72u32 {
        if is_data_position(pos) {
            if (word >> pos) & 1 == 1 {
                data |= 1u64 << bit;
            }
            bit += 1;
        }
    }
    data
}

/// Decodes a codeword, correcting single-bit flips and flagging
/// double-bit flips.
#[must_use]
pub fn decode(word: u128) -> Decoded {
    // Syndrome: XOR of the positions of all set bits under the Hamming
    // parity equations.
    let mut syndrome = 0u32;
    for pos in 1..72u32 {
        if (word >> pos) & 1 == 1 {
            syndrome ^= pos;
        }
    }
    let overall_odd = (word.count_ones() & 1) == 1;
    match (syndrome, overall_odd) {
        (0, false) => Decoded::Clean(extract(word)),
        // Overall parity trips, syndrome points at the flipped bit (or at
        // bit 0 itself when syndrome is 0): single error, correctable.
        (s, true) => {
            let fixed = word ^ (1u128 << s);
            Decoded::Corrected(extract(fixed))
        }
        // Syndrome nonzero but overall parity even: two flips cancelled
        // in the overall bit — detectable, not correctable.
        (_, false) => Decoded::DoubleError,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clean_roundtrip() {
        for data in [0u64, 1, u64::MAX, 0xDEAD_BEEF_0BAD_F00D] {
            assert_eq!(decode(encode(data)), Decoded::Clean(data));
        }
    }

    #[test]
    fn every_single_flip_corrected_exhaustive() {
        let data = 0xA5A5_5A5A_C3C3_3C3C;
        let word = encode(data);
        for pos in 0..72u32 {
            assert_eq!(
                decode(word ^ (1u128 << pos)),
                Decoded::Corrected(data),
                "flip at {pos}"
            );
        }
    }

    #[test]
    fn every_double_flip_detected_exhaustive() {
        let data = 0x0123_4567_89AB_CDEF;
        let word = encode(data);
        for a in 0..72u32 {
            for b in (a + 1)..72u32 {
                assert_eq!(
                    decode(word ^ (1u128 << a) ^ (1u128 << b)),
                    Decoded::DoubleError,
                    "flips at {a},{b}"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        fn roundtrip_any_payload(data in 0u64..u64::MAX) {
            prop_assert_eq!(decode(encode(data)), Decoded::Clean(data));
        }

        fn single_flip_corrected(data in 0u64..u64::MAX, pos in 0u32..72) {
            let word = encode(data) ^ (1u128 << pos);
            prop_assert_eq!(decode(word), Decoded::Corrected(data));
        }

        fn double_flip_detected(data in 0u64..u64::MAX, a in 0u32..72, delta in 1u32..71) {
            let b = (a + delta) % 72;
            let word = encode(data) ^ (1u128 << a) ^ (1u128 << b);
            prop_assert_eq!(decode(word), Decoded::DoubleError);
        }
    }
}
