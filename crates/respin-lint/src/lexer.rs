//! A small, total Rust lexer.
//!
//! The rule engine in [`crate::rules`] needs exactly one guarantee from
//! this module: **token-level truth**. `HashMap` inside a doc comment, a
//! string literal, or a raw string must never look like the identifier
//! `HashMap`. A full parser is not required — every determinism rule is
//! expressible over a flat token stream — but comment/string skipping
//! must be exact, including nested block comments and raw strings with
//! arbitrary `#` fences, or the linter would both miss real hazards and
//! invent false ones.
//!
//! Totality contract (proptest-enforced): [`lex`] never panics on any
//! input, always consumes the entire input (token texts concatenate back
//! to the source), and always terminates. Unterminated literals and
//! comments lex as a single token running to end of input — garbage in,
//! classified garbage out, never a crash.

/// What a lexeme is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `fn`, `r#async`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Character or byte literal (`'x'`, `b'\n'`).
    CharLit,
    /// String or byte-string literal with escapes (`"…"`, `b"…"`).
    StrLit,
    /// Raw (byte/C) string literal (`r"…"`, `br##"…"##`, `cr"…"`).
    RawStrLit,
    /// `// …` (including doc `///` and `//!`), newline excluded.
    LineComment,
    /// `/* … */`, nesting respected.
    BlockComment,
    /// Numeric literal (coarse: digits plus trailing alphanumerics).
    Number,
    /// One punctuation character (`:`, `{`, `#`, …).
    Punct,
    /// Horizontal/vertical whitespace run.
    Whitespace,
    /// Anything else (stray non-ASCII punctuation, control bytes).
    Unknown,
}

/// One lexeme: classification, source text, and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// Classification of this lexeme.
    pub kind: TokenKind,
    /// The exact source slice (concatenating all tokens re-forms the input).
    pub text: &'a str,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Token<'_> {
    /// True for tokens the rule matcher should look at (not whitespace,
    /// not comments — comments are handled separately as waiver carriers).
    pub fn is_significant(&self) -> bool {
        !matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

/// Lexes `src` completely. Total: never panics, covers every byte.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer {
        src,
        pos: 0,
        line: 1,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let start = self.pos;
            let start_line = self.line;
            let kind = self.next_kind();
            // Totality backstop: every branch of next_kind advances, but
            // if one ever regressed, skip one char rather than loop.
            if self.pos <= start {
                self.bump();
            }
            out.push(Token {
                kind,
                text: &self.src[start..self.pos],
                line: start_line,
            });
        }
        out
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn peek2(&self) -> Option<char> {
        self.rest().chars().nth(1)
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if pred(c) {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn next_kind(&mut self) -> TokenKind {
        let Some(c) = self.peek() else {
            return TokenKind::Unknown;
        };
        if c.is_whitespace() {
            self.eat_while(char::is_whitespace);
            return TokenKind::Whitespace;
        }
        if c == '/' {
            match self.peek2() {
                Some('/') => return self.line_comment(),
                Some('*') => return self.block_comment(),
                _ => {
                    self.bump();
                    return TokenKind::Punct;
                }
            }
        }
        // Raw/byte string prefixes are identifier characters, so they must
        // be recognised before the generic identifier path: r"", r#""#,
        // br"", b"", c"", cr#""#, and the raw identifier r#ident.
        if matches!(c, 'r' | 'b' | 'c') {
            if let Some(kind) = self.try_prefixed_literal() {
                return kind;
            }
        }
        if c == '_' || c.is_alphabetic() {
            self.eat_while(|c| c == '_' || c.is_alphanumeric());
            return TokenKind::Ident;
        }
        if c.is_ascii_digit() {
            // Coarse: swallows suffixes and hex/float bodies. Rules never
            // inspect numbers; only the boundary matters.
            self.eat_while(|c| c == '_' || c == '.' || c.is_alphanumeric());
            return TokenKind::Number;
        }
        if c == '\'' {
            return self.quote();
        }
        if c == '"' {
            self.bump();
            return self.cooked_string_tail();
        }
        self.bump();
        if c.is_ascii() {
            TokenKind::Punct
        } else {
            TokenKind::Unknown
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        self.eat_while(|c| c != '\n');
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(), self.peek2()) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                // Unterminated: the comment runs to end of input.
                (None, _) => break,
            }
        }
        TokenKind::BlockComment
    }

    /// `r` / `b` / `c` at `pos`: raw string, byte string/char, C string,
    /// or raw identifier. Returns `None` when it is a plain identifier.
    fn try_prefixed_literal(&mut self) -> Option<TokenKind> {
        let rest = self.rest();
        let bytes = rest.as_bytes();
        // Longest prefix of [rbc] that a literal can start with is 2
        // (br, cr, rb is not a thing but scanning is harmless: only the
        // exact sets below are accepted).
        let prefixes: [&str; 5] = ["br", "cr", "r", "b", "c"];
        for p in prefixes {
            if !rest.starts_with(p) {
                continue;
            }
            // Raw-capable prefixes accept a `#` fence; `b`/`c` alone only
            // open cooked literals.
            let raw_capable = p != "b" && p != "c";
            let i = p.len();
            if raw_capable {
                // Count the `#` fence.
                let mut hashes = 0usize;
                while bytes.get(i + hashes) == Some(&b'#') {
                    hashes += 1;
                }
                if bytes.get(i + hashes) == Some(&b'"') {
                    self.advance_n(i + hashes + 1);
                    self.raw_string_tail(hashes);
                    return Some(TokenKind::RawStrLit);
                }
                if p == "r" && hashes >= 1 && bytes.get(i + hashes).is_some_and(|b| *b != b'"') {
                    // Raw identifier `r#async`: lex as one identifier.
                    self.advance_n(i + hashes);
                    self.eat_while(|c| c == '_' || c.is_alphanumeric());
                    return Some(TokenKind::Ident);
                }
            }
            if bytes.get(i) == Some(&b'"') {
                self.advance_n(i + 1);
                return Some(self.cooked_string_tail());
            }
            if p == "b" && bytes.get(i) == Some(&b'\'') {
                self.advance_n(i + 1);
                self.char_tail();
                return Some(TokenKind::CharLit);
            }
            // `p` matched textually but no literal follows (e.g. the
            // identifier `break` against prefix `br`): keep trying the
            // shorter prefixes, then fall back to identifier lexing.
        }
        None
    }

    fn advance_n(&mut self, n: usize) {
        let target = self.pos + n;
        while self.pos < target && self.bump().is_some() {}
    }

    /// Body of a raw string after the opening quote: ends at `"` followed
    /// by `hashes` `#`s. Unterminated: runs to end of input.
    fn raw_string_tail(&mut self, hashes: usize) {
        while let Some(c) = self.bump() {
            if c == '"' {
                let rest = self.rest();
                if rest.len() >= hashes && rest.as_bytes()[..hashes].iter().all(|b| *b == b'#') {
                    self.advance_n(hashes);
                    return;
                }
            }
        }
    }

    /// Body of a cooked string after the opening quote, honouring `\"`.
    fn cooked_string_tail(&mut self) -> TokenKind {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        TokenKind::StrLit
    }

    /// A bare `'`: lifetime, char literal, or stray quote.
    fn quote(&mut self) -> TokenKind {
        let bytes = self.rest().as_bytes();
        // Lifetime: 'ident NOT followed by a closing quote ('a' is a char).
        if let Some(c1) = self.rest().chars().nth(1) {
            if c1 == '_' || c1.is_alphabetic() {
                // Find where the identifier run ends.
                let ident_len: usize = self
                    .rest()
                    .chars()
                    .skip(1)
                    .take_while(|c| *c == '_' || c.is_alphanumeric())
                    .map(char::len_utf8)
                    .sum();
                let after = 1 + ident_len;
                if bytes.get(after) != Some(&b'\'') {
                    self.advance_n(after);
                    return TokenKind::Lifetime;
                }
            }
        }
        self.bump(); // opening '
        self.char_tail();
        TokenKind::CharLit
    }

    /// Body of a char/byte literal after the opening quote. Bounded: a
    /// char literal cannot span a newline, so an unclosed quote ends at
    /// the line end instead of swallowing the rest of the file.
    fn char_tail(&mut self) {
        let mut first = true;
        while let Some(c) = self.peek() {
            match c {
                '\\' => {
                    self.bump();
                    self.bump();
                }
                '\'' => {
                    self.bump();
                    return;
                }
                '\n' => return,
                _ => {
                    // A char literal holds one scalar (plus escapes); if
                    // more text follows before any quote this was a stray
                    // apostrophe — stop after the first char so the rest
                    // of the line still lexes normally.
                    self.bump();
                    if !first {
                        return;
                    }
                    first = false;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            kinds("use std::collections::HashMap;"),
            vec![
                (TokenKind::Ident, "use"),
                (TokenKind::Ident, "std"),
                (TokenKind::Punct, ":"),
                (TokenKind::Punct, ":"),
                (TokenKind::Ident, "collections"),
                (TokenKind::Punct, ":"),
                (TokenKind::Punct, ":"),
                (TokenKind::Ident, "HashMap"),
                (TokenKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn comments_hide_identifiers() {
        let toks = kinds("// HashMap here\nlet x = 1; /* HashSet /* nested */ still */");
        assert!(toks
            .iter()
            .all(|(k, t)| !(*k == TokenKind::Ident && (*t == "HashMap" || *t == "HashSet"))));
        assert_eq!(toks[0].0, TokenKind::LineComment);
        assert_eq!(toks.last().expect("tokens").0, TokenKind::BlockComment);
    }

    #[test]
    fn strings_hide_identifiers() {
        for src in [
            r#"let s = "HashMap";"#,
            r##"let s = r#"HashMap"#;"##,
            r#"let s = r"HashMap";"#,
            r#"let s = b"HashMap";"#,
            r##"let s = br#"HashMap"#;"##,
            r#"let s = "escaped \" HashMap";"#,
        ] {
            let toks = kinds(src);
            assert!(
                toks.iter()
                    .all(|(k, t)| !(*k == TokenKind::Ident && *t == "HashMap")),
                "{src}: {toks:?}"
            );
        }
    }

    #[test]
    fn raw_string_fences_must_match() {
        // The inner "# does not close a ##-fenced raw string.
        let src = r###"r##"contains "# inside"## after"###;
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::RawStrLit);
        assert_eq!(toks[1], (TokenKind::Ident, "after"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(toks.contains(&(TokenKind::Lifetime, "'a")));
        assert!(toks.contains(&(TokenKind::CharLit, "'x'")));
        assert!(toks.contains(&(TokenKind::CharLit, "'\\n'")));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokenKind::Ident, "r#type")));
    }

    #[test]
    fn byte_char_literal() {
        let toks = kinds("let b = b'\\n'; let c = b'x';");
        assert!(toks.contains(&(TokenKind::CharLit, "b'\\n'")));
        assert!(toks.contains(&(TokenKind::CharLit, "b'x'")));
    }

    #[test]
    fn line_numbers_are_one_based_and_advance() {
        let toks = lex("a\nb\r\nc");
        let lines: Vec<(String, u32)> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.text.to_string(), t.line))
            .collect();
        assert_eq!(
            lines,
            vec![("a".into(), 1), ("b".into(), 2), ("c".into(), 3)]
        );
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        for src in [
            "\"unterminated",
            "r#\"unterminated",
            "/* unterminated /* nested",
            "'",
            "b'",
            "r#",
            "let s = \"a\\",
        ] {
            let toks = lex(src);
            let total: usize = toks.iter().map(|t| t.text.len()).sum();
            assert_eq!(total, src.len(), "lost bytes on {src:?}");
        }
    }

    #[test]
    fn coverage_is_exact() {
        let src = "fn main() { println!(\"hi {}\", 1_000.5e3); } // done";
        let toks = lex(src);
        let rebuilt: String = toks.iter().map(|t| t.text).collect();
        assert_eq!(rebuilt, src);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Fragments biased toward lexer edge cases: quotes, fences,
    /// comment openers, prefixes, escapes.
    const FRAGMENTS: &[&str] = &[
        "r", "b", "c", "br", "cr", "#", "\"", "'", "\\", "//", "/*", "*/", "\n", " ", "ident",
        "HashMap", "Ordering", "::", "r#\"", "\"#", "b'", "'a", "0x1f", "1.0e-3", "{", "}", "é",
        "∀", "\t",
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Total on arbitrary bytes (lossy-decoded): never panics, never
        /// drops or duplicates a byte.
        #[test]
        fn lex_is_total_on_arbitrary_bytes(
            bytes in proptest::collection::vec(0u8..=255, 0..512),
        ) {
            let src = String::from_utf8_lossy(&bytes);
            let toks = lex(&src);
            let total: usize = toks.iter().map(|t| t.text.len()).sum();
            prop_assert_eq!(total, src.len());
            let rebuilt: String = toks.iter().map(|t| t.text).collect();
            prop_assert_eq!(rebuilt, src);
        }

        /// Total on adversarial near-Rust soup assembled from the exact
        /// fragments the lexer special-cases.
        #[test]
        fn lex_is_total_on_fragment_soup(
            picks in proptest::collection::vec(0usize..29, 0..64),
        ) {
            let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
            let toks = lex(&src);
            let total: usize = toks.iter().map(|t| t.text.len()).sum();
            prop_assert_eq!(total, src.len());
            // Every token must be classified (spot the enum is exhaustive
            // in practice: no token text is empty).
            prop_assert!(toks.iter().all(|t| !t.text.is_empty()));
        }
    }
}
