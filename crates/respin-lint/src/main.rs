//! CLI front-end for the workspace determinism linter.
//!
//! ```text
//! respin-lint [--json] [--root DIR]                 lint the workspace
//! respin-lint --file PATH --crate NAME [--lib]      lint one file (fixtures)
//! respin-lint --list                                print the rule catalogue
//! ```
//!
//! Exit code 0 only when no error-severity violation was found, so the
//! binary doubles as the CI gate (`scripts/verify.sh`,
//! `.github/workflows/ci.yml`). `--json` emits the same
//! `respin_power::diag::Report` JSON shape `respin-verify --json` uses,
//! wrapped with a schema tag and summary counts for the CI artifact.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use respin_lint::{default_root, lint_file, lint_workspace, rules};
use respin_power::diag::Report;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    json: bool,
    list: bool,
    root: Option<PathBuf>,
    file: Option<PathBuf>,
    crate_name: Option<String>,
    lib: bool,
}

fn usage() -> &'static str {
    "usage: respin-lint [--json] [--root DIR] \
     [--file PATH --crate NAME [--lib]] [--list]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        list: false,
        root: None,
        file: None,
        crate_name: None,
        lib: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => args.json = true,
            "--list" => args.list = true,
            "--lib" => args.lib = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                args.root = Some(PathBuf::from(v));
            }
            "--file" => {
                let v = it.next().ok_or("--file needs a path")?;
                args.file = Some(PathBuf::from(v));
            }
            "--crate" => {
                let v = it.next().ok_or("--crate needs a crate name")?;
                args.crate_name = Some(v);
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

/// Renders the report: human lines on stderr-free stdout, or the JSON
/// artifact shape (`respin-lint-report/v1`).
fn emit(report: &Report, files: usize, json: bool) {
    if json {
        let violations =
            serde_json::to_string(report).unwrap_or_else(|_| "{\"violations\":[]}".to_string());
        // Hand-assembled envelope: schema + counts around the serialised
        // Report, so CI artifacts are self-describing.
        println!(
            "{{\n  \"schema\": \"respin-lint-report/v1\",\n  \"files_checked\": {files},\n  \
             \"errors\": {},\n  \"warnings\": {},\n  \"report\": {violations}\n}}",
            report.error_count(),
            report.warning_count()
        );
    } else {
        if !report.violations.is_empty() {
            println!("{report}");
        }
        println!(
            "respin-lint: {files} file(s) checked, {} error(s), {} warning(s)",
            report.error_count(),
            report.warning_count()
        );
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    if args.list {
        println!("respin-lint rule catalogue:");
        for id in rules::RULE_IDS {
            println!("  {id}  {}", rules::rule_summary(id));
        }
        println!(
            "waiver grammar: // respin-lint: allow(D00x[, D00y], reason=\"…\") — \
             same line, or alone on the line above"
        );
        return ExitCode::SUCCESS;
    }

    let (report, files) = match &args.file {
        Some(path) => {
            let Some(crate_name) = &args.crate_name else {
                eprintln!("--file requires --crate NAME (rule applicability is per-crate)");
                return ExitCode::from(2);
            };
            (lint_file(path, crate_name, args.lib), 1)
        }
        None => {
            let root = args.root.clone().unwrap_or_else(default_root);
            if !root.join("crates").is_dir() {
                eprintln!(
                    "no crates/ directory under {} — wrong --root?",
                    root.display()
                );
                return ExitCode::from(2);
            }
            lint_workspace(&root)
        }
    };

    emit(&report, files, args.json);
    ExitCode::from(u8::try_from(report.exit_code()).unwrap_or(1))
}
