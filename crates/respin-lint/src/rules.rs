//! The determinism rule engine.
//!
//! Rules run over the token stream produced by [`crate::lexer`] — never
//! over raw text — so occurrences inside comments, strings, and raw
//! strings are invisible by construction. Code under `#[cfg(test)]` is
//! excluded: tests do not produce shipped results, and their own
//! determinism is enforced dynamically by the test suite itself.
//!
//! ## Rule catalogue
//!
//! | id | hazard | where it applies |
//! |---|---|---|
//! | D001 | `HashMap`/`HashSet`: iteration order is randomised per process, so any traversal that reaches results, reports, or traces breaks the byte-identity contract. The sanctioned replacements are `BTreeMap`/`BTreeSet` — or the dense index-keyed tables of `respin-sim`'s hot path (`Vec`s indexed by core/cluster/barrier id, open-addressed maps over fixed keys), which are deterministic because their probe order is a pure function of the keys **and** every result/serialisation boundary re-emits them in canonical sorted order (DESIGN.md §18) | result-bearing crates (`respin-sim`, `respin-core`, `respin-faults`, `respin-trace`, `respin-serve`) |
//! | D002 | `Instant::now`/`SystemTime`: wall-clock reads leaking into simulation state make results machine- and load-dependent | everywhere except `respin-bench` (its whole purpose is timing) |
//! | D003 | `Ordering::Relaxed`: a relaxed atomic load may observe stale values, so any such value flowing into results is schedule-dependent | everywhere (the `respin-pool` claim/abort atomics carry the canonical documented waivers) |
//! | D004 | `thread::current`: thread identity is scheduler-assigned; branching on it (or logging it into artifacts) is nondeterministic | everywhere except `respin-pool` |
//! | D005 | missing `#![deny(missing_docs)]`: undocumented public surface; every crate must carry the attribute in its `lib.rs` | each crate root |
//! | D006 | bare `fs::write`/`File::create`: a crash mid-write leaves a torn artifact; result-bearing writes must go through `respin_core::persist::atomic_write` (tmp + fsync + rename) | result-bearing crates plus `respin-bench` (its report is an artifact too) |
//!
//! ## Waivers
//!
//! Every exception is explicit, greppable, and justified:
//!
//! ```text
//! // respin-lint: allow(D003, reason="claim index never reaches results")
//! ```
//!
//! A waiver comment suppresses the named rule(s) on its own line, or —
//! when the comment stands alone on a line — on the next code line. A
//! waiver without a non-empty reason, or naming an unknown rule, is
//! itself a violation (D000); a waiver that suppresses nothing is
//! reported as a warning so stale exceptions get cleaned up.

use crate::lexer::{lex, Token, TokenKind};
use respin_power::diag::Violation;

/// Crates whose outputs are (or feed) shipped results, reports, or trace
/// exports: the crates where unordered iteration is a contract hazard.
pub const RESULT_BEARING: &[&str] = &[
    "respin-sim",
    "respin-core",
    "respin-faults",
    "respin-trace",
    "respin-serve",
];

/// The one crate whose job is wall-clock measurement.
pub const TIMING_CRATE: &str = "respin-bench";

/// The one crate allowed to look at thread identity (it schedules).
pub const POOL_CRATE: &str = "respin-pool";

/// All known rule ids, in catalogue order.
pub const RULE_IDS: &[&str] = &["D001", "D002", "D003", "D004", "D005", "D006"];

/// One-line description per rule, for `--list` and reports.
pub fn rule_summary(id: &str) -> &'static str {
    match id {
        "D001" => "HashMap/HashSet in a result-bearing crate: iteration order is nondeterministic",
        "D002" => "Instant::now/SystemTime outside respin-bench: wall clock leaking toward results",
        "D003" => "Ordering::Relaxed load: value may be schedule-dependent if it reaches results",
        "D004" => "thread::current outside respin-pool: thread identity is scheduler-assigned",
        "D005" => "crate root missing #![deny(missing_docs)]",
        "D006" => {
            "bare fs::write/File::create in a result-bearing crate: crash can tear the artifact"
        }
        _ => "unknown rule",
    }
}

/// What the linter needs to know about the file being checked.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// The owning crate's package name (e.g. `respin-sim`).
    pub crate_name: String,
    /// Display path used in violation locations.
    pub path: String,
    /// True for the crate root (`src/lib.rs`): enables D005.
    pub is_lib_root: bool,
}

/// A parsed `// respin-lint: allow(...)` comment.
#[derive(Debug)]
struct Waiver {
    rules: Vec<String>,
    /// Line the waiver suppresses findings on.
    target_line: u32,
    /// Line the waiver comment itself sits on (for diagnostics).
    comment_line: u32,
    used: bool,
}

/// Lints one source file. Pure: the only inputs are the source text and
/// the file context, so results are reproducible by construction.
pub fn lint_source(src: &str, cx: &FileContext) -> Vec<Violation> {
    let tokens = lex(src);
    let sig: Vec<&Token<'_>> = tokens.iter().filter(|t| t.is_significant()).collect();
    let in_test = test_code_mask(&sig);

    let mut violations = Vec::new();
    let mut waivers = collect_waivers(&tokens, cx, &mut violations);

    let mut pending: Vec<(String, u32, String)> = Vec::new();
    scan_sequences(&sig, &in_test, cx, &mut pending);
    if cx.is_lib_root && !has_deny_missing_docs(&sig) {
        pending.push((
            "D005".to_string(),
            1,
            format!(
                "crate `{}` root does not carry #![deny(missing_docs)]",
                cx.crate_name
            ),
        ));
    }

    for (rule, line, message) in pending {
        if let Some(w) = waivers
            .iter_mut()
            .find(|w| w.target_line == line && w.rules.iter().any(|r| r == &rule))
        {
            w.used = true;
            continue;
        }
        violations.push(Violation::error(
            rule.clone(),
            rule_summary(&rule),
            format!("{}:{line}", cx.path),
            message,
        ));
    }

    for w in &waivers {
        if !w.used {
            violations.push(Violation::warning(
                "D000",
                "waivers suppress a real finding",
                format!("{}:{}", cx.path, w.comment_line),
                format!(
                    "waiver for {} suppresses nothing on line {} — remove it or move it \
                     next to the finding",
                    w.rules.join("/"),
                    w.target_line
                ),
            ));
        }
    }

    // Deterministic output order regardless of discovery order.
    violations.sort_by(|a, b| (&a.location, &a.code).cmp(&(&b.location, &b.code)));
    violations
}

/// Token-sequence patterns per rule. `::` is two `:` puncts at the token
/// level, so `Instant::now` is four tokens.
fn scan_sequences(
    sig: &[&Token<'_>],
    in_test: &[bool],
    cx: &FileContext,
    out: &mut Vec<(String, u32, String)>,
) {
    struct Pattern {
        rule: &'static str,
        seq: &'static [&'static str],
        message: &'static str,
    }
    let result_bearing = RESULT_BEARING.contains(&cx.crate_name.as_str());
    let patterns = [
        Pattern {
            rule: "D001",
            seq: &["HashMap"],
            message: "HashMap iteration order is nondeterministic; use BTreeMap, or a \
                      dense index-keyed table that sorts into canonical order at every \
                      result boundary (DESIGN.md \u{a7}18)",
        },
        Pattern {
            rule: "D001",
            seq: &["HashSet"],
            message: "HashSet iteration order is nondeterministic; use BTreeSet, or a \
                      dense index-keyed table that sorts into canonical order at every \
                      result boundary (DESIGN.md \u{a7}18)",
        },
        Pattern {
            rule: "D002",
            seq: &["Instant", ":", ":", "now"],
            message: "wall-clock read: simulation state and artifacts must be a pure \
                      function of RunOptions, never of real time",
        },
        Pattern {
            rule: "D002",
            seq: &["SystemTime"],
            message: "wall-clock type: simulation state and artifacts must be a pure \
                      function of RunOptions, never of real time",
        },
        Pattern {
            rule: "D003",
            seq: &["Ordering", ":", ":", "Relaxed"],
            message: "relaxed atomic access: document why the value can never reach \
                      results (see respin-pool's claim/abort exemplars) or strengthen \
                      the ordering",
        },
        Pattern {
            rule: "D004",
            seq: &["thread", ":", ":", "current"],
            message: "thread identity is scheduler-assigned and must never influence \
                      results or artifacts outside the pool itself",
        },
        Pattern {
            rule: "D006",
            seq: &["fs", ":", ":", "write"],
            message: "non-atomic artifact write: a crash mid-write leaves a torn file; \
                      route it through respin_core::persist::atomic_write",
        },
        Pattern {
            rule: "D006",
            seq: &["File", ":", ":", "create"],
            message: "non-atomic file creation: a crash mid-write leaves a torn file; \
                      route it through respin_core::persist::atomic_write",
        },
    ];

    for p in &patterns {
        let applies = match p.rule {
            "D001" => result_bearing,
            "D002" => cx.crate_name != TIMING_CRATE,
            "D004" => cx.crate_name != POOL_CRATE,
            // The bench crate's BENCH_*.json is a shipped artifact too.
            "D006" => result_bearing || cx.crate_name == TIMING_CRATE,
            _ => true,
        };
        if !applies {
            continue;
        }
        let mut i = 0usize;
        while i + p.seq.len() <= sig.len() {
            if in_test[i] {
                i += 1;
                continue;
            }
            let matched = p
                .seq
                .iter()
                .enumerate()
                .all(|(j, want)| sig[i + j].text == *want);
            if matched {
                out.push((p.rule.to_string(), sig[i].line, p.message.to_string()));
                i += p.seq.len();
            } else {
                i += 1;
            }
        }
    }
}

/// Marks significant-token indices inside `#[cfg(test)]` items. The item
/// body is taken as the next balanced `{…}` block (covering `mod tests {}`
/// and annotated functions); a `;` before any `{` ends the item instead.
fn test_code_mask(sig: &[&Token<'_>]) -> Vec<bool> {
    let mut mask = vec![false; sig.len()];
    let attr: [&str; 7] = ["#", "[", "cfg", "(", "test", ")", "]"];
    let mut i = 0usize;
    while i + attr.len() <= sig.len() {
        let hit = attr
            .iter()
            .enumerate()
            .all(|(j, want)| sig[i + j].text == *want);
        if !hit {
            i += 1;
            continue;
        }
        let mut j = i + attr.len();
        // Skip any further attributes between cfg(test) and the item.
        while j < sig.len() && sig[j].text == "#" {
            let mut k = j + 1;
            if k < sig.len() && sig[k].text == "[" {
                let mut depth = 1i64;
                k += 1;
                while k < sig.len() && depth > 0 {
                    match sig[k].text {
                        "[" => depth += 1,
                        "]" => depth -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                j = k;
            } else {
                break;
            }
        }
        // Find the item body: `{ … }` balanced, or a terminating `;`.
        let mut depth = 0i64;
        let mut entered = false;
        let mut end = sig.len();
        for (k, t) in sig.iter().enumerate().skip(j) {
            match t.text {
                "{" => {
                    depth += 1;
                    entered = true;
                }
                "}" => {
                    depth -= 1;
                    if entered && depth == 0 {
                        end = k + 1;
                        break;
                    }
                }
                ";" if !entered => {
                    end = k + 1;
                    break;
                }
                _ => {}
            }
        }
        for m in mask.iter_mut().take(end).skip(i) {
            *m = true;
        }
        i = end.max(i + 1);
    }
    mask
}

/// True when the stream carries the inner attribute
/// `#![deny(missing_docs)]`.
fn has_deny_missing_docs(sig: &[&Token<'_>]) -> bool {
    let seq: [&str; 8] = ["#", "!", "[", "deny", "(", "missing_docs", ")", "]"];
    sig.windows(seq.len())
        .any(|w| w.iter().zip(seq).all(|(t, want)| t.text == want))
}

/// Extracts waivers from line comments; malformed ones become D000
/// violations immediately.
fn collect_waivers(
    tokens: &[Token<'_>],
    cx: &FileContext,
    violations: &mut Vec<Violation>,
) -> Vec<Waiver> {
    let mut out = Vec::new();
    for (idx, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::LineComment || !t.text.contains("respin-lint:") {
            continue;
        }
        // Doc comments (`///`, `//!`) are documentation *about* waivers,
        // not directives — this very grammar is quoted in rustdoc.
        if t.text.starts_with("///") || t.text.starts_with("//!") {
            continue;
        }
        match parse_waiver(t.text) {
            Ok(rules) => {
                // A comment that shares its line with code waives that
                // line; a standalone comment waives the next code line.
                let alone = !tokens[..idx]
                    .iter()
                    .rev()
                    .take_while(|p| p.line == t.line)
                    .any(|p| p.is_significant());
                let target_line = if alone {
                    tokens[idx + 1..]
                        .iter()
                        .find(|n| n.is_significant())
                        .map_or(t.line, |n| n.line)
                } else {
                    t.line
                };
                out.push(Waiver {
                    rules,
                    target_line,
                    comment_line: t.line,
                    used: false,
                });
            }
            Err(why) => violations.push(Violation::error(
                "D000",
                "waivers are well-formed and justified",
                format!("{}:{}", cx.path, t.line),
                why,
            )),
        }
    }
    out
}

/// Parses `respin-lint: allow(D001[, D002…], reason="…")` out of a line
/// comment. The reason is mandatory and must be non-empty: an exception
/// without a recorded justification is exactly the silent hazard this
/// linter exists to prevent.
fn parse_waiver(comment: &str) -> Result<Vec<String>, String> {
    let after = comment
        .split_once("respin-lint:")
        .map(|(_, a)| a.trim())
        .unwrap_or("");
    let Some(body) = after
        .strip_prefix("allow(")
        .and_then(|s| s.rfind(')').map(|i| &s[..i]))
    else {
        return Err(format!(
            "malformed waiver `{}`: expected `respin-lint: allow(D00x, reason=\"…\")`",
            comment.trim()
        ));
    };
    let mut rules = Vec::new();
    let mut reason: Option<&str> = None;
    // `reason="…"` may itself contain commas; split it off first.
    let (ids_part, reason_part) = match body.split_once("reason=") {
        Some((ids, r)) => (ids, Some(r.trim())),
        None => (body, None),
    };
    for piece in ids_part.split(',') {
        let id = piece.trim();
        if id.is_empty() {
            continue;
        }
        if !RULE_IDS.contains(&id) {
            return Err(format!(
                "waiver names unknown rule `{id}` (known: {})",
                RULE_IDS.join(", ")
            ));
        }
        rules.push(id.to_string());
    }
    if let Some(r) = reason_part {
        let r = r.trim().trim_matches('"').trim();
        if !r.is_empty() {
            reason = Some(r);
        }
    }
    if rules.is_empty() {
        return Err("waiver names no rule id".to_string());
    }
    if reason.is_none() {
        return Err(format!(
            "waiver for {} has no reason — every exception must be justified \
             (reason=\"…\")",
            rules.join("/")
        ));
    }
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cx(crate_name: &str) -> FileContext {
        FileContext {
            crate_name: crate_name.to_string(),
            path: format!("crates/{crate_name}/src/test_input.rs"),
            is_lib_root: false,
        }
    }

    fn codes(src: &str, crate_name: &str) -> Vec<String> {
        lint_source(src, &cx(crate_name))
            .into_iter()
            .map(|v| v.code)
            .collect()
    }

    #[test]
    fn d001_fires_only_in_result_bearing_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(codes(src, "respin-sim"), vec!["D001"]);
        assert_eq!(codes(src, "respin-core"), vec!["D001"]);
        assert!(codes(src, "respin-verify").is_empty());
        assert!(codes(src, "respin-pool").is_empty());
    }

    #[test]
    fn d001_ignores_comments_and_strings() {
        let src = r##"
// HashMap in a comment is fine
let s = "HashMap in a string is fine";
let r = r#"HashMap in a raw string is fine"#;
"##;
        assert!(codes(src, "respin-sim").is_empty());
    }

    #[test]
    fn d002_exempts_the_bench_crate() {
        let src = "let t = Instant::now();\n";
        assert_eq!(codes(src, "respin-sim"), vec!["D002"]);
        assert!(codes(src, "respin-bench").is_empty());
        assert_eq!(
            codes("let t = SystemTime::now();", "respin-core"),
            vec!["D002"]
        );
    }

    #[test]
    fn d003_fires_everywhere_without_a_waiver() {
        let src = "let v = x.load(Ordering::Relaxed);\n";
        assert_eq!(codes(src, "respin-pool"), vec!["D003"]);
        assert_eq!(codes(src, "respin-sim"), vec!["D003"]);
    }

    #[test]
    fn d004_exempts_the_pool() {
        let src = "let id = thread::current().id();\n";
        assert_eq!(codes(src, "respin-core"), vec!["D004"]);
        assert!(codes(src, "respin-pool").is_empty());
    }

    #[test]
    fn d006_fires_in_result_bearing_and_bench_crates() {
        let src = "fs::write(&path, data).unwrap();\n";
        assert_eq!(codes(src, "respin-sim"), vec!["D006"]);
        assert_eq!(codes(src, "respin-core"), vec!["D006"]);
        assert_eq!(codes(src, "respin-bench"), vec!["D006"]);
        assert!(codes(src, "respin-pool").is_empty());
        assert!(codes(src, "respin-verify").is_empty());
        assert_eq!(
            codes("let f = File::create(&tmp)?;", "respin-trace"),
            vec!["D006"]
        );
        // The sanctioned path does not trip the rule.
        assert!(codes("atomic_write(&path, data)?;", "respin-core").is_empty());
    }

    #[test]
    fn d006_waiver_suppresses() {
        let src = "let f = File::create(&tmp)?; // respin-lint: allow(D006, reason=\"atomic_write implementation itself\")\n";
        assert!(codes(src, "respin-core").is_empty());
    }

    #[test]
    fn d005_requires_deny_missing_docs_on_lib_roots() {
        let mut c = cx("respin-sim");
        c.is_lib_root = true;
        let bad = lint_source("//! docs\npub fn f() {}\n", &c);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].code, "D005");
        let good = lint_source("//! docs\n#![deny(missing_docs)]\npub fn f() {}\n", &c);
        assert!(good.is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = r#"
pub fn result_path() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    fn helper() { let t = Instant::now(); }
}
"#;
        assert!(codes(src, "respin-sim").is_empty());
    }

    #[test]
    fn cfg_test_exemption_does_not_leak_past_the_module() {
        let src = r#"
#[cfg(test)]
mod tests {
    fn helper() {}
}
use std::collections::HashMap;
"#;
        assert_eq!(codes(src, "respin-sim"), vec!["D001"]);
    }

    #[test]
    fn same_line_waiver_suppresses() {
        let src = "use std::collections::HashMap; // respin-lint: allow(D001, reason=\"keyed access only, never iterated\")\n";
        assert!(codes(src, "respin-sim").is_empty());
    }

    #[test]
    fn standalone_waiver_covers_next_code_line() {
        let src = "// respin-lint: allow(D003, reason=\"claim index, never in results\")\nlet i = next.fetch_add(1, Ordering::Relaxed);\n";
        assert!(codes(src, "respin-pool").is_empty());
    }

    #[test]
    fn waiver_for_the_wrong_rule_does_not_suppress() {
        let src =
            "use std::collections::HashMap; // respin-lint: allow(D002, reason=\"wrong rule\")\n";
        let got = codes(src, "respin-sim");
        // The D001 still fires, and the D002 waiver is reported unused.
        assert!(got.contains(&"D001".to_string()), "{got:?}");
        assert!(got.contains(&"D000".to_string()), "{got:?}");
    }

    #[test]
    fn waiver_without_reason_is_a_violation() {
        let src = "use std::collections::HashMap; // respin-lint: allow(D001)\n";
        let got = lint_source(src, &cx("respin-sim"));
        assert!(got.iter().any(|v| v.code == "D000"), "{got:?}");
        assert!(
            got.iter().any(|v| v.code == "D001"),
            "waiver must not apply: {got:?}"
        );
    }

    #[test]
    fn waiver_with_unknown_rule_is_a_violation() {
        let src = "// respin-lint: allow(D942, reason=\"no such rule\")\nlet x = 1;\n";
        let got = lint_source(src, &cx("respin-sim"));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].code, "D000");
    }

    #[test]
    fn unused_waiver_warns_but_does_not_fail() {
        use respin_power::diag::Severity;
        let src = "// respin-lint: allow(D001, reason=\"stale\")\nlet x = 1;\n";
        let got = lint_source(src, &cx("respin-sim"));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].code, "D000");
        assert_eq!(got[0].severity, Severity::Warning);
    }

    #[test]
    fn doc_comments_quoting_the_grammar_are_not_waivers() {
        // Rustdoc that quotes the waiver grammar must neither waive
        // anything nor count as malformed.
        let src = "/// Use `// respin-lint: allow(D00x, reason=\"…\")` to waive.\n//! respin-lint: allow(broken grammar here)\nuse std::collections::HashMap;\n";
        assert_eq!(codes(src, "respin-sim"), vec!["D001"]);
    }

    #[test]
    fn multi_rule_waiver() {
        let src = "// respin-lint: allow(D001, D002, reason=\"both justified here\")\nlet m: HashMap<u32, Instant> = make(Instant::now());\n";
        // HashMap and Instant::now on the same line, both waived.
        assert!(codes(src, "respin-sim").is_empty());
    }

    #[test]
    fn violations_carry_file_line_locations() {
        let src = "\n\nuse std::collections::HashMap;\n";
        let got = lint_source(src, &cx("respin-sim"));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].location, "crates/respin-sim/src/test_input.rs:3");
    }
}
