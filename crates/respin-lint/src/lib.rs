//! # respin-lint — workspace determinism linter
//!
//! The whole reproduction rests on one contract: **results, reports, and
//! trace exports are byte-identical at every thread count** (DESIGN.md
//! §13). CI enforces that contract *dynamically* by byte-diffing a
//! 2-worker run against a 1-worker run — which only covers the paths the
//! smoke experiments happen to exercise. This crate enforces it
//! *statically*: a token-level scan over every workspace source file
//! rejects the constructs that let nondeterminism leak into results
//! (unordered map iteration, wall-clock reads, relaxed atomics, thread
//! identity) before any scheduler gets the chance to exercise them.
//!
//! Three pieces:
//!
//! * [`lexer`] — a small, total Rust lexer (no `syn` is vendored). It
//!   never panics on arbitrary input and exactly skips comments, strings,
//!   and raw strings, so rules only ever see real code tokens.
//! * [`rules`] — the D-rule engine and the explicit waiver grammar
//!   (`// respin-lint: allow(D00x, reason="…")`). The catalogue lives in
//!   the [`rules`] module docs and DESIGN.md §14.
//! * [`lint_workspace`] / [`lint_file`] — the driver that walks
//!   `crates/*/src/**/*.rs` and aggregates everything into the same
//!   [`respin_power::diag::Report`] shape every other verification pass
//!   uses (stable codes, `file:line` locations, `--json` output, exit
//!   code 0 only when clean).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Tests may unwrap: a panic IS the failure report there.
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(clippy::all)]

pub mod lexer;
pub mod rules;

pub use rules::{FileContext, RESULT_BEARING, RULE_IDS};

use respin_power::diag::{Report, Violation};
use std::fs;
use std::path::{Path, PathBuf};

/// Lints one file on disk as belonging to `crate_name`. `is_lib_root`
/// additionally enables the crate-root rule (D005).
pub fn lint_file(path: &Path, crate_name: &str, is_lib_root: bool) -> Report {
    let mut report = Report::new();
    let cx = FileContext {
        crate_name: crate_name.to_string(),
        path: path.display().to_string(),
        is_lib_root,
    };
    match fs::read_to_string(path) {
        Ok(src) => {
            for v in rules::lint_source(&src, &cx) {
                report.push(v);
            }
        }
        Err(e) => report.push(Violation::error(
            "D000",
            "every workspace source file is readable",
            cx.path,
            format!("cannot read source: {e}"),
        )),
    }
    report
}

/// Lints every `crates/*/src/**/*.rs` under `root`, in sorted order (the
/// linter's own output must be deterministic). Returns the aggregate
/// report and the number of files checked.
pub fn lint_workspace(root: &Path) -> (Report, usize) {
    let mut report = Report::new();
    let mut files = 0usize;
    let crates_dir = root.join("crates");
    for crate_dir in sorted_dirs(&crates_dir, &mut report) {
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src_dir = crate_dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let lib_root = src_dir.join("lib.rs");
        for file in rust_files(&src_dir, &mut report) {
            let is_lib_root = file == lib_root;
            report.merge(lint_file(&file, &crate_name, is_lib_root));
            files += 1;
        }
        if !lib_root.is_file() {
            report.push(Violation::error(
                "D005",
                rules::rule_summary("D005"),
                format!("{}", src_dir.display()),
                format!("crate `{crate_name}` has no src/lib.rs to carry #![deny(missing_docs)]"),
            ));
        }
    }
    (report, files)
}

/// Immediate subdirectories of `dir`, sorted by name.
fn sorted_dirs(dir: &Path, report: &mut Report) -> Vec<PathBuf> {
    let mut out = Vec::new();
    match fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries.flatten() {
                let p = entry.path();
                if p.is_dir() {
                    out.push(p);
                }
            }
        }
        Err(e) => report.push(Violation::error(
            "D000",
            "the workspace layout is walkable",
            dir.display().to_string(),
            format!("cannot list directory: {e}"),
        )),
    }
    out.sort();
    out
}

/// All `.rs` files under `dir`, recursively, sorted by path.
fn rust_files(dir: &Path, report: &mut Report) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        match fs::read_dir(&d) {
            Ok(entries) => {
                for entry in entries.flatten() {
                    let p = entry.path();
                    if p.is_dir() {
                        stack.push(p);
                    } else if p.extension().is_some_and(|e| e == "rs") {
                        out.push(p);
                    }
                }
            }
            Err(e) => report.push(Violation::error(
                "D000",
                "the workspace layout is walkable",
                d.display().to_string(),
                format!("cannot list directory: {e}"),
            )),
        }
    }
    out.sort();
    out
}

/// The workspace root this crate was built from (two levels above the
/// crate manifest), for the self-test and the CLI default.
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The load-bearing gate: the workspace itself must be lint-clean.
    /// Every real finding this linter surfaced was either fixed (the
    /// D001 BTreeMap conversions) or carries an inline justified waiver;
    /// a regression on any path — including ones no smoke test runs —
    /// fails this test.
    #[test]
    fn workspace_is_lint_clean() {
        let root = default_root();
        assert!(
            root.join("Cargo.toml").is_file(),
            "workspace root not found at {}",
            root.display()
        );
        let (report, files) = lint_workspace(&root);
        assert!(
            files > 50,
            "walked only {files} files — the walker is broken, not the workspace clean"
        );
        assert!(
            report.is_clean(),
            "workspace has determinism-lint violations:\n{report}"
        );
    }

    /// Unused-waiver hygiene: the workspace must not accumulate stale
    /// exceptions either (warnings, so checked separately from is_clean).
    #[test]
    fn workspace_has_no_stale_waivers() {
        let (report, _) = lint_workspace(&default_root());
        let stale: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.code == "D000")
            .collect();
        assert!(stale.is_empty(), "stale or malformed waivers: {stale:?}");
    }

    #[test]
    fn lint_file_reports_unreadable_paths_instead_of_panicking() {
        let report = lint_file(Path::new("/nonexistent/nope.rs"), "respin-sim", false);
        assert!(!report.is_clean());
        assert_eq!(report.violations[0].code, "D000");
    }
}
