//! D001 bad fixture: HashMap iteration order reaches a rendered report.
//! Linted as a result-bearing crate (`--crate respin-sim`).

use std::collections::HashMap;

pub struct EpochStats {
    per_core: HashMap<u32, u64>,
}

impl EpochStats {
    /// Iteration order is randomised per process: two runs of the same
    /// simulation render these lines in different orders, breaking the
    /// byte-identity contract the moment this string lands in a report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (core, hits) in &self.per_core {
            out.push_str(&format!("core {core}: {hits}\n"));
        }
        out
    }
}
