//! D004 good fixture: identity, when needed, is a deterministic input.

/// The caller passes a stable logical index (e.g. the item index from
/// the ordered merge); the annotation is a pure function of it.
pub fn annotate(line: &str, item_index: usize) -> String {
    format!("{line} [item {item_index}]")
}
