//! D005 good fixture: the crate root carries the missing-docs gate.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Every public item must be documented, enforced at compile time.
pub fn documented() {}
