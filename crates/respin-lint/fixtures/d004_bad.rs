//! D004 bad fixture: thread identity influencing a result path.

use std::thread;

/// Thread ids are scheduler-assigned: two runs at the same thread count
/// can stamp different ids, and any branch on identity makes control
/// flow schedule-dependent.
pub fn annotate(line: &str) -> String {
    format!("{line} [worker {:?}]", thread::current().id())
}
