//! D002 bad fixture: wall-clock read inside simulation state.

use std::time::Instant;

pub struct Epoch {
    started: Instant,
    pub ticks: u64,
}

impl Epoch {
    /// A wall-clock read: this value depends on the host, the load, and
    /// the scheduler — if it reaches any result or trace, byte-identity
    /// across thread counts (or even two identical runs) is gone.
    pub fn begin(ticks: u64) -> Self {
        Self {
            started: Instant::now(),
            ticks,
        }
    }
}
