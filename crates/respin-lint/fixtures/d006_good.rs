//! D006 good fixture: artifact writes go through the one atomic path.

use respin_core::persist::atomic_write;
use std::path::Path;

/// `atomic_write` stages the bytes in a sibling tmp file, fsyncs, and
/// renames over the destination: a reader sees the old artifact or the
/// new one, never a torn prefix — a crash mid-campaign cannot corrupt
/// results on disk.
pub fn save_report(path: &Path, report: &str) -> std::io::Result<()> {
    atomic_write(path, report.as_bytes())
}

/// Batched lines are assembled in memory and land in one atomic rename,
/// so the trace file is all-or-nothing too.
pub fn save_trace(path: &Path, lines: &[String]) -> std::io::Result<()> {
    let mut text = String::new();
    for line in lines {
        text.push_str(line);
        text.push('\n');
    }
    atomic_write(path, text.as_bytes())
}
