//! D005 bad fixture: a crate root (linted with `--lib`) that does not
//! carry `#![deny(missing_docs)]` — undocumented public surface can ship.

#![forbid(unsafe_code)]

/// A documented item does not make up for the missing crate-level gate.
pub fn documented() {}
