//! D006 bad fixture: non-atomic artifact writes in a result-bearing
//! crate.

use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

/// A bare `fs::write`: the kernel may flush any prefix of the bytes
/// before a crash, so a reader can observe a torn, plausible-looking
/// report with no way to tell it apart from a complete one.
pub fn save_report(path: &Path, report: &str) -> std::io::Result<()> {
    fs::write(path, report)
}

/// `File::create` + incremental writes is worse still: the destination
/// is truncated first, so even the *old* artifact is gone the moment a
/// crash lands between create and the final flush.
pub fn save_trace(path: &Path, lines: &[String]) -> std::io::Result<()> {
    let mut f = File::create(path)?;
    for line in lines {
        writeln!(f, "{line}")?;
    }
    Ok(())
}
