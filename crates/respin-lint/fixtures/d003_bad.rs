//! D003 bad fixture: a relaxed atomic value flows into a result.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Counter {
    completed: AtomicU64,
}

impl Counter {
    /// A Relaxed load may observe a stale count depending on scheduling;
    /// stamping it into a report makes the artifact thread-count
    /// dependent. Either strengthen the ordering at a synchronisation
    /// point or keep the value out of results (and say why, in a waiver).
    pub fn report_line(&self) -> String {
        format!("completed={}", self.completed.load(Ordering::Relaxed))
    }
}
