//! D002 good fixture: time is simulated ticks, never the wall clock.

pub struct Epoch {
    started_tick: u64,
    pub ticks: u64,
}

impl Epoch {
    /// Simulated time is part of the deterministic state: a pure
    /// function of the run options, identical on every host.
    pub fn begin(now_tick: u64, ticks: u64) -> Self {
        Self {
            started_tick: now_tick,
            ticks,
        }
    }

    /// Elapsed simulated ticks since the epoch began.
    pub fn elapsed(&self, now_tick: u64) -> u64 {
        now_tick.saturating_sub(self.started_tick)
    }
}
