//! D001 good fixture: ordered map, deterministic traversal.
//! Mentioning HashMap in comments — or "HashMap" in strings — is fine;
//! only the real identifier counts.

use std::collections::BTreeMap;

pub struct EpochStats {
    per_core: BTreeMap<u32, u64>,
}

impl EpochStats {
    /// BTreeMap iterates in key order: the rendered report is a pure
    /// function of the data, byte-identical on every run.
    pub fn render(&self) -> String {
        let mut out = String::from("not a HashMap");
        for (core, hits) in &self.per_core {
            out.push_str(&format!("core {core}: {hits}\n"));
        }
        out
    }
}
