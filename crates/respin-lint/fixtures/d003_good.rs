//! D003 good fixture: the documented-safe pattern — a relaxed atomic
//! whose value provably never reaches results, with an explicit waiver
//! carrying the safety argument (mirrors respin-pool's claim index).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Claims the next work item. The index only selects *which worker*
/// computes an item; results are merged by item index afterwards, so the
/// claim order is invisible in any output.
pub fn claim(next: &AtomicUsize, len: usize) -> Option<usize> {
    // respin-lint: allow(D003, reason="claim index selects a worker, never appears in results; merge is by item index")
    let i = next.fetch_add(1, Ordering::Relaxed);
    if i < len {
        Some(i)
    } else {
        None
    }
}
