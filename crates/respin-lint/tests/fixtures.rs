//! Fixture-based lint tests: one bad + one good fixture per rule.
//!
//! Every bad fixture must produce exactly its rule's finding (and
//! nothing else), and every good fixture must be completely clean —
//! including no unused-waiver warnings — so the fixtures double as
//! documentation of the blessed patterns.

use respin_lint::lint_file;
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// Fixtures are linted as a result-bearing crate so every rule applies;
/// only the D005 pair is linted as a crate root.
fn lint(name: &str, as_lib: bool) -> respin_power::diag::Report {
    let path = fixture(name);
    assert!(path.is_file(), "missing fixture {}", path.display());
    lint_file(&path, "respin-sim", as_lib)
}

#[test]
fn bad_fixtures_fail_with_their_rule_id() {
    for (name, as_lib, rule) in [
        ("d001_bad.rs", false, "D001"),
        ("d002_bad.rs", false, "D002"),
        ("d003_bad.rs", false, "D003"),
        ("d004_bad.rs", false, "D004"),
        ("d005_bad.rs", true, "D005"),
    ] {
        let report = lint(name, as_lib);
        assert!(!report.is_clean(), "{name} must fail");
        assert!(
            report.violations.iter().any(|v| v.code == rule),
            "{name} must report {rule}, got: {report}"
        );
        assert!(
            report.violations.iter().all(|v| v.code == rule),
            "{name} must report only {rule}, got: {report}"
        );
    }
}

#[test]
fn good_fixtures_are_completely_clean() {
    for (name, as_lib) in [
        ("d001_good.rs", false),
        ("d002_good.rs", false),
        ("d003_good.rs", false),
        ("d004_good.rs", false),
        ("d005_good.rs", true),
    ] {
        let report = lint(name, as_lib);
        assert!(
            report.violations.is_empty(),
            "{name} must be clean (no errors, no warnings), got: {report}"
        );
    }
}

#[test]
fn violations_point_into_the_fixture_with_line_numbers() {
    let report = lint("d001_bad.rs", false);
    let v = &report.violations[0];
    assert!(v.location.contains("d001_bad.rs:"), "{}", v.location);
    let line: u32 = v
        .location
        .rsplit(':')
        .next()
        .and_then(|l| l.parse().ok())
        .expect("location ends with a line number");
    assert!(line > 1, "finding should not sit on line 1: {}", v.location);
}
