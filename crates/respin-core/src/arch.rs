//! The eight architecture configurations of the paper's Table IV.

use respin_power::MemTech;
use respin_sim::{CacheSizeClass, ChipConfig, CtxSwitchModel, L1Org};
use respin_variation::FrequencyBand;
use serde::{Deserialize, Serialize};

/// Which consolidation policy a configuration runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// No consolidation: all cores stay on.
    None,
    /// The §III-B greedy search at every epoch (hardware switching).
    Greedy,
    /// Clone-replay oracle: best active-core count per epoch.
    Oracle,
    /// Greedy, but decisions and context switches at OS granularity (1 ms).
    OsGreedy,
}

/// The Table IV configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArchConfig {
    /// Baseline: NT chip, private SRAM L1s (0.65 V rail), shared L2/L3.
    PrSramNt,
    /// Conventional high-performance chip: everything SRAM at nominal
    /// voltage and frequency.
    HpSramCmp,
    /// The shared-L1 organisation built from SRAM at nominal voltage.
    ShSramNom,
    /// The proposed design: shared STT-RAM caches at nominal voltage,
    /// NT cores. No consolidation.
    ShStt,
    /// SH-STT plus dynamic core consolidation (greedy, hardware switched).
    ShSttCc,
    /// SH-STT plus oracle consolidation (upper bound).
    ShSttCcOracle,
    /// Core consolidation over *private* STT-RAM L1s (locality is lost on
    /// migration).
    PrSttCc,
    /// Consolidation driven by the OS at 1 ms quanta.
    ShSttCcOs,
}

impl ArchConfig {
    /// All configurations, in Table IV order.
    pub const ALL: [ArchConfig; 8] = [
        ArchConfig::PrSramNt,
        ArchConfig::HpSramCmp,
        ArchConfig::ShSramNom,
        ArchConfig::ShStt,
        ArchConfig::ShSttCc,
        ArchConfig::ShSttCcOracle,
        ArchConfig::PrSttCc,
        ArchConfig::ShSttCcOs,
    ];

    /// The paper's label.
    pub fn name(self) -> &'static str {
        match self {
            ArchConfig::PrSramNt => "PR-SRAM-NT",
            ArchConfig::HpSramCmp => "HP-SRAM-CMP",
            ArchConfig::ShSramNom => "SH-SRAM-Nom",
            ArchConfig::ShStt => "SH-STT",
            ArchConfig::ShSttCc => "SH-STT-CC",
            ArchConfig::ShSttCcOracle => "SH-STT-CC-Oracle",
            ArchConfig::PrSttCc => "PR-STT-CC",
            ArchConfig::ShSttCcOs => "SH-STT-CC-OS",
        }
    }

    /// The paper's one-line description (Table IV).
    pub fn description(self) -> &'static str {
        match self {
            ArchConfig::PrSramNt => {
                "NT chip with SRAM private L1(I/D) cache and shared L2/L3 cache (baseline)"
            }
            ArchConfig::HpSramCmp => {
                "conventional high-performance CMP: cores and SRAM caches at nominal voltage"
            }
            ArchConfig::ShSramNom => {
                "NT cores with cluster-shared SRAM caches on a nominal-voltage rail"
            }
            ArchConfig::ShStt => {
                "NT cores with cluster-shared STT-RAM caches on a nominal-voltage rail"
            }
            ArchConfig::ShSttCc => "SH-STT with greedy dynamic core consolidation",
            ArchConfig::ShSttCcOracle => "SH-STT with oracle core consolidation (upper bound)",
            ArchConfig::PrSttCc => "core consolidation with private STT-RAM L1 caches",
            ArchConfig::ShSttCcOs => "core consolidation handled by the OS at 1 ms intervals",
        }
    }

    /// Looks a configuration up by its paper label.
    pub fn from_name(name: &str) -> Option<ArchConfig> {
        ArchConfig::ALL.into_iter().find(|a| a.name() == name)
    }

    /// The consolidation policy this configuration runs.
    pub fn policy(self) -> PolicyKind {
        match self {
            ArchConfig::ShSttCc | ArchConfig::PrSttCc => PolicyKind::Greedy,
            ArchConfig::ShSttCcOracle => PolicyKind::Oracle,
            ArchConfig::ShSttCcOs => PolicyKind::OsGreedy,
            _ => PolicyKind::None,
        }
    }

    /// Builds the simulator configuration for this architecture.
    pub fn chip_config(self, size: CacheSizeClass, cores_per_cluster: usize) -> ChipConfig {
        let mut c = ChipConfig::nt_base();
        c.size_class = size;
        c.cores_per_cluster = cores_per_cluster;
        // Keep the 64-core chip of the paper across cluster-size sweeps.
        c.clusters = (64 / cores_per_cluster).max(1);
        match self {
            ArchConfig::PrSramNt => {
                c.l1_org = L1Org::Private;
                c.cache_tech = MemTech::Sram;
                c.cache_vdd = 0.65;
            }
            ArchConfig::HpSramCmp => {
                c.l1_org = L1Org::Private;
                c.cache_tech = MemTech::Sram;
                c.cache_vdd = 1.0;
                c.core_vdd = 1.0;
                c.band = FrequencyBand::NOMINAL;
            }
            ArchConfig::ShSramNom => {
                c.cache_tech = MemTech::Sram;
            }
            ArchConfig::ShStt => {}
            ArchConfig::ShSttCc => {
                c.consolidation = true;
            }
            ArchConfig::ShSttCcOracle => {
                c.consolidation = true;
            }
            ArchConfig::PrSttCc => {
                c.l1_org = L1Org::Private;
                c.consolidation = true;
            }
            ArchConfig::ShSttCcOs => {
                c.consolidation = true;
                c.ctx_switch = CtxSwitchModel::Os;
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configs_build_valid_chip_configs() {
        for a in ArchConfig::ALL {
            for size in CacheSizeClass::ALL {
                let c = a.chip_config(size, 16);
                c.validate().unwrap_or_else(|e| panic!("{}: {e}", a.name()));
                assert_eq!(c.total_cores(), 64);
            }
        }
    }

    #[test]
    fn name_roundtrip() {
        for a in ArchConfig::ALL {
            assert_eq!(ArchConfig::from_name(a.name()), Some(a));
        }
        assert_eq!(ArchConfig::from_name("bogus"), None);
    }

    #[test]
    fn baseline_matches_table4() {
        let c = ArchConfig::PrSramNt.chip_config(CacheSizeClass::Medium, 16);
        assert_eq!(c.l1_org, L1Org::Private);
        assert_eq!(c.cache_tech, MemTech::Sram);
        assert!((c.cache_vdd - 0.65).abs() < 1e-12);
        assert!((c.core_vdd - 0.4).abs() < 1e-12);
        assert!(!c.consolidation);
    }

    #[test]
    fn proposed_design_matches_table4() {
        let c = ArchConfig::ShStt.chip_config(CacheSizeClass::Medium, 16);
        assert_eq!(c.l1_org, L1Org::SharedPerCluster);
        assert_eq!(c.cache_tech, MemTech::SttRam);
        assert!((c.cache_vdd - 1.0).abs() < 1e-12);
        assert!(c.has_dual_rails());
    }

    #[test]
    fn cluster_sweep_keeps_64_cores() {
        for n in [4, 8, 16, 32] {
            let c = ArchConfig::ShStt.chip_config(CacheSizeClass::Medium, n);
            assert_eq!(c.total_cores(), 64);
        }
    }

    #[test]
    fn policies_match_configs() {
        assert_eq!(ArchConfig::ShStt.policy(), PolicyKind::None);
        assert_eq!(ArchConfig::ShSttCc.policy(), PolicyKind::Greedy);
        assert_eq!(ArchConfig::ShSttCcOracle.policy(), PolicyKind::Oracle);
        assert_eq!(ArchConfig::ShSttCcOs.policy(), PolicyKind::OsGreedy);
        assert_eq!(ArchConfig::PrSttCc.policy(), PolicyKind::Greedy);
    }

    #[test]
    fn os_variant_uses_os_switching() {
        let c = ArchConfig::ShSttCcOs.chip_config(CacheSizeClass::Medium, 16);
        assert_eq!(c.ctx_switch, CtxSwitchModel::Os);
    }
}
