//! Text-table and JSON rendering for experiment outputs.

use serde::Serialize;
use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                let _ = write!(out, "{cell:<w$}");
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a ratio as a signed percentage ("−12.9%").
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", ratio * 100.0)
}

/// Formats a plain fraction as a percentage ("49.2%").
pub fn frac(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

/// Serialises a value as pretty JSON (for machine-readable experiment
/// outputs alongside the text tables).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("experiment outputs are serialisable")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["short", "1"]);
        t.row(vec!["a-much-longer-name", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("short"));
        // Columns align: "value" and the numbers start at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].chars().nth(col), Some('1'));
        assert_eq!(lines[3].chars().nth(col), Some('2'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn percentage_formatting() {
        assert_eq!(pct(-0.129), "-12.9%");
        assert_eq!(pct(0.4), "+40.0%");
        assert_eq!(frac(0.958), "95.8%");
    }

    #[test]
    fn json_roundtrips() {
        #[derive(serde::Serialize)]
        struct Row {
            x: u32,
        }
        assert!(to_json(&Row { x: 7 }).contains("\"x\": 7"));
    }
}
