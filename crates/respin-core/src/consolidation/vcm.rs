//! Virtual core monitor: per-cluster energy-per-instruction measurement.
//!
//! The paper's VCM reads hardware energy counters each epoch; here the
//! counters are the simulator's per-cluster energy book. The monitor keeps
//! the previous epoch's EPI so policies can evaluate the relative change
//! the Figure 5 flowchart branches on.

use serde::{Deserialize, Serialize};

/// Tracks the EPI of consecutive epochs for one cluster.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EpiMonitor {
    previous: Option<f64>,
}

impl EpiMonitor {
    /// New monitor with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records this epoch's EPI and returns the relative change from the
    /// previous epoch: `(epi − prev) / prev`. Returns `None` on the first
    /// epoch or when either measurement is unusable (no instructions
    /// retired).
    pub fn observe(&mut self, epi: f64) -> Option<f64> {
        if !epi.is_finite() || epi <= 0.0 {
            return None;
        }
        let delta = self.previous.map(|prev| (epi - prev) / prev);
        self.previous = Some(epi);
        delta
    }

    /// The last recorded EPI.
    pub fn previous(&self) -> Option<f64> {
        self.previous
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_has_no_delta() {
        let mut m = EpiMonitor::new();
        assert_eq!(m.observe(10.0), None);
        assert_eq!(m.previous(), Some(10.0));
    }

    #[test]
    fn relative_delta() {
        let mut m = EpiMonitor::new();
        m.observe(10.0);
        assert!((m.observe(11.0).unwrap() - 0.1).abs() < 1e-12);
        assert!((m.observe(9.9).unwrap() + 0.1).abs() < 1e-12);
    }

    #[test]
    fn unusable_epochs_are_skipped_without_clobbering_history() {
        let mut m = EpiMonitor::new();
        m.observe(10.0);
        assert_eq!(m.observe(f64::INFINITY), None);
        assert_eq!(m.previous(), Some(10.0));
        assert_eq!(m.observe(0.0), None);
        assert_eq!(m.observe(12.0), Some(0.2));
    }
}
