//! Virtual core monitor: per-cluster energy-per-instruction measurement.
//!
//! The paper's VCM reads hardware energy counters each epoch; here the
//! counters are the simulator's per-cluster energy book. The monitor keeps
//! the previous epoch's EPI so policies can evaluate the relative change
//! the Figure 5 flowchart branches on.

use serde::{Deserialize, Serialize};

/// Tracks the EPI of consecutive epochs for one cluster.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EpiMonitor {
    previous: Option<f64>,
}

impl EpiMonitor {
    /// New monitor with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records this epoch's EPI and returns the relative change from the
    /// previous epoch: `(epi − prev) / prev`. Returns `None` on the first
    /// epoch or when either measurement is unusable (no instructions
    /// retired).
    pub fn observe(&mut self, epi: f64) -> Option<f64> {
        if !epi.is_finite() || epi <= 0.0 {
            return None;
        }
        let delta = self.previous.map(|prev| (epi - prev) / prev);
        self.previous = Some(epi);
        delta
    }

    /// The last recorded EPI.
    pub fn previous(&self) -> Option<f64> {
        self.previous
    }
}

/// One observed change in a cluster's healthy-core count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthEvent {
    /// Epoch index (monitor-local, counted from the first observation).
    pub epoch: u64,
    /// Healthy cores before the change.
    pub from: usize,
    /// Healthy cores after the change.
    pub to: usize,
}

/// Tracks a cluster's healthy physical-core count across epochs — the
/// VCM's view of graceful degradation. Decommissioned cores only ever
/// reduce the count, so each logged event is a degradation step.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthMonitor {
    healthy: Option<usize>,
    epoch: u64,
    log: Vec<HealthEvent>,
}

impl HealthMonitor {
    /// New monitor with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records this epoch's healthy-core count; returns the event when
    /// the count changed since the previous epoch.
    pub fn observe(&mut self, healthy: usize) -> Option<HealthEvent> {
        let prev = self.healthy;
        self.healthy = Some(healthy);
        self.epoch += 1;
        match prev {
            Some(p) if p != healthy => {
                let ev = HealthEvent {
                    epoch: self.epoch - 1,
                    from: p,
                    to: healthy,
                };
                self.log.push(ev);
                Some(ev)
            }
            _ => None,
        }
    }

    /// The last observed healthy-core count.
    pub fn healthy(&self) -> Option<usize> {
        self.healthy
    }

    /// All degradation events observed so far.
    pub fn log(&self) -> &[HealthEvent] {
        &self.log
    }

    /// True when at least one core has been lost.
    pub fn degraded(&self) -> bool {
        !self.log.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_has_no_delta() {
        let mut m = EpiMonitor::new();
        assert_eq!(m.observe(10.0), None);
        assert_eq!(m.previous(), Some(10.0));
    }

    #[test]
    fn relative_delta() {
        let mut m = EpiMonitor::new();
        m.observe(10.0);
        assert!((m.observe(11.0).unwrap() - 0.1).abs() < 1e-12);
        assert!((m.observe(9.9).unwrap() + 0.1).abs() < 1e-12);
    }

    #[test]
    fn unusable_epochs_are_skipped_without_clobbering_history() {
        let mut m = EpiMonitor::new();
        m.observe(10.0);
        assert_eq!(m.observe(f64::INFINITY), None);
        assert_eq!(m.previous(), Some(10.0));
        assert_eq!(m.observe(0.0), None);
        assert_eq!(m.observe(12.0), Some(0.2));
    }

    #[test]
    fn health_monitor_logs_degradation_steps() {
        let mut m = HealthMonitor::new();
        assert_eq!(m.observe(16), None);
        assert!(!m.degraded());
        assert_eq!(m.observe(16), None);
        let ev = m.observe(15).expect("core loss must be logged");
        assert_eq!((ev.from, ev.to), (16, 15));
        assert_eq!(ev.epoch, 2);
        assert_eq!(m.observe(15), None);
        assert_eq!(m.healthy(), Some(15));
        assert!(m.degraded());
        assert_eq!(m.log().len(), 1);
    }
}
