//! The Figure 5 greedy energy-optimisation search.
//!
//! Execution is broken into epochs. At each epoch boundary the search
//! compares the epoch's EPI with the previous epoch's:
//!
//! * change below the threshold → **hold** the current core count (avoids
//!   state churn for minor benefits);
//! * EPI improved → keep moving in the current direction (keep shutting
//!   down, or keep waking up);
//! * EPI worsened → **reverse** direction;
//! * the search starts with all cores on and shuts one core down after the
//!   first epoch;
//! * an oscillation between two neighbouring states triggers an
//!   **exponential back-off**: the state is held for 2, 4, 8, 16, then 32
//!   epochs before the next change is allowed.

use super::vcm::EpiMonitor;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Tunables of the greedy search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GreedyConfig {
    /// Relative EPI change below which the state is held.
    pub threshold: f64,
    /// Smallest number of active cores the search may reach.
    pub min_cores: usize,
    /// Back-off cap in epochs (the paper's 2→32 sequence).
    pub max_backoff: u32,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        Self {
            threshold: 0.02,
            min_cores: 1,
            max_backoff: 32,
        }
    }
}

/// Greedy search state for one cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GreedySearch {
    config: GreedyConfig,
    /// Physical cores in the cluster (upper bound of the search).
    max_cores: usize,
    monitor: EpiMonitor,
    /// −1 = shutting cores down, +1 = turning cores on.
    direction: i64,
    /// Epochs left to hold the current state (back-off).
    hold: u32,
    /// Next back-off length on oscillation.
    backoff: u32,
    /// Recent decisions, for oscillation detection.
    history: VecDeque<usize>,
}

impl GreedySearch {
    /// New search over a cluster of `max_cores` physical cores.
    pub fn new(max_cores: usize, config: GreedyConfig) -> Self {
        Self {
            config,
            max_cores,
            monitor: EpiMonitor::new(),
            direction: -1,
            hold: 0,
            backoff: 2,
            history: VecDeque::with_capacity(8),
        }
    }

    /// Decides the active-core count for the next epoch given this epoch's
    /// `epi` and the `current` count.
    pub fn decide(&mut self, epi: f64, current: usize) -> usize {
        if !epi.is_finite() || epi <= 0.0 {
            // Unusable measurement (cluster retired nothing): hold.
            return current;
        }
        if self.hold > 0 {
            self.hold -= 1;
            // Keep the EPI history warm so the comparison after the hold is
            // against fresh data.
            self.monitor.observe(epi);
            return current;
        }
        let delta = match self.monitor.observe(epi) {
            // First measured epoch: the paper shuts one core down to start
            // the search.
            None => return self.record(self.step(current)),
            Some(d) => d,
        };

        if delta.abs() < self.config.threshold {
            return current;
        }
        if delta > 0.0 {
            self.direction = -self.direction;
        }
        let next = self.step(current);
        let next = self.record(next);
        if self.is_oscillating() {
            self.hold = self.backoff;
            self.backoff = (self.backoff * 2).min(self.config.max_backoff);
        }
        next
    }

    fn step(&self, current: usize) -> usize {
        let next = current as i64 + self.direction;
        next.clamp(self.config.min_cores as i64, self.max_cores as i64) as usize
    }

    fn record(&mut self, next: usize) -> usize {
        if self.history.len() == 8 {
            self.history.pop_front();
        }
        self.history.push_back(next);
        next
    }

    /// True when recent decisions bounce around a narrow band instead of
    /// progressing: the last 8 decisions span at most 2 counts and include
    /// both upward and downward moves (catches period-2 *and* period-4
    /// cycles around a sharp minimum).
    fn is_oscillating(&self) -> bool {
        if self.history.len() < 8 {
            return false;
        }
        let min = *self.history.iter().min().expect("non-empty");
        let max = *self.history.iter().max().expect("non-empty");
        if max - min > 2 {
            return false;
        }
        let mut up = false;
        let mut down = false;
        for w in self.history.iter().zip(self.history.iter().skip(1)) {
            match w.1.cmp(w.0) {
                std::cmp::Ordering::Greater => up = true,
                std::cmp::Ordering::Less => down = true,
                std::cmp::Ordering::Equal => {}
            }
        }
        up && down
    }

    /// Caps the search at the cluster's current healthy-core count
    /// (graceful degradation: decommissioned cores leave the search
    /// space and can never be woken). The cap only ever shrinks, and at
    /// least one core stays reachable.
    pub fn limit_max_cores(&mut self, healthy: usize) {
        let cap = healthy.max(1);
        if cap < self.max_cores {
            self.max_cores = cap;
            self.config.min_cores = self.config.min_cores.min(cap);
        }
    }

    /// Upper bound of the search (physical, healthy cores).
    pub fn max_cores(&self) -> usize {
        self.max_cores
    }

    /// Current search direction (−1 shutting down, +1 waking up).
    pub fn direction(&self) -> i64 {
        self.direction
    }

    /// Epochs remaining in the current hold.
    pub fn holding(&self) -> u32 {
        self.hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn search() -> GreedySearch {
        GreedySearch::new(16, GreedyConfig::default())
    }

    #[test]
    fn first_epoch_shuts_one_core_down() {
        let mut g = search();
        assert_eq!(g.decide(100.0, 16), 15);
    }

    #[test]
    fn improving_epi_keeps_shutting_down() {
        let mut g = search();
        let mut current = 16;
        let mut epi = 100.0;
        for _ in 0..5 {
            current = g.decide(epi, current);
            epi *= 0.9; // each consolidation helps
        }
        assert!(current <= 12, "should keep descending, got {current}");
    }

    #[test]
    fn worsening_epi_reverses() {
        let mut g = search();
        let c1 = g.decide(100.0, 16); // → 15
        let c2 = g.decide(90.0, c1); // better → 14
        let c3 = g.decide(120.0, c2); // worse → back to 15
        assert_eq!((c1, c2, c3), (15, 14, 15));
    }

    #[test]
    fn small_changes_hold_state() {
        let mut g = search();
        let c1 = g.decide(100.0, 16); // 15
        let c2 = g.decide(99.0, c1); // |Δ| = 1% < 2% → hold
        assert_eq!(c2, c1);
    }

    #[test]
    fn oscillation_triggers_exponential_backoff() {
        let mut g = search();
        let mut current = 16;
        // Construct an EPI landscape with a sharp minimum: moving off 14
        // always hurts, so the search bounces 15→14→15→14…
        let epi_for = |count: usize| 100.0 + 10.0 * (count as f64 - 14.0).abs();
        let mut changes = Vec::new();
        for _ in 0..30 {
            let next = g.decide(epi_for(current), current);
            changes.push(next);
            current = next;
        }
        // Back-off must kick in: long stretches without state change.
        let mut longest_hold = 0;
        let mut run = 1;
        for w in changes.windows(2) {
            if w[0] == w[1] {
                run += 1;
                longest_hold = longest_hold.max(run);
            } else {
                run = 1;
            }
        }
        assert!(
            longest_hold >= 4,
            "expected back-off holds, trace {changes:?}"
        );
    }

    #[test]
    fn clamps_at_bounds() {
        let mut g = GreedySearch::new(4, GreedyConfig::default());
        let mut current = 4;
        let mut epi = 100.0;
        for _ in 0..10 {
            current = g.decide(epi, current);
            epi *= 0.8;
        }
        assert_eq!(current, 1, "descends to min_cores and stays");
    }

    #[test]
    fn limit_max_cores_shrinks_only() {
        let mut g = search();
        g.limit_max_cores(12);
        assert_eq!(g.max_cores(), 12);
        // Decommissioned cores never come back: raising is ignored.
        g.limit_max_cores(16);
        assert_eq!(g.max_cores(), 12);
        // Even total loss keeps one core reachable.
        g.limit_max_cores(0);
        assert_eq!(g.max_cores(), 1);
        // The search respects the new cap when waking cores.
        let mut g = GreedySearch::new(4, GreedyConfig::default());
        g.limit_max_cores(2);
        let c1 = g.decide(100.0, 2); // → 1
        assert_eq!(c1, 1);
        let c2 = g.decide(150.0, c1); // worse → reverse upward
        assert!(c2 <= 2, "cap violated: {c2}");
    }

    #[test]
    fn infinite_epi_holds() {
        let mut g = search();
        assert_eq!(g.decide(f64::INFINITY, 16), 16);
        // The next measured epoch starts the search (first shut-down).
        assert_eq!(g.decide(100.0, 16), 15);
        // Improvement keeps descending.
        assert_eq!(g.decide(95.0, 15), 14);
    }
}
