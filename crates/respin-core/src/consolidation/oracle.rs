//! Oracle consolidation: clone-replay of the upcoming epoch.
//!
//! The paper's SH-STT-CC-Oracle picks the optimal number of active cores at
//! every evaluation interval. Our simulator makes that directly computable:
//! the whole [`Chip`] is `Clone`, so before running an epoch we replay it
//! on copies with the active-core count shifted by −radius…+radius (applied
//! to every cluster uniformly per copy, which keeps the replay count at
//! `2·radius + 1` instead of exponential), then pick the offset that
//! minimised *chip-wide* energy per instruction. Clusters are coupled by
//! global barriers, so a chip-wide objective is both what the firmware can
//! actually measure and what avoids cost-externalising; the replay includes
//! all migration and power-gating overheads because it goes through exactly
//! the same machinery.

use respin_sim::Chip;

/// Picks the active-core count for the next epoch, per cluster.
///
/// `radius` bounds how far from the current count the oracle may jump in
/// one epoch (the paper's oracle "adapts immediately"; radius 3–4 lets it
/// cross the whole 4–16 range in a few epochs while keeping replay cost at
/// `2·radius + 1` epoch-runs).
pub fn oracle_decide(chip: &Chip, radius: usize) -> Vec<usize> {
    let max_cores = chip.config.cores_per_cluster;
    let current: Vec<usize> = chip.clusters.iter().map(|c| c.active_cores).collect();

    let mut best_epi = f64::INFINITY;
    let mut best_count = current.clone();

    let r = radius as i64;
    for d in -r..=r {
        let candidate: Vec<usize> = current
            .iter()
            .map(|&c| (c as i64 + d).clamp(1, max_cores as i64) as usize)
            .collect();
        // Skip offsets that clamp to an already-evaluated vector.
        if d != 0 && candidate == current {
            continue;
        }
        let mut replay = chip.clone();
        // Speculative replays must not leak into the trace: only the
        // committed timeline is observable.
        replay.set_tracer(respin_trace::Tracer::disabled());
        for (k, &count) in candidate.iter().enumerate() {
            replay.set_active_cores(k, count);
        }
        let report = replay.run_epoch();
        let instr: u64 = report.cluster_instructions.iter().sum();
        let epi = if instr == 0 {
            f64::INFINITY
        } else {
            report.cluster_energy_pj.iter().sum::<f64>() / instr as f64
        };
        if epi < best_epi {
            best_epi = epi;
            best_count = candidate;
        }
    }
    best_count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchConfig;
    use respin_sim::CacheSizeClass;
    use respin_workloads::Benchmark;

    fn small_oracle_chip() -> Chip {
        let mut config = ArchConfig::ShSttCcOracle.chip_config(CacheSizeClass::Medium, 4);
        config.clusters = 1;
        config.instructions_per_thread = Some(6_000);
        config.epoch_instructions = 1_500;
        Chip::new(config, &Benchmark::Radix.spec(), 1)
    }

    #[test]
    fn oracle_returns_valid_counts() {
        let mut chip = small_oracle_chip();
        chip.run_epoch();
        let counts = oracle_decide(&chip, 2);
        assert_eq!(counts.len(), 1);
        assert!((1..=4).contains(&counts[0]));
    }

    #[test]
    fn oracle_does_not_mutate_the_chip() {
        let mut chip = small_oracle_chip();
        chip.run_epoch();
        let before_tick = chip.tick;
        let before_instr = chip.total_instructions();
        let _ = oracle_decide(&chip, 2);
        assert_eq!(chip.tick, before_tick);
        assert_eq!(chip.total_instructions(), before_instr);
    }

    #[test]
    fn oracle_prefers_fewer_cores_on_idle_heavy_work() {
        // Radix has deeply idle phases; with 4 cores in a cluster the
        // oracle should consolidate below the maximum at least sometimes.
        let mut chip = small_oracle_chip();
        chip.run_epoch();
        let mut saw_consolidation = false;
        for _ in 0..3 {
            let counts = oracle_decide(&chip, 3);
            if counts[0] < 4 {
                saw_consolidation = true;
            }
            chip.set_active_cores(0, counts[0]);
            if chip.run_epoch().finished {
                break;
            }
        }
        assert!(saw_consolidation, "oracle never consolidated radix");
    }
}
