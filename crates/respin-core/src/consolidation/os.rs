//! OS-driven consolidation (the SH-STT-CC-OS comparison point, §V-C).
//!
//! The OS variant differs from the hardware mechanism in two ways, both
//! modelled:
//!
//! 1. **Decision granularity** — the OS evaluates at its 1 ms scheduling
//!    quantum, roughly [`OS_DECISION_STRIDE`] hardware epochs, and compares
//!    EPI aggregated over the whole window.
//! 2. **Context-switch cost** — the chip configuration for this variant
//!    uses [`respin_sim::CtxSwitchModel::Os`], so stacked virtual cores are
//!    switched at 1 ms quanta with microsecond-scale overhead, which is
//!    what lets critical threads bottleneck barrier-heavy applications.

use super::greedy::{GreedyConfig, GreedySearch};
use serde::{Deserialize, Serialize};

/// Hardware epochs per OS decision. The paper's 1 ms OS interval is ≈ 25
/// hardware epochs; our synthetic runs are short enough that 25 would mean
/// *zero* OS decisions per run, so the stride is scaled to 8 — still an
/// order of magnitude coarser than the hardware mechanism, which is the
/// property §V-C's comparison tests.
pub const OS_DECISION_STRIDE: u32 = 8;

/// Greedy search that only acts every [`OS_DECISION_STRIDE`] epochs,
/// aggregating energy and instructions over the window in between.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OsGreedy {
    inner: GreedySearch,
    stride: u32,
    counter: u32,
    window_energy_pj: f64,
    window_instructions: u64,
}

impl OsGreedy {
    /// New OS-granularity search over `max_cores`.
    pub fn new(max_cores: usize, config: GreedyConfig) -> Self {
        Self::with_stride(max_cores, config, OS_DECISION_STRIDE)
    }

    /// As [`Self::new`] with an explicit decision stride (for tests and
    /// sensitivity studies).
    pub fn with_stride(max_cores: usize, config: GreedyConfig, stride: u32) -> Self {
        Self {
            inner: GreedySearch::new(max_cores, config),
            stride: stride.max(1),
            counter: 0,
            window_energy_pj: 0.0,
            window_instructions: 0,
        }
    }

    /// Feeds one hardware epoch's cluster totals; returns a new core count
    /// when an OS decision falls on this epoch, `None` otherwise.
    pub fn observe_epoch(
        &mut self,
        energy_pj: f64,
        instructions: u64,
        current: usize,
    ) -> Option<usize> {
        self.window_energy_pj += energy_pj;
        self.window_instructions += instructions;
        self.counter += 1;
        if self.counter < self.stride {
            return None;
        }
        let epi = if self.window_instructions == 0 {
            f64::INFINITY
        } else {
            self.window_energy_pj / self.window_instructions as f64
        };
        self.counter = 0;
        self.window_energy_pj = 0.0;
        self.window_instructions = 0;
        Some(self.inner.decide(epi, current))
    }

    /// Caps the underlying search at the cluster's healthy-core count
    /// (see [`GreedySearch::limit_max_cores`]).
    pub fn limit_max_cores(&mut self, healthy: usize) {
        self.inner.limit_max_cores(healthy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_only_on_stride_boundaries() {
        let mut os = OsGreedy::with_stride(16, GreedyConfig::default(), 3);
        assert_eq!(os.observe_epoch(100.0, 10, 16), None);
        assert_eq!(os.observe_epoch(100.0, 10, 16), None);
        // Third epoch: first decision = initial shut-down.
        assert_eq!(os.observe_epoch(100.0, 10, 16), Some(15));
    }

    #[test]
    fn window_epi_aggregates() {
        let mut os = OsGreedy::with_stride(16, GreedyConfig::default(), 2);
        os.observe_epoch(50.0, 5, 16);
        let d = os.observe_epoch(150.0, 15, 16); // window EPI = 200/20 = 10
        assert_eq!(d, Some(15));
        // Second window with much better EPI keeps descending.
        os.observe_epoch(40.0, 10, 15);
        assert_eq!(os.observe_epoch(40.0, 10, 15), Some(14));
    }

    #[test]
    fn empty_window_holds() {
        let mut os = OsGreedy::with_stride(16, GreedyConfig::default(), 1);
        assert_eq!(os.observe_epoch(0.0, 0, 16), Some(16));
    }

    #[test]
    fn default_stride_much_coarser_than_hardware() {
        let stride = OS_DECISION_STRIDE;
        assert!(stride >= 8, "stride {stride}");
    }
}
