//! Dynamic core management (§III of the paper).
//!
//! The pieces map one-to-one onto Figure 4:
//!
//! * the **virtual core monitor** ([`vcm`]) measures energy per instruction
//!   per cluster from the chip's epoch reports;
//! * the **energy optimisation algorithm** ([`greedy`]) is the Figure 5
//!   greedy search with its hysteresis threshold and exponential back-off;
//! * the **oracle** ([`oracle`]) replays each upcoming epoch on cloned
//!   simulator state across candidate core counts and picks the argmin —
//!   the paper's SH-STT-CC-Oracle upper bound;
//! * the **OS variant** ([`os`]) makes the same greedy decisions but only
//!   at 1 ms quanta (the chip additionally uses expensive OS context
//!   switches in that configuration).
//!
//! The *mechanism* (virtual→physical remapping, migration, power gating)
//! lives in `respin-sim`; these modules are pure policy.

pub mod greedy;
pub mod oracle;
pub mod os;
pub mod vcm;

pub use greedy::{GreedyConfig, GreedySearch};
pub use oracle::oracle_decide;
pub use os::OsGreedy;
pub use vcm::{EpiMonitor, HealthEvent, HealthMonitor};
