//! Crash-safe campaign persistence: atomic whole-file writes and the
//! append-only result journal.
//!
//! ## Atomic writes
//!
//! Every result-bearing artifact in the workspace (report tables, JSON
//! exports, trace files) goes through [`atomic_write`]: write to a
//! sibling `*.tmp`, `fsync`, `rename` over the destination, then `fsync`
//! the directory. A reader therefore sees either the old file or the new
//! one — never a torn half-write — and a `SIGKILL` mid-campaign cannot
//! leave a plausible-looking but truncated report behind. Lint rule D006
//! flags bare `fs::write`/`File::create` in result-bearing crates to
//! keep new call sites on this path.
//!
//! ## The result journal
//!
//! A campaign started with `--checkpoint-dir DIR` appends one JSONL
//! record to `DIR/journal.jsonl` per *completed* run (and one `failed`
//! record per panicked run). Each line is self-validating:
//!
//! ```json
//! {"v":1,"crc":1234567890,"record":{"key":"{...options...}","outcome":{...}}}
//! ```
//!
//! `crc` is FNV-1a 64 over the serialised `record` text (the same hash
//! the chip snapshots use — see [`fnv1a64`]). Appends are flushed with
//! `fdatasync` per record, so at most the final record can be torn by a
//! crash. On `--resume`, [`replay`] validates every line, stops at the
//! first invalid one, reports it as a structured diagnostic
//! (`JRN-TORN`), and truncates the file back to the valid prefix via
//! [`atomic_write`]; the surviving `ok` records warm the [`RunCache`]
//! so only the remaining runs execute. Since the journal stores exact
//! [`RunResult`]s (the vendored JSON round-trips every finite `f64`
//! bit-exactly), a resumed campaign's final report is byte-identical to
//! a never-interrupted one.
//!
//! `failed` records are **retryable**: they document the panic for the
//! partial-failure report but do not warm the cache, so a resume retries
//! those keys.
//!
//! [`RunCache`]: crate::experiments::common::RunCache

use parking_lot::Mutex;
use respin_power::diag::{Report, Violation};
pub use respin_sim::snapshot::fnv1a64;
use respin_sim::RunResult;
use serde::{de_field, Deserialize, Serialize, Value};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Journal line-format version; bump on any layout change.
pub const JOURNAL_FORMAT_VERSION: u64 = 1;

/// File name of the result journal inside a checkpoint directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// Writes `bytes` to `path` atomically: tmp file + `fsync` + `rename`,
/// then a best-effort `fsync` of the parent directory so the rename
/// itself is durable. Readers observe the old contents or the new,
/// never a prefix.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::other(format!("{} has no file name", path.display())))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        // The one sanctioned direct creation: this helper IS the atomic
        // discipline every other call site is routed through.
        // respin-lint: allow(D006, reason="atomic_write implementation itself; tmp+fsync+rename happens right here")
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            // Directory fsync is advisory on some filesystems; failure to
            // sync the rename record is not failure to write the data.
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Outcome of one journaled run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The run completed; the exact result is stored (boxed: a full
    /// `RunResult` dwarfs the `Failed` message, and records are heap
    /// round-trips anyway).
    Ok(Box<RunResult>),
    /// The run panicked with this message. Failed records are retryable:
    /// they never warm the cache, so a resume re-executes the key.
    Failed(String),
}

/// One journal record: a run identity (the canonical serialised
/// `RunOptions` key) and its outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Canonical cache key (serialised `RunOptions`).
    pub key: String,
    /// What happened to the run.
    pub outcome: RunOutcome,
}

impl JournalRecord {
    /// A completed-run record.
    pub fn ok(key: impl Into<String>, result: &RunResult) -> Self {
        Self {
            key: key.into(),
            outcome: RunOutcome::Ok(Box::new(result.clone())),
        }
    }

    /// A failed-retryable record.
    pub fn failed(key: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            key: key.into(),
            outcome: RunOutcome::Failed(message.into()),
        }
    }
}

/// Serialises one journal line (without the trailing newline).
pub fn encode_record(record: &JournalRecord) -> String {
    let body = serde_json::to_string(record).expect("journal record serialises");
    let crc = fnv1a64(body.as_bytes());
    format!("{{\"v\":{JOURNAL_FORMAT_VERSION},\"crc\":{crc},\"record\":{body}}}")
}

/// Parses and validates one journal line. The error string names what
/// failed (for the `JRN-TORN` diagnostic); callers treat any error as
/// "this line and everything after it is unusable".
pub fn decode_record(line: &str) -> Result<JournalRecord, String> {
    let value: Value = serde_json::from_str(line).map_err(|e| format!("not valid JSON: {e}"))?;
    let version: u64 = de_field(&value, "v").map_err(|e| e.to_string())?;
    if version != JOURNAL_FORMAT_VERSION {
        return Err(format!(
            "record format v{version}, this reader is v{JOURNAL_FORMAT_VERSION}"
        ));
    }
    let crc: u64 = de_field(&value, "crc").map_err(|e| e.to_string())?;
    let record = value.get("record").ok_or("missing record field")?;
    // Re-serialising the parsed record reproduces the writer's exact
    // bytes (field order preserved, floats shortest-exact), so the CRC
    // check covers the full record content.
    let body = serde_json::to_string(record).map_err(|e| e.to_string())?;
    let actual = fnv1a64(body.as_bytes());
    if actual != crc {
        return Err(format!(
            "checksum mismatch: stored {crc}, computed {actual}"
        ));
    }
    JournalRecord::from_value(record).map_err(|e| e.to_string())
}

/// Append handle to a campaign's result journal. Cheap to clone behind
/// an `Arc`; appends are serialised by an internal lock and flushed with
/// `fdatasync` per record so a crash can tear at most the final line.
#[derive(Debug)]
pub struct ResultJournal {
    path: PathBuf,
    file: Mutex<File>,
}

impl ResultJournal {
    /// Opens (creating if needed) the journal under `dir` for appending.
    pub fn open(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        // Append-only by construction (`OpenOptions`, not `File::create`,
        // so D006 does not fire): existing records are never rewritten
        // through this handle — repair happens in `replay`, before the
        // handle is opened.
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self {
            path,
            file: Mutex::new(file),
        })
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record durably (line + newline + `fdatasync`).
    pub fn append(&self, record: &JournalRecord) -> io::Result<()> {
        let mut line = encode_record(record);
        line.push('\n');
        let mut f = self.file.lock();
        f.write_all(line.as_bytes())?;
        f.sync_data()
    }
}

/// Outcome of replaying a journal.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// Every valid record, in append order.
    pub records: Vec<JournalRecord>,
    /// Diagnostics: one `JRN-TORN` warning when a torn/corrupt suffix
    /// was found (and truncated away).
    pub report: Report,
    /// True when the file had to be truncated back to its valid prefix.
    pub truncated: bool,
}

impl JournalReplay {
    /// The number of `Ok` records (cache-warming entries).
    pub fn completed(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, RunOutcome::Ok(_)))
            .count()
    }

    /// The number of `Failed` (retryable) records.
    pub fn failed(&self) -> usize {
        self.records.len() - self.completed()
    }
}

/// Replays the journal under `dir`, validating every record. The first
/// invalid line — a torn tail from a mid-append crash, or any corrupted
/// record — ends the valid prefix: it is reported as a structured
/// `JRN-TORN` warning, everything from it onward is dropped, and the
/// file is truncated back to the valid prefix via [`atomic_write`] so
/// subsequent appends extend a clean journal. A missing journal is an
/// empty (clean) replay, not an error.
pub fn replay(dir: &Path) -> io::Result<JournalReplay> {
    let path = dir.join(JOURNAL_FILE);
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(JournalReplay::default()),
        Err(e) => return Err(e),
    };
    let mut out = JournalReplay::default();
    let mut valid_bytes = 0usize;
    let mut offset = 0usize;
    for (idx, line) in text.split_inclusive('\n').enumerate() {
        let line_start = offset;
        offset += line.len();
        let body = line.strip_suffix('\n');
        let complete = body.is_some();
        let body = body.unwrap_or(line);
        if body.is_empty() {
            // A bare newline is tolerated (not produced by the writer,
            // but harmless); it stays part of the valid prefix.
            valid_bytes = offset;
            continue;
        }
        // A line without a trailing newline is by definition the torn
        // tail of an interrupted append, even if it happens to parse.
        let verdict = if complete {
            decode_record(body)
        } else {
            Err("no trailing newline (append interrupted)".to_string())
        };
        match verdict {
            Ok(record) => {
                out.records.push(record);
                valid_bytes = offset;
            }
            Err(why) => {
                out.report.push(Violation::warning(
                    "JRN-TORN",
                    "result journal integrity",
                    format!("{}:{}", path.display(), idx + 1),
                    format!(
                        "record at byte {line_start} is invalid ({why}); truncating journal to \
                         its {valid_bytes}-byte valid prefix and re-running the affected keys"
                    ),
                ));
                break;
            }
        }
    }
    if valid_bytes < text.len() {
        out.truncated = true;
        atomic_write(&path, &text.as_bytes()[..valid_bytes])?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_result(ticks: u64) -> RunResult {
        RunResult {
            ticks,
            time_ps: ticks as f64 * 0.4 + 0.1, // non-trivial float
            instructions: ticks / 2,
            energy: Default::default(),
            stats: respin_sim::ChipStats::new(1),
        }
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let dir = std::env::temp_dir().join("respin-persist-aw-test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.txt");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        // No tmp residue.
        assert!(!dir.join("out.txt.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_roundtrip_is_exact() {
        let rec = JournalRecord::ok("{\"arch\":\"ShStt\"}", &tiny_result(12345));
        let line = encode_record(&rec);
        let back = decode_record(&line).unwrap();
        assert_eq!(rec, back);
        // Failed records too.
        let rec = JournalRecord::failed("k", "boom: index 3");
        assert_eq!(decode_record(&encode_record(&rec)).unwrap(), rec);
    }

    #[test]
    fn corrupted_record_is_rejected() {
        let line = encode_record(&JournalRecord::ok("key", &tiny_result(7)));
        // Flip a digit inside the record body.
        let pos = line.rfind("\"ticks\":7").expect("ticks field");
        let mut bad = line.clone().into_bytes();
        bad[pos + "\"ticks\":".len()] = b'8';
        let bad = String::from_utf8(bad).unwrap();
        let err = decode_record(&bad).expect_err("corruption must fail the CRC");
        assert!(err.contains("checksum"), "{err}");
    }

    #[test]
    fn replay_truncates_torn_tail_and_keeps_prefix() {
        let dir = std::env::temp_dir().join("respin-persist-replay-test");
        let _ = fs::remove_dir_all(&dir);
        let journal = ResultJournal::open(&dir).unwrap();
        let r1 = JournalRecord::ok("k1", &tiny_result(10));
        let r2 = JournalRecord::ok("k2", &tiny_result(20));
        journal.append(&r1).unwrap();
        journal.append(&r2).unwrap();
        drop(journal);
        // Simulate a crash mid-append: half a third record, no newline.
        let path = dir.join(JOURNAL_FILE);
        let mut text = fs::read_to_string(&path).unwrap();
        let torn = encode_record(&JournalRecord::ok("k3", &tiny_result(30)));
        text.push_str(&torn[..torn.len() / 2]);
        fs::write(&path, &text).unwrap();

        let replay1 = replay(&dir).unwrap();
        assert_eq!(replay1.records, vec![r1.clone(), r2.clone()]);
        assert!(replay1.truncated);
        assert!(replay1
            .report
            .violations
            .iter()
            .any(|v| v.code == "JRN-TORN"));

        // The file was repaired: replaying again is clean, and appending
        // extends the valid prefix.
        let replay2 = replay(&dir).unwrap();
        assert!(!replay2.truncated);
        assert_eq!(replay2.records.len(), 2);
        let journal = ResultJournal::open(&dir).unwrap();
        let r3 = JournalRecord::failed("k3", "panicked");
        journal.append(&r3).unwrap();
        let replay3 = replay(&dir).unwrap();
        assert_eq!(replay3.records, vec![r1, r2, r3]);
        assert_eq!(replay3.completed(), 2);
        assert_eq!(replay3.failed(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_of_missing_journal_is_empty_and_clean() {
        let dir = std::env::temp_dir().join("respin-persist-missing-test");
        let _ = fs::remove_dir_all(&dir);
        let r = replay(&dir).unwrap();
        assert!(r.records.is_empty());
        assert!(!r.truncated);
        assert!(r.report.is_clean());
    }
}
