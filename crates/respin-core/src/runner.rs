//! Builds chips and drives runs: configuration × benchmark × policy.

use crate::arch::{ArchConfig, PolicyKind};
use crate::consolidation::{oracle_decide, EpiMonitor, GreedyConfig, GreedySearch, OsGreedy};
use respin_power::diag::Report;
use respin_sim::{CacheSizeClass, Chip, ChipConfig, RunResult};
use respin_trace::{TraceEvent, TraceKind, Tracer};
use respin_workloads::Benchmark;
use serde::{de_field, Deserialize, Error, Serialize, Value};

/// Everything needed to reproduce one run.
///
/// `PartialEq`, `Serialize` and `Deserialize` cover only the *physics*
/// fields — the [`Tracer`] (observation-only) and `cluster_workers`
/// (host-execution speed, bit-identical results by contract) are
/// excluded, so two option sets that simulate identically compare (and
/// cache) as equal whether or not one is traced or sharded.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Architecture configuration (Table IV).
    pub arch: ArchConfig,
    /// Benchmark (SPLASH2/PARSEC analogue).
    pub benchmark: Benchmark,
    /// Cache sizing class (Table I).
    pub size: CacheSizeClass,
    /// Clusters on the chip.
    pub clusters: usize,
    /// Cores per cluster.
    pub cores_per_cluster: usize,
    /// Seed for variation and workload streams.
    pub seed: u64,
    /// Override of the per-thread instruction budget (None = the
    /// benchmark's default, 160 K). This is the *measured* budget; the
    /// warm-up runs on top of it.
    pub instructions_per_thread: Option<u64>,
    /// Warm-up instructions per thread executed before statistics and
    /// energy accounts are zeroed (the paper excludes the startup phase).
    pub warmup_per_thread: u64,
    /// Oracle search radius (candidate offsets per epoch).
    pub oracle_radius: usize,
    /// Consolidation epoch length override, instructions per cluster
    /// (None = the paper's 160 K).
    pub epoch_instructions: Option<u64>,
    /// Drive the chip with the naive tick-by-tick reference loop instead
    /// of the event-driven fast path (default `false`). Results are
    /// bit-identical by contract; the flag selects *how* the run is
    /// executed, so it participates in equality and cache keys — a
    /// reference run and a fast run memoise separately, which is exactly
    /// what the differential tests and the perf harness need.
    pub reference_loop: bool,
    /// Observability handle installed on the built chip. Disabled by
    /// default; never part of equality, serialisation, or cache keys.
    pub trace: Tracer,
    /// Worker budget for intra-run cluster sharding (`None` = resolve
    /// from `RESPIN_CLUSTER_WORKERS`, else the shared thread budget —
    /// see [`RunOptions::resolved_cluster_workers`]). Results are
    /// bit-identical at every width by contract, so like the tracer this
    /// is a host-execution knob: never part of equality, serialisation,
    /// or cache keys.
    pub cluster_workers: Option<usize>,
}

impl PartialEq for RunOptions {
    fn eq(&self, other: &Self) -> bool {
        self.arch == other.arch
            && self.benchmark == other.benchmark
            && self.size == other.size
            && self.clusters == other.clusters
            && self.cores_per_cluster == other.cores_per_cluster
            && self.seed == other.seed
            && self.instructions_per_thread == other.instructions_per_thread
            && self.warmup_per_thread == other.warmup_per_thread
            && self.oracle_radius == other.oracle_radius
            && self.epoch_instructions == other.epoch_instructions
            && self.reference_loop == other.reference_loop
    }
}

// Hand-written (rather than derived) to exclude the tracer: the
// serialised form is the canonical run identity used as the experiment
// cache key, and a sink has no meaningful serialisation anyway.
impl Serialize for RunOptions {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("arch".to_string(), self.arch.to_value()),
            ("benchmark".to_string(), self.benchmark.to_value()),
            ("size".to_string(), self.size.to_value()),
            ("clusters".to_string(), self.clusters.to_value()),
            (
                "cores_per_cluster".to_string(),
                self.cores_per_cluster.to_value(),
            ),
            ("seed".to_string(), self.seed.to_value()),
            (
                "instructions_per_thread".to_string(),
                self.instructions_per_thread.to_value(),
            ),
            (
                "warmup_per_thread".to_string(),
                self.warmup_per_thread.to_value(),
            ),
            ("oracle_radius".to_string(), self.oracle_radius.to_value()),
            (
                "epoch_instructions".to_string(),
                self.epoch_instructions.to_value(),
            ),
            ("reference_loop".to_string(), self.reference_loop.to_value()),
        ])
    }
}

impl Deserialize for RunOptions {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Self {
            arch: de_field(v, "arch")?,
            benchmark: de_field(v, "benchmark")?,
            size: de_field(v, "size")?,
            clusters: de_field(v, "clusters")?,
            cores_per_cluster: de_field(v, "cores_per_cluster")?,
            seed: de_field(v, "seed")?,
            instructions_per_thread: de_field(v, "instructions_per_thread")?,
            warmup_per_thread: de_field(v, "warmup_per_thread")?,
            oracle_radius: de_field(v, "oracle_radius")?,
            epoch_instructions: de_field(v, "epoch_instructions")?,
            reference_loop: de_field(v, "reference_loop")?,
            trace: Tracer::disabled(),
            cluster_workers: None,
        })
    }
}

impl RunOptions {
    /// The paper's default machine: 64 cores as 4 × 16-core clusters,
    /// medium caches, seed 42.
    pub fn new(arch: ArchConfig, benchmark: Benchmark) -> Self {
        Self {
            arch,
            benchmark,
            size: CacheSizeClass::Medium,
            clusters: 4,
            cores_per_cluster: 16,
            seed: 42,
            instructions_per_thread: None,
            warmup_per_thread: 16_000,
            oracle_radius: 3,
            epoch_instructions: None,
            reference_loop: false,
            trace: Tracer::disabled(),
            cluster_workers: None,
        }
    }

    /// Returns these options with `tracer` installed (chained form for
    /// experiment code that otherwise treats options as immutable).
    pub fn traced(mut self, tracer: Tracer) -> Self {
        self.trace = tracer;
        self
    }

    /// The measured per-thread instruction budget.
    pub fn measured_per_thread(&self) -> u64 {
        self.instructions_per_thread
            .unwrap_or(respin_workloads::suite::DEFAULT_INSTRUCTIONS_PER_THREAD)
    }

    /// The resolved simulator configuration these options describe.
    pub fn chip_config(&self) -> ChipConfig {
        let mut config = self.arch.chip_config(self.size, self.cores_per_cluster);
        config.clusters = self.clusters;
        config.instructions_per_thread = Some(self.measured_per_thread() + self.warmup_per_thread);
        if let Some(epoch) = self.epoch_instructions {
            config.epoch_instructions = epoch;
        }
        config
    }

    /// Builds the chip for these options (stream = warm-up + measured),
    /// panicking on an invalid configuration.
    pub fn build_chip(&self) -> Chip {
        match self.try_build_chip() {
            Ok(chip) => chip,
            Err(report) => panic!("invalid run options:\n{report}"),
        }
    }

    /// Builds the chip, returning the full diagnostic [`Report`] when the
    /// resolved configuration violates a structural invariant.
    pub fn try_build_chip(&self) -> Result<Chip, Report> {
        let mut chip = Chip::try_new(self.chip_config(), &self.benchmark.spec(), self.seed)?;
        chip.set_reference_loop(self.reference_loop);
        chip.set_tracer(self.trace.clone());
        chip.set_cluster_workers(self.resolved_cluster_workers());
        Ok(chip)
    }

    /// The cluster-shard worker width this run should use: an explicit
    /// `cluster_workers` wins, then the `RESPIN_CLUSTER_WORKERS`
    /// environment variable (same spelling convention as
    /// `RESPIN_THREADS`), then the shared thread budget. A run already
    /// executing *on* a pool worker (run-level parallelism) resolves to
    /// 1, so `--threads`/`RESPIN_THREADS` bounds total parallelism
    /// whichever level is spending it; `RESPIN_CLUSTER_WORKERS` exists
    /// to force intra-run width explicitly (the CI determinism legs use
    /// it). Never affects results — only how fast they arrive.
    pub fn resolved_cluster_workers(&self) -> usize {
        if let Some(n) = self.cluster_workers {
            return n.max(1);
        }
        if let Ok(raw) = std::env::var("RESPIN_CLUSTER_WORKERS") {
            if let Ok(n) = raw.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        if respin_pool::in_worker() {
            1
        } else {
            respin_pool::resolved_threads()
        }
    }
}

/// Runs to completion under the configuration's consolidation policy,
/// after the warm-up (caches warm, measurements zeroed).
pub fn run(opts: &RunOptions) -> RunResult {
    run_instrumented(opts).0
}

/// [`run`], also returning the number of ticks the event-driven fast
/// path batch-skipped (warm-up included; always 0 when
/// `opts.reference_loop`). The skip count is an execution metric, not a
/// simulation output, which is why it rides alongside [`RunResult`]
/// instead of inside it.
pub fn run_instrumented(opts: &RunOptions) -> (RunResult, u64) {
    let mut chip = prepare_chip(opts);
    let result = drive_policy(opts, &mut chip);
    let skipped = chip.ticks_skipped();
    (result, skipped)
}

/// Builds the chip and runs the warm-up (statistics zeroed at the end).
///
/// The warm boundary is the canonical snapshot point: the consolidation
/// policies are constructed *after* warm-up by [`drive_policy`], so a
/// warm chip is the complete resumable state of a run — no policy
/// internals exist yet to capture.
pub fn prepare_chip(opts: &RunOptions) -> Chip {
    let mut chip = opts.build_chip();
    chip.run_warmup(opts.warmup_per_thread * chip.config.total_cores() as u64);
    chip
}

/// Drives a (warm) chip to completion under the options' policy.
pub fn drive_policy(opts: &RunOptions, chip: &mut Chip) -> RunResult {
    match opts.arch.policy() {
        PolicyKind::None => chip.run_to_completion(),
        PolicyKind::Greedy => run_greedy(chip),
        PolicyKind::OsGreedy => run_os_greedy(chip),
        PolicyKind::Oracle => run_oracle(chip, opts.oracle_radius),
    }
}

/// FNV-1a 64 hash of the canonical serialised options — the run
/// identity a chip snapshot is bound to (`options_key_hash` in the
/// snapshot header). Uses the same serialisation as the experiment
/// cache key, so snapshot identity and cache identity can never
/// disagree.
pub fn options_key_hash(opts: &RunOptions) -> u64 {
    let key = serde_json::to_string(opts).expect("options serialise");
    respin_sim::snapshot::fnv1a64(key.as_bytes())
}

/// Builds, warms, and serialises the chip for `opts` into a versioned
/// snapshot (epoch 0 of the measured window).
pub fn warm_snapshot(opts: &RunOptions) -> String {
    let chip = prepare_chip(opts);
    respin_sim::snapshot::encode(&chip, options_key_hash(opts), 0)
}

/// Restores a snapshot taken for `opts` and drives it to completion
/// under the configured policy. The snapshot must have been written
/// with the same options (enforced through the header's key hash);
/// any mismatch, version skew, or corruption comes back as a
/// structured [`Report`] — never a panic — so callers can log it and
/// fall back to a cold [`run`].
pub fn run_from_snapshot(text: &str, opts: &RunOptions) -> Result<RunResult, Report> {
    let (mut chip, _header) = respin_sim::snapshot::decode(text, options_key_hash(opts))?;
    // The tracer and the cluster-shard width are deliberately not
    // serialised; reinstall the caller's.
    chip.set_tracer(opts.trace.clone());
    chip.set_cluster_workers(opts.resolved_cluster_workers());
    Ok(drive_policy(opts, &mut chip))
}

/// Chip-wide EPI of one epoch. Clusters are coupled by global barriers:
/// consolidating one cluster can push wait-time energy onto the others, so
/// optimising *per-cluster* EPI lets every cluster externalise its cost.
/// The VCM's counters are chip-visible (Figure 4), so the search optimises
/// the chip-wide quantity.
fn epoch_epi(report: &respin_sim::EpochReport) -> f64 {
    epoch_epi_public(report)
}

/// Chip-wide EPI of an epoch report (shared with the ablation driver).
pub fn epoch_epi_public(report: &respin_sim::EpochReport) -> f64 {
    let instr: u64 = report.cluster_instructions.iter().sum();
    if instr == 0 {
        return f64::INFINITY;
    }
    report.cluster_energy_pj.iter().sum::<f64>() / instr as f64
}

fn run_greedy(chip: &mut Chip) -> RunResult {
    let n = chip.config.cores_per_cluster;
    let mut policies: Vec<GreedySearch> = (0..chip.clusters.len())
        .map(|_| GreedySearch::new(n, GreedyConfig::default()))
        .collect();
    // Trace-only bookkeeping: the relative EPI change the Figure 5
    // flowchart branches on, and the 0-based index of the epoch that
    // just ended (run_epoch starts counting after the warm-up reset).
    let mut epi_monitor = EpiMonitor::new();
    let mut epoch: u64 = 0;
    loop {
        let report = chip.run_epoch();
        if report.finished {
            return chip.result();
        }
        let epi = epoch_epi(&report);
        let epi_delta = epi_monitor.observe(epi);
        for (k, policy) in policies.iter_mut().enumerate() {
            // Decommissioned cores leave the search space for good.
            policy.limit_max_cores(report.healthy_cores[k]);
            let next = policy.decide(epi, report.active_cores[k]);
            chip.tracer().emit(|| {
                TraceEvent::at(
                    report.end_tick,
                    TraceKind::VcmDecision {
                        cluster: k,
                        epoch,
                        epi_pj: respin_trace::finite_or_zero(epi),
                        epi_delta,
                        current: report.active_cores[k],
                        target: next,
                    },
                )
            });
            if next != report.active_cores[k] {
                chip.set_active_cores(k, next);
            }
        }
        epoch += 1;
    }
}

fn run_os_greedy(chip: &mut Chip) -> RunResult {
    let n = chip.config.cores_per_cluster;
    let mut policies: Vec<OsGreedy> = (0..chip.clusters.len())
        .map(|_| OsGreedy::new(n, GreedyConfig::default()))
        .collect();
    let mut epi_monitor = EpiMonitor::new();
    let mut epoch: u64 = 0;
    loop {
        let report = chip.run_epoch();
        if report.finished {
            return chip.result();
        }
        let energy: f64 = report.cluster_energy_pj.iter().sum();
        let instr: u64 = report.cluster_instructions.iter().sum();
        let epi = epoch_epi(&report);
        let epi_delta = epi_monitor.observe(epi);
        for (k, policy) in policies.iter_mut().enumerate() {
            policy.limit_max_cores(report.healthy_cores[k]);
            if let Some(next) = policy.observe_epoch(energy, instr, report.active_cores[k]) {
                chip.tracer().emit(|| {
                    TraceEvent::at(
                        report.end_tick,
                        TraceKind::VcmDecision {
                            cluster: k,
                            epoch,
                            epi_pj: respin_trace::finite_or_zero(epi),
                            epi_delta,
                            current: report.active_cores[k],
                            target: next,
                        },
                    )
                });
                if next != report.active_cores[k] {
                    chip.set_active_cores(k, next);
                }
            }
        }
        epoch += 1;
    }
}

fn run_oracle(chip: &mut Chip, radius: usize) -> RunResult {
    loop {
        if chip.finished() {
            return chip.result();
        }
        let counts = oracle_decide(chip, radius);
        for (k, &count) in counts.iter().enumerate() {
            if count != chip.clusters[k].active_cores {
                chip.set_active_cores(k, count);
            }
        }
        let report = chip.run_epoch();
        if report.finished {
            return chip.result();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(arch: ArchConfig) -> RunOptions {
        let mut o = RunOptions::new(arch, Benchmark::Radix);
        o.clusters = 1;
        o.cores_per_cluster = 4;
        o.instructions_per_thread = Some(8_000);
        o.warmup_per_thread = 2_000;
        o
    }

    fn quick_with_epoch(arch: ArchConfig) -> RunResult {
        let mut chip = {
            let o = quick(arch);
            let mut config = o.arch.chip_config(o.size, o.cores_per_cluster);
            config.clusters = o.clusters;
            config.instructions_per_thread = Some(o.measured_per_thread() + o.warmup_per_thread);
            config.epoch_instructions = 2_000;
            Chip::new(config, &o.benchmark.spec(), o.seed)
        };
        chip.run_warmup(2_000 * 4);
        match arch.policy() {
            PolicyKind::None => chip.run_to_completion(),
            PolicyKind::Greedy => run_greedy(&mut chip),
            PolicyKind::OsGreedy => run_os_greedy(&mut chip),
            PolicyKind::Oracle => run_oracle(&mut chip, 2),
        }
    }

    #[test]
    fn every_configuration_completes() {
        for arch in ArchConfig::ALL {
            let res = quick_with_epoch(arch);
            // The measured window covers everything after the warm-up
            // (roughly the measured budget, minus warm-up overshoot).
            assert!(
                res.instructions >= 4 * 7_000,
                "{}: {} instructions",
                arch.name(),
                res.instructions
            );
            assert!(res.energy.chip_total_pj() > 0.0, "{}", arch.name());
        }
    }

    #[test]
    fn greedy_consolidation_turns_cores_off() {
        let res = quick_with_epoch(ArchConfig::ShSttCc);
        let trace = &res.stats.consolidation_trace;
        assert!(
            trace.iter().any(|&(_, active)| active < 4),
            "no consolidation happened: {trace:?}"
        );
        assert!(res.stats.migrations > 0);
    }

    #[test]
    fn oracle_saves_at_least_as_much_as_greedy_on_radix() {
        let greedy = quick_with_epoch(ArchConfig::ShSttCc);
        let oracle = quick_with_epoch(ArchConfig::ShSttCcOracle);
        // Allow a sliver of slack: the oracle optimises per-epoch, not
        // globally, so tiny inversions can occur on short runs.
        assert!(
            oracle.energy.chip_total_pj() <= greedy.energy.chip_total_pj() * 1.05,
            "oracle {} vs greedy {}",
            oracle.energy.chip_total_pj(),
            greedy.energy.chip_total_pj()
        );
    }

    #[test]
    fn try_build_chip_reports_structured_diagnostics() {
        let mut o = quick(ArchConfig::ShStt);
        o.epoch_instructions = Some(0);
        let report = o.try_build_chip().expect_err("zero epoch must be rejected");
        assert!(
            report.violations.iter().any(|v| v.code == "CFG-EPOCH"),
            "{report}"
        );
        o.epoch_instructions = None;
        assert!(o.try_build_chip().is_ok());
    }

    #[test]
    fn reference_loop_matches_fast_path_through_policies() {
        for arch in [ArchConfig::ShStt, ArchConfig::ShSttCc] {
            let fast = run(&quick(arch));
            let mut o = quick(arch);
            o.reference_loop = true;
            let reference = run(&o);
            assert_eq!(fast, reference, "loops diverged for {}", arch.name());
        }
    }

    #[test]
    fn reference_loop_is_part_of_run_identity() {
        let fast = quick(ArchConfig::ShStt);
        let mut reference = fast.clone();
        reference.reference_loop = true;
        assert_ne!(fast, reference);
        assert_ne!(
            serde_json::to_string(&fast).unwrap(),
            serde_json::to_string(&reference).unwrap(),
            "cache keys must distinguish the two execution strategies"
        );
    }

    #[test]
    fn snapshot_resume_matches_uninterrupted_run_under_every_policy() {
        for arch in [
            ArchConfig::ShStt,     // PolicyKind::None
            ArchConfig::ShSttCc,   // Greedy
            ArchConfig::ShSttCcOs, // OsGreedy
        ] {
            let o = quick(arch);
            let snap = warm_snapshot(&o);
            let resumed = run_from_snapshot(&snap, &o).expect("own snapshot restores");
            let uninterrupted = run(&o);
            assert_eq!(
                resumed,
                uninterrupted,
                "{}: snapshot→restore→drive must be bit-identical",
                arch.name()
            );
        }
    }

    #[test]
    fn snapshot_for_different_options_is_rejected_structurally() {
        let o = quick(ArchConfig::ShStt);
        let snap = warm_snapshot(&o);
        let mut other = o.clone();
        other.seed = 43;
        let report = run_from_snapshot(&snap, &other)
            .expect_err("restoring under different options must be refused");
        assert!(
            report.violations.iter().any(|v| v.code == "SNAP-KEY"),
            "{report}"
        );
    }

    #[test]
    fn cluster_workers_is_not_part_of_run_identity() {
        let base = quick(ArchConfig::ShStt);
        let mut wide = base.clone();
        wide.cluster_workers = Some(4);
        assert_eq!(base, wide, "a speed knob must not split the cache");
        assert_eq!(
            serde_json::to_string(&base).unwrap(),
            serde_json::to_string(&wide).unwrap(),
            "cache keys must not encode host parallelism"
        );
        assert_eq!(options_key_hash(&base), options_key_hash(&wide));
    }

    #[test]
    fn cluster_sharded_runs_match_sequential_through_policies() {
        // `quick` uses one cluster (sharding inert); spread the same
        // budget over two clusters so the team actually engages, and
        // drive through the full runner path — warm-up, policy, report.
        let multi = |arch: ArchConfig, workers: usize| {
            let mut o = quick(arch);
            o.clusters = 2;
            o.cores_per_cluster = 2;
            o.cluster_workers = Some(workers);
            o
        };
        for arch in [ArchConfig::ShStt, ArchConfig::ShSttCc] {
            let want = run(&multi(arch, 1));
            for workers in [2, 4] {
                assert_eq!(
                    run(&multi(arch, workers)),
                    want,
                    "sharded run diverged for {} at {workers} workers",
                    arch.name()
                );
            }
        }
    }

    #[test]
    fn snapshot_resume_is_sharding_oblivious() {
        // A snapshot taken by a sequential session must resume
        // bit-identically in a sharded session and vice versa.
        let mut o = quick(ArchConfig::ShSttCc);
        o.clusters = 2;
        o.cores_per_cluster = 2;
        let snap = warm_snapshot(&o);
        let sequential = run_from_snapshot(&snap, &o).expect("own snapshot restores");
        let mut wide = o.clone();
        wide.cluster_workers = Some(4);
        let sharded = run_from_snapshot(&snap, &wide).expect("same snapshot, wider session");
        assert_eq!(sequential, sharded);
    }

    #[test]
    fn deterministic_runs() {
        let a = run(&quick(ArchConfig::ShStt));
        let b = run(&quick(ArchConfig::ShStt));
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.energy, b.energy);
    }
}
