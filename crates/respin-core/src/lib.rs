//! # respin-core — the Respin architecture
//!
//! This crate is the paper's contribution layer on top of the simulator
//! substrate:
//!
//! * [`arch`] — the eight architecture configurations of Table IV
//!   (`PR-SRAM-NT`, `HP-SRAM-CMP`, `SH-SRAM-Nom`, `SH-STT`, `SH-STT-CC`,
//!   `SH-STT-CC-Oracle`, `PR-STT-CC`, `SH-STT-CC-OS`), each a recipe for a
//!   [`respin_sim::ChipConfig`] plus a consolidation policy.
//! * [`consolidation`] — the §III dynamic core-management system: the
//!   virtual-core monitor's EPI tracking, the Figure 5 greedy search with
//!   hysteresis threshold and exponential back-off, the clone-replay
//!   oracle, and the coarse OS-interval variant.
//! * [`runner`] — builds a chip for (configuration, benchmark, cache size,
//!   cluster size, seed), drives epochs through the policy, and returns a
//!   [`respin_sim::RunResult`].
//! * [`experiments`] — one module per table/figure of §V, regenerating the
//!   paper's rows; the `respin-experiments` binary is their CLI.
//! * [`report`] — text-table and JSON rendering.
//! * [`persist`] — crash-safe campaign persistence: atomic artifact
//!   writes and the append-only result journal behind the experiment
//!   CLI's `--checkpoint-dir` / `--resume` flags.
//!
//! ## Quickstart
//!
//! ```
//! use respin_core::{arch::ArchConfig, runner::{self, RunOptions}};
//! use respin_workloads::Benchmark;
//!
//! let mut opts = RunOptions::new(ArchConfig::ShStt, Benchmark::Fft);
//! opts.instructions_per_thread = Some(2_000); // keep the doctest fast
//! opts.warmup_per_thread = 500;
//! opts.clusters = 1;
//! opts.cores_per_cluster = 4;
//! let result = runner::run(&opts);
//! assert!(result.instructions >= 4 * 1_500);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Tests may unwrap: a panic IS the failure report there.
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(clippy::all)]

pub mod arch;
pub mod consolidation;
pub mod experiments;
pub mod persist;
pub mod report;
pub mod runner;

pub use arch::ArchConfig;
pub use runner::{run, RunOptions};
