//! Figure 10: histogram of requests arriving at the shared DL1 per cache
//! cycle (reads, writes, and line fills).
//!
//! Paper (mean over the suite): 49% of cache cycles see no request, 21%
//! one, 15% two, 9% three, 6% four or more.

use super::common::{ExpParams, RunCache};
use crate::arch::ArchConfig;
use crate::report::{frac, TextTable};
use respin_sim::SharedL1Stats;
use respin_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// Arrival distribution of one benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Row {
    /// Benchmark name ("mean" for the summary row).
    pub benchmark: String,
    /// Fractions of cache cycles with 0,1,2,3,4+ arrivals.
    pub fractions: [f64; 5],
}

/// Figure 10 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10 {
    /// The five benchmarks the paper plots plus the suite mean.
    pub rows: Vec<Fig10Row>,
    /// Paper's suite-mean distribution.
    pub paper_mean: [f64; 5],
}

/// The five benchmarks the paper's Figure 10 shows individually.
pub const FIG10_BENCHMARKS: [Benchmark; 5] = [
    Benchmark::Fft,
    Benchmark::Lu,
    Benchmark::Ocean,
    Benchmark::Radix,
    Benchmark::Raytrace,
];

fn fractions(stats: &SharedL1Stats) -> [f64; 5] {
    let mut out = [0.0; 5];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = stats.arrival_fraction(i);
    }
    out
}

/// Regenerates Figure 10 from SH-STT runs.
pub fn generate(cache: &RunCache, params: &ExpParams) -> Fig10 {
    let batch: Vec<_> = Benchmark::ALL
        .iter()
        .map(|&b| params.options(ArchConfig::ShStt, b))
        .collect();
    let results = cache.run_all(&batch);

    let mut rows = Vec::new();
    let mut merged = SharedL1Stats::default();
    for (b, r) in Benchmark::ALL.iter().zip(&results) {
        let s = r.stats.shared_l1d_merged();
        if FIG10_BENCHMARKS.contains(b) {
            rows.push(Fig10Row {
                benchmark: b.name().into(),
                fractions: fractions(&s),
            });
        }
        merged.merge(&s);
    }
    rows.push(Fig10Row {
        benchmark: "mean".into(),
        fractions: fractions(&merged),
    });
    Fig10 {
        rows,
        paper_mean: [0.49, 0.21, 0.15, 0.09, 0.06],
    }
}

impl Fig10 {
    /// Text rendering.
    pub fn render_text(&self) -> String {
        let mut t = TextTable::new(vec!["benchmark", "0", "1", "2", "3", "4+"]);
        for r in &self.rows {
            let mut cells = vec![r.benchmark.clone()];
            cells.extend(r.fractions.iter().map(|&f| frac(f)));
            t.row(cells);
        }
        let mut cells = vec!["paper mean".to_string()];
        cells.extend(self.paper_mean.iter().map(|&f| frac(f)));
        t.row(cells);
        format!(
            "Figure 10: requests arriving at the shared DL1 per cache cycle\n{}",
            t.render()
        )
    }
}
