//! Ablation studies for the design choices the paper asserts but does not
//! plot:
//!
//! * **Consolidation interval** (§III-D): "remapping performed every 160 K
//!   instructions carries only a small performance penalty and returns
//!   optimal energy savings" — sweep the epoch length and watch energy go
//!   through a minimum (too short → migration churn; too long → the search
//!   cannot track phases).
//! * **Level-shifter delay** (§II): the 0.75 ns up-shift costs 2 of the
//!   4–6 cache cycles of a core period. Sweep the delivery latency to
//!   quantify how much headroom the single-cycle-hit guarantee has.
//! * **Greedy threshold** (§III-B): the hysteresis that suppresses state
//!   churn for minor EPI changes.

use super::common::{ExpParams, RunCache};
use crate::arch::ArchConfig;
use crate::consolidation::{GreedyConfig, GreedySearch};
use crate::report::{pct, TextTable};
use crate::runner;
use respin_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// One epoch-length point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochPoint {
    /// Epoch length, instructions per cluster.
    pub epoch_instructions: u64,
    /// Energy vs the no-consolidation SH-STT run (− = saving).
    pub energy_vs_no_cc: f64,
    /// Execution-time overhead vs SH-STT.
    pub time_vs_no_cc: f64,
    /// Migrations performed.
    pub migrations: u64,
}

/// One delivery-latency point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeliveryPoint {
    /// Core→cache delivery latency, ticks.
    pub delivery_ticks: u64,
    /// Execution time vs the 2-tick default.
    pub time_vs_default: f64,
    /// One-core-cycle service fraction at the shared DL1.
    pub one_cycle_fraction: f64,
    /// Half-miss fraction.
    pub half_miss: f64,
}

/// One greedy-threshold point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThresholdPoint {
    /// Relative EPI threshold.
    pub threshold: f64,
    /// Energy vs SH-STT.
    pub energy_vs_no_cc: f64,
    /// Consolidation state changes over the run.
    pub state_changes: usize,
}

/// All three ablations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ablation {
    /// Benchmark used (radix: the consolidation showcase).
    pub benchmark: String,
    /// Epoch-length sweep.
    pub epochs: Vec<EpochPoint>,
    /// Delivery-latency sweep.
    pub delivery: Vec<DeliveryPoint>,
    /// Greedy-threshold sweep.
    pub thresholds: Vec<ThresholdPoint>,
}

/// Runs the three ablations.
pub fn generate(cache: &RunCache, params: &ExpParams) -> Ablation {
    let bench = Benchmark::Radix;

    // Reference: SH-STT without consolidation.
    let base = cache.run(&params.options(ArchConfig::ShStt, bench));

    // 1. Epoch-length sweep.
    let mut epochs = Vec::new();
    for epoch in [
        params.epoch_instructions / 4,
        params.epoch_instructions,
        params.epoch_instructions * 4,
        params.epoch_instructions * 16,
    ] {
        let mut o = params.options(ArchConfig::ShSttCc, bench);
        o.epoch_instructions = Some(epoch);
        let r = cache.run(&o);
        epochs.push(EpochPoint {
            epoch_instructions: epoch,
            energy_vs_no_cc: r.energy.chip_total_pj() / base.energy.chip_total_pj() - 1.0,
            time_vs_no_cc: r.ticks as f64 / base.ticks as f64 - 1.0,
            migrations: r.stats.migrations,
        });
    }

    // 2. Delivery-latency sweep (custom chips; not cached — cheap runs).
    let mut delivery = Vec::new();
    let mut default_ticks = 0u64;
    for ticks in [0u64, 1, 2, 3, 4] {
        let o = params.options(ArchConfig::ShStt, bench);
        let mut config = o.arch.chip_config(o.size, o.cores_per_cluster);
        config.clusters = o.clusters;
        config.instructions_per_thread = Some(o.measured_per_thread() / 2 + o.warmup_per_thread);
        config.delivery_ticks = ticks;
        let mut chip = respin_sim::Chip::new(config, &bench.spec(), o.seed);
        chip.run_warmup(o.warmup_per_thread * 64);
        let r = chip.run_to_completion();
        if ticks == 2 {
            default_ticks = r.ticks;
        }
        let s = r.stats.shared_l1d_merged();
        delivery.push(DeliveryPoint {
            delivery_ticks: ticks,
            time_vs_default: r.ticks as f64, // normalised below
            one_cycle_fraction: s.one_cycle_hit_fraction(),
            half_miss: s.half_miss_fraction(),
        });
    }
    for p in &mut delivery {
        p.time_vs_default = p.time_vs_default / default_ticks as f64 - 1.0;
    }

    // 3. Greedy-threshold sweep.
    let mut thresholds = Vec::new();
    for threshold in [0.005, 0.02, 0.08] {
        let mut chip = {
            let o = params.options(ArchConfig::ShSttCc, bench);
            let mut config = o.arch.chip_config(o.size, o.cores_per_cluster);
            config.clusters = o.clusters;
            config.instructions_per_thread = Some(o.measured_per_thread() + o.warmup_per_thread);
            config.epoch_instructions = params.epoch_instructions;
            respin_sim::Chip::new(config, &bench.spec(), o.seed)
        };
        chip.run_warmup(params.warmup_per_thread * 64);
        let n = chip.config.cores_per_cluster;
        let mut policies: Vec<GreedySearch> = (0..chip.clusters.len())
            .map(|_| {
                GreedySearch::new(
                    n,
                    GreedyConfig {
                        threshold,
                        ..GreedyConfig::default()
                    },
                )
            })
            .collect();
        loop {
            let report = chip.run_epoch();
            if report.finished {
                break;
            }
            let epi = runner::epoch_epi_public(&report);
            for (k, policy) in policies.iter_mut().enumerate() {
                let next = policy.decide(epi, report.active_cores[k]);
                if next != report.active_cores[k] {
                    chip.set_active_cores(k, next);
                }
            }
        }
        let r = chip.result();
        thresholds.push(ThresholdPoint {
            threshold,
            energy_vs_no_cc: r.energy.chip_total_pj() / base.energy.chip_total_pj() - 1.0,
            state_changes: r.stats.consolidation_trace.len(),
        });
    }

    Ablation {
        benchmark: bench.name().into(),
        epochs,
        delivery,
        thresholds,
    }
}

impl Ablation {
    /// Text rendering.
    pub fn render_text(&self) -> String {
        let mut out = format!("Ablations ({}):\n\n", self.benchmark);

        let mut t = TextTable::new(vec![
            "epoch (instr/cluster)",
            "energy vs SH-STT",
            "time vs SH-STT",
            "migrations",
        ]);
        for p in &self.epochs {
            t.row(vec![
                format!("{}", p.epoch_instructions),
                pct(p.energy_vs_no_cc),
                pct(p.time_vs_no_cc),
                format!("{}", p.migrations),
            ]);
        }
        out.push_str("Consolidation interval (§III-D):\n");
        out.push_str(&t.render());

        let mut t = TextTable::new(vec![
            "delivery ticks",
            "time vs default",
            "1-cycle",
            "half-miss",
        ]);
        for p in &self.delivery {
            t.row(vec![
                format!("{}", p.delivery_ticks),
                pct(p.time_vs_default),
                pct(p.one_cycle_fraction),
                pct(p.half_miss),
            ]);
        }
        out.push_str("\nLevel-shifter / wire delivery latency (§II):\n");
        out.push_str(&t.render());

        let mut t = TextTable::new(vec!["threshold", "energy vs SH-STT", "state changes"]);
        for p in &self.thresholds {
            t.row(vec![
                format!("{:.3}", p.threshold),
                pct(p.energy_vs_no_cc),
                format!("{}", p.state_changes),
            ]);
        }
        out.push_str("\nGreedy hysteresis threshold (§III-B):\n");
        out.push_str(&t.render());
        out
    }
}
