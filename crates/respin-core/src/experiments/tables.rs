//! Tables I–IV: the static configuration tables of §IV.

use crate::arch::ArchConfig;
use crate::report::TextTable;
use respin_sim::{CacheSizeClass, ChipConfig, L1Org};

/// Renders Table I (cache hierarchy configurations).
pub fn table1_text() -> String {
    let mut t = TextTable::new(vec!["level", "size", "block", "assoc", "ports"]);
    let private = {
        let mut c = ChipConfig::nt_base();
        c.l1_org = L1Org::Private;
        c
    };
    let shared = ChipConfig::nt_base();
    t.row(vec![
        "L1I (private / shared w/i cluster)".to_string(),
        format!(
            "{} KiB / {} KiB",
            private.l1i_geometry().capacity_bytes / 1024,
            shared.l1i_geometry().capacity_bytes / 1024
        ),
        "32 B".into(),
        "2-way".into(),
        "1R/1W".into(),
    ]);
    t.row(vec![
        "L1D (private / shared w/i cluster)".to_string(),
        format!(
            "{} KiB / {} KiB",
            private.l1d_geometry().capacity_bytes / 1024,
            shared.l1d_geometry().capacity_bytes / 1024
        ),
        "32 B".into(),
        "4-way".into(),
        "1R/1W".into(),
    ]);
    let mib = |b: u64| b / (1024 * 1024);
    t.row(vec![
        "L2 (shared w/i cluster)".to_string(),
        format!(
            "{} / {} / {} MiB",
            mib(CacheSizeClass::Small.l2_bytes()),
            mib(CacheSizeClass::Medium.l2_bytes()),
            mib(CacheSizeClass::Large.l2_bytes())
        ),
        "64 B".into(),
        "8-way".into(),
        "1R/1W".into(),
    ]);
    t.row(vec![
        "L3 (shared w/i chip)".to_string(),
        format!(
            "{} / {} / {} MiB",
            mib(CacheSizeClass::Small.l3_bytes()),
            mib(CacheSizeClass::Medium.l3_bytes()),
            mib(CacheSizeClass::Large.l3_bytes())
        ),
        "128 B".into(),
        "16-way".into(),
        "1R/1W".into(),
    ]);
    format!("Table I: cache configurations\n{}", t.render())
}

/// Renders Table II (baseline architecture parameters).
pub fn table2_text() -> String {
    let c = ChipConfig::nt_base();
    let mut t = TextTable::new(vec!["parameter", "value"]);
    t.row(vec!["cores".to_string(), format!("{}", c.total_cores())]);
    t.row(vec![
        "clusters".to_string(),
        format!("{} × {} cores", c.clusters, c.cores_per_cluster),
    ]);
    t.row(vec![
        "core".to_string(),
        "dual-issue, in-order completion".to_string(),
    ]);
    t.row(vec![
        "core Vdd (NT)".to_string(),
        format!("{} V", c.core_vdd),
    ]);
    t.row(vec![
        "core frequency (NT)".to_string(),
        "417–625 MHz (period = 4–6 × 0.4 ns, per-core from variation)".to_string(),
    ]);
    t.row(vec!["cache Vdd".to_string(), format!("{} V", c.cache_vdd)]);
    t.row(vec![
        "cache reference clock".to_string(),
        "2.5 GHz (0.4 ns)".to_string(),
    ]);
    t.row(vec![
        "store buffer".to_string(),
        format!("{} entries/core", respin_sim::consts::STORE_BUFFER_DEPTH),
    ]);
    t.row(vec![
        "mispredict penalty".to_string(),
        format!(
            "{} core cycles",
            respin_sim::consts::MISPREDICT_PENALTY_CORE_CYCLES
        ),
    ]);
    t.row(vec![
        "main memory".to_string(),
        format!("{} ns", respin_sim::consts::MEM_LATENCY_TICKS as f64 * 0.4),
    ]);
    t.row(vec![
        "consolidation epoch".to_string(),
        format!(
            "{} K instructions / cluster",
            respin_sim::consts::EPOCH_INSTRUCTIONS / 1000
        ),
    ]);
    format!("Table II: architecture configuration\n{}", t.render())
}

/// Renders Table III via the power models (model vs paper).
pub fn table3_text() -> String {
    respin_power::table3::render_text()
}

/// Renders Table IV (evaluated configurations).
pub fn table4_text() -> String {
    let mut t = TextTable::new(vec!["configuration", "description"]);
    for a in ArchConfig::ALL {
        t.row(vec![a.name().to_string(), a.description().to_string()]);
    }
    format!("Table IV: architecture configurations\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        assert!(table1_text().contains("256 KiB"));
        assert!(table2_text().contains("dual-issue"));
        assert!(table3_text().contains("STT-RAM"));
        assert!(table4_text().contains("PR-SRAM-NT"));
        assert_eq!(table4_text().matches('\n').count(), 11); // title + header + rule + 8 rows
    }
}
