//! Figure 11: fraction of read-hit requests the shared DL1 services in
//! 1, 2, or more core cycles.
//!
//! Paper: 95.8% of read hits complete within a single core cycle; ~4% of
//! requests become half-misses, and over 99% of those finish in 2 cycles.

use super::common::{ExpParams, RunCache};
use crate::arch::ArchConfig;
use crate::report::{frac, TextTable};
use respin_sim::SharedL1Stats;
use respin_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// Service-latency distribution of one benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Row {
    /// Benchmark name ("mean" for the summary).
    pub benchmark: String,
    /// Fractions serviced in 1, 2, ≥3 core cycles.
    pub cycles: [f64; 3],
    /// Half-miss fraction over all reads.
    pub half_miss: f64,
}

/// Figure 11 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11 {
    /// Per-benchmark rows plus the mean.
    pub rows: Vec<Fig11Row>,
    /// Paper: 1-cycle fraction / half-miss fraction.
    pub paper_one_cycle: f64,
    /// Paper's half-miss fraction.
    pub paper_half_miss: f64,
}

fn row(name: &str, s: &SharedL1Stats) -> Fig11Row {
    let total: u64 = s.read_hit_core_cycles.iter().sum();
    let f = |i: usize| {
        if total == 0 {
            0.0
        } else {
            s.read_hit_core_cycles[i] as f64 / total as f64
        }
    };
    Fig11Row {
        benchmark: name.into(),
        cycles: [f(0), f(1), f(2)],
        half_miss: s.half_miss_fraction(),
    }
}

/// Regenerates Figure 11 from SH-STT runs.
pub fn generate(cache: &RunCache, params: &ExpParams) -> Fig11 {
    let batch: Vec<_> = Benchmark::ALL
        .iter()
        .map(|&b| params.options(ArchConfig::ShStt, b))
        .collect();
    let results = cache.run_all(&batch);

    let mut rows = Vec::new();
    let mut merged = SharedL1Stats::default();
    for (b, r) in Benchmark::ALL.iter().zip(&results) {
        let s = r.stats.shared_l1d_merged();
        rows.push(row(b.name(), &s));
        merged.merge(&s);
    }
    rows.push(row("mean", &merged));
    Fig11 {
        rows,
        paper_one_cycle: 0.958,
        paper_half_miss: 0.04,
    }
}

impl Fig11 {
    /// Text rendering.
    pub fn render_text(&self) -> String {
        let mut t = TextTable::new(vec![
            "benchmark",
            "1 cycle",
            "2 cycles",
            "3+ cycles",
            "half-miss",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.benchmark.clone(),
                frac(r.cycles[0]),
                frac(r.cycles[1]),
                frac(r.cycles[2]),
                frac(r.half_miss),
            ]);
        }
        format!(
            "Figure 11: shared DL1 read-hit service latency in core cycles\n{}\n\
             (paper mean: {} in 1 cycle, {} half-misses)\n",
            t.render(),
            frac(self.paper_one_cycle),
            frac(self.paper_half_miss)
        )
    }
}
