//! §V-D: optimal cluster size.
//!
//! Paper: SH-STT's speedup over PR-SRAM-NT grows from 5% to 11% as the
//! cluster size goes 4 → 16 (the shared L1 is scaled proportionally), then
//! collapses to 2.5% at 32 cores per cluster — the larger, slower shared
//! array is overwhelmed by twice as many requesters. 16 is optimal.

use super::common::{geomean, ExpParams, RunCache};
use crate::arch::ArchConfig;
use crate::report::{pct, TextTable};
use respin_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// One cluster-size point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterRow {
    /// Cores per cluster.
    pub cores_per_cluster: usize,
    /// Shared L1D capacity at that size, KiB.
    pub shared_l1_kib: u64,
    /// SH-STT execution time / PR-SRAM-NT execution time (suite geomean).
    pub time_ratio: f64,
    /// Speedup over the baseline (− = faster).
    pub speedup: f64,
    /// Half-miss fraction at the shared DL1.
    pub half_miss: f64,
    /// Paper's speedup where published.
    pub paper_speedup: Option<f64>,
}

/// Cluster-size sweep data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSweep {
    /// Rows for 4/8/16/32 cores per cluster.
    pub rows: Vec<ClusterRow>,
}

/// Regenerates the §V-D sweep. The baseline is the paper's default
/// PR-SRAM-NT machine (16-core clusters): its private-L1 organisation does
/// not vary with the cluster knob being studied.
pub fn generate(cache: &RunCache, params: &ExpParams) -> ClusterSweep {
    let mut rows = Vec::new();
    for &n in &[4usize, 8, 16, 32] {
        let ratios: Vec<f64> = Benchmark::ALL
            .iter()
            .map(|&b| {
                let base_opts = params.options(ArchConfig::PrSramNt, b);
                let mut sh_opts = params.options(ArchConfig::ShStt, b);
                sh_opts.cores_per_cluster = n;
                sh_opts.clusters = 64 / n;
                let base = cache.run(&base_opts);
                let sh = cache.run(&sh_opts);
                sh.ticks as f64 / base.ticks as f64
            })
            .collect();
        let ratio = geomean(ratios.iter().copied());

        // Half-miss statistics from one representative run.
        let mut o = params.options(ArchConfig::ShStt, Benchmark::Fft);
        o.cores_per_cluster = n;
        o.clusters = 64 / n;
        let half_miss = cache.run(&o).stats.shared_l1d_merged().half_miss_fraction();

        rows.push(ClusterRow {
            cores_per_cluster: n,
            shared_l1_kib: 16 * n as u64,
            time_ratio: ratio,
            speedup: 1.0 - ratio,
            half_miss,
            paper_speedup: match n {
                4 => Some(0.05),
                16 => Some(0.11),
                32 => Some(0.025),
                _ => None,
            },
        });
    }
    ClusterSweep { rows }
}

impl ClusterSweep {
    /// Text rendering.
    pub fn render_text(&self) -> String {
        let mut t = TextTable::new(vec![
            "cores/cluster",
            "shared L1D",
            "time ratio",
            "speedup",
            "half-miss",
            "paper speedup",
        ]);
        for r in &self.rows {
            t.row(vec![
                format!("{}", r.cores_per_cluster),
                format!("{} KiB", r.shared_l1_kib),
                format!("{:.3}", r.time_ratio),
                pct(r.speedup),
                pct(r.half_miss),
                r.paper_speedup.map(pct).unwrap_or_else(|| "-".into()),
            ]);
        }
        format!(
            "Cluster-size sweep (§V-D): SH-STT vs PR-SRAM-NT, 64 cores total\n{}",
            t.render()
        )
    }
}
