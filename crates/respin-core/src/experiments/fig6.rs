//! Figure 6: total CMP power of SH-STT vs the baselines across the three
//! cache sizings, with leakage/dynamic split.
//!
//! Paper: SH-STT uses 2.1% / 12.9% / 22.1% less power than PR-SRAM-NT for
//! small/medium/large; SH-SRAM-Nom uses 22–65% *more* power than SH-STT.

use super::common::{mean, ExpParams, RunCache};
use crate::arch::ArchConfig;
use crate::report::{pct, TextTable};
use respin_sim::CacheSizeClass;
use respin_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// Power of one (configuration, cache size) point, suite mean.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Configuration label.
    pub config: String,
    /// Cache sizing class.
    pub size: String,
    /// Average CMP power, mW.
    pub power_mw: f64,
    /// Leakage share of that power.
    pub leakage_mw: f64,
    /// Dynamic share.
    pub dynamic_mw: f64,
    /// Power relative to PR-SRAM-NT at the same size (− = saving).
    pub vs_baseline: f64,
    /// Paper's value of `vs_baseline` where published.
    pub paper_vs_baseline: Option<f64>,
}

/// Figure 6 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6 {
    /// All (config, size) rows.
    pub rows: Vec<Fig6Row>,
}

const ARCHS: [ArchConfig; 3] = [
    ArchConfig::PrSramNt,
    ArchConfig::ShStt,
    ArchConfig::ShSramNom,
];

fn paper_value(arch: ArchConfig, size: CacheSizeClass) -> Option<f64> {
    match (arch, size) {
        (ArchConfig::ShStt, CacheSizeClass::Small) => Some(-0.021),
        (ArchConfig::ShStt, CacheSizeClass::Medium) => Some(-0.129),
        (ArchConfig::ShStt, CacheSizeClass::Large) => Some(-0.221),
        (ArchConfig::PrSramNt, _) => Some(0.0),
        _ => None,
    }
}

/// Regenerates Figure 6.
pub fn generate(cache: &RunCache, params: &ExpParams) -> Fig6 {
    let mut rows = Vec::new();
    for size in CacheSizeClass::ALL {
        let mut base_power = f64::NAN;
        for arch in ARCHS {
            let batch: Vec<_> = Benchmark::ALL
                .iter()
                .map(|&b| {
                    let mut o = params.options(arch, b);
                    o.size = size;
                    o
                })
                .collect();
            let results = cache.run_all(&batch);
            let power = mean(results.iter().map(|r| r.average_power_mw()));
            let leak = mean(
                results
                    .iter()
                    .map(|r| r.energy.leakage_pj() / r.time_ps * 1_000.0),
            );
            if arch == ArchConfig::PrSramNt {
                base_power = power;
            }
            rows.push(Fig6Row {
                config: arch.name().into(),
                size: size.name().into(),
                power_mw: power,
                leakage_mw: leak,
                dynamic_mw: power - leak,
                vs_baseline: power / base_power - 1.0,
                paper_vs_baseline: paper_value(arch, size),
            });
        }
    }
    Fig6 { rows }
}

impl Fig6 {
    /// Text rendering.
    pub fn render_text(&self) -> String {
        let mut t = TextTable::new(vec![
            "config",
            "size",
            "power mW",
            "leak mW",
            "dyn mW",
            "vs baseline",
            "paper",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.config.clone(),
                r.size.clone(),
                format!("{:.1}", r.power_mw),
                format!("{:.1}", r.leakage_mw),
                format!("{:.1}", r.dynamic_mw),
                pct(r.vs_baseline),
                r.paper_vs_baseline.map(pct).unwrap_or_else(|| "-".into()),
            ]);
        }
        format!(
            "Figure 6: CMP power by configuration and cache size (suite mean)\n{}",
            t.render()
        )
    }
}
