//! Figure 14: average (and min/max) active cores per cluster under dynamic
//! core consolidation, per benchmark.
//!
//! Paper: on average only ~10 of 16 cores in a cluster stay active; most
//! benchmarks span the full 4–16 range, radix never activates more than 11
//! and blackscholes never drops below 6.

use super::common::{mean, ExpParams, RunCache};
use crate::arch::ArchConfig;
use crate::report::TextTable;
use respin_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// Active-core statistics of one benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig14Row {
    /// Benchmark name ("mean" for the summary).
    pub benchmark: String,
    /// Epoch-weighted average active cores per cluster.
    pub avg: f64,
    /// Minimum observed at any epoch boundary (any cluster); `None` when
    /// the run produced no per-cluster samples at all — a 0 here would
    /// claim a cluster ran with every core off, which can never happen.
    pub min: Option<usize>,
    /// Maximum observed (`None` when there were no samples).
    pub max: Option<usize>,
}

/// Figure 14 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig14 {
    /// Rows per benchmark plus the mean.
    pub rows: Vec<Fig14Row>,
    /// Paper's suite average (~10 of 16).
    pub paper_avg: f64,
}

/// Regenerates Figure 14 from SH-STT-CC runs.
pub fn generate(cache: &RunCache, params: &ExpParams) -> Fig14 {
    let batch: Vec<_> = Benchmark::ALL
        .iter()
        .map(|&b| params.options(ArchConfig::ShSttCc, b))
        .collect();
    let results = cache.run_all(&batch);

    let mut rows: Vec<Fig14Row> = Benchmark::ALL
        .iter()
        .zip(&results)
        .map(|(&b, r)| {
            // active_core_samples: per cluster (Σ active over epochs, min, max).
            let epochs = r.stats.epochs.max(1);
            let per_cluster = &r.stats.active_core_samples;
            let avg = mean(per_cluster.iter().map(|&(sum, _, _)| sum as f64)) / epochs as f64;
            // An empty sample set propagates as None rather than a
            // fabricated 0-core minimum.
            let min = per_cluster.iter().map(|&(_, lo, _)| lo).min();
            let max = per_cluster.iter().map(|&(_, _, hi)| hi).max();
            Fig14Row {
                benchmark: b.name().into(),
                avg,
                min,
                max,
            }
        })
        .collect();
    rows.push(Fig14Row {
        benchmark: "mean".into(),
        avg: mean(rows.iter().map(|r| r.avg)),
        min: rows.iter().filter_map(|r| r.min).min(),
        max: rows.iter().filter_map(|r| r.max).max(),
    });
    Fig14 {
        rows,
        paper_avg: 10.0,
    }
}

impl Fig14 {
    /// Text rendering.
    pub fn render_text(&self) -> String {
        let mut t = TextTable::new(vec!["benchmark", "avg active", "min", "max"]);
        for r in &self.rows {
            t.row(vec![
                r.benchmark.clone(),
                format!("{:.1}", r.avg),
                r.min.map_or_else(|| "-".into(), |m| m.to_string()),
                r.max.map_or_else(|| "-".into(), |m| m.to_string()),
            ]);
        }
        format!(
            "Figure 14: active cores per 16-core cluster under consolidation\n{}\n\
             (paper: suite average ≈ {:.0}/16; radix ≤ 11; blackscholes ≥ 6)\n",
            t.render(),
            self.paper_avg
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_sets_render_as_dashes_not_zero() {
        let fig = Fig14 {
            rows: vec![
                Fig14Row {
                    benchmark: "fft".into(),
                    avg: 9.5,
                    min: Some(4),
                    max: Some(16),
                },
                Fig14Row {
                    benchmark: "empty".into(),
                    avg: f64::NAN,
                    min: None,
                    max: None,
                },
            ],
            paper_avg: 10.0,
        };
        let text = fig.render_text();
        let empty_line = text
            .lines()
            .find(|l| l.contains("empty"))
            .expect("row rendered");
        assert!(empty_line.contains('-'), "{empty_line}");
        assert!(
            !empty_line.contains(" 0"),
            "no-sample rows must not fabricate a 0-core minimum: {empty_line}"
        );
    }

    #[test]
    fn summary_min_skips_empty_rows() {
        let rows = [
            Fig14Row {
                benchmark: "a".into(),
                avg: 8.0,
                min: Some(6),
                max: Some(12),
            },
            Fig14Row {
                benchmark: "b".into(),
                avg: f64::NAN,
                min: None,
                max: None,
            },
        ];
        assert_eq!(rows.iter().filter_map(|r| r.min).min(), Some(6));
        assert_eq!(rows.iter().filter_map(|r| r.max).max(), Some(12));
    }
}
