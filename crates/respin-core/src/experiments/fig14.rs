//! Figure 14: average (and min/max) active cores per cluster under dynamic
//! core consolidation, per benchmark.
//!
//! Paper: on average only ~10 of 16 cores in a cluster stay active; most
//! benchmarks span the full 4–16 range, radix never activates more than 11
//! and blackscholes never drops below 6.

use super::common::{mean, ExpParams, RunCache};
use crate::arch::ArchConfig;
use crate::report::TextTable;
use respin_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// Active-core statistics of one benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig14Row {
    /// Benchmark name ("mean" for the summary).
    pub benchmark: String,
    /// Epoch-weighted average active cores per cluster.
    pub avg: f64,
    /// Minimum observed at any epoch boundary (any cluster).
    pub min: usize,
    /// Maximum observed.
    pub max: usize,
}

/// Figure 14 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig14 {
    /// Rows per benchmark plus the mean.
    pub rows: Vec<Fig14Row>,
    /// Paper's suite average (~10 of 16).
    pub paper_avg: f64,
}

/// Regenerates Figure 14 from SH-STT-CC runs.
pub fn generate(cache: &RunCache, params: &ExpParams) -> Fig14 {
    let batch: Vec<_> = Benchmark::ALL
        .iter()
        .map(|&b| params.options(ArchConfig::ShSttCc, b))
        .collect();
    let results = cache.run_all(&batch);

    let mut rows: Vec<Fig14Row> = Benchmark::ALL
        .iter()
        .zip(&results)
        .map(|(&b, r)| {
            // active_core_samples: per cluster (Σ active over epochs, min, max).
            let epochs = r.stats.epochs.max(1);
            let per_cluster = &r.stats.active_core_samples;
            let avg = mean(per_cluster.iter().map(|&(sum, _, _)| sum as f64)) / epochs as f64;
            let min = per_cluster.iter().map(|&(_, lo, _)| lo).min().unwrap_or(0);
            let max = per_cluster.iter().map(|&(_, _, hi)| hi).max().unwrap_or(0);
            Fig14Row {
                benchmark: b.name().into(),
                avg,
                min,
                max,
            }
        })
        .collect();
    rows.push(Fig14Row {
        benchmark: "mean".into(),
        avg: mean(rows.iter().map(|r| r.avg)),
        min: rows.iter().map(|r| r.min).min().unwrap_or(0),
        max: rows.iter().map(|r| r.max).max().unwrap_or(0),
    });
    Fig14 {
        rows,
        paper_avg: 10.0,
    }
}

impl Fig14 {
    /// Text rendering.
    pub fn render_text(&self) -> String {
        let mut t = TextTable::new(vec!["benchmark", "avg active", "min", "max"]);
        for r in &self.rows {
            t.row(vec![
                r.benchmark.clone(),
                format!("{:.1}", r.avg),
                format!("{}", r.min),
                format!("{}", r.max),
            ]);
        }
        format!(
            "Figure 14: active cores per 16-core cluster under consolidation\n{}\n\
             (paper: suite average ≈ {:.0}/16; radix ≤ 11; blackscholes ≥ 6)\n",
            t.render(),
            self.paper_avg
        )
    }
}
