//! Figures 12 and 13: runtime consolidation traces of radix and lu,
//! greedy (SH-STT-CC) vs oracle (SH-STT-CC-Oracle).
//!
//! Paper: the radix greedy trace tracks the oracle closely (48% vs 50%
//! energy saving against PR-SRAM-NT); on lu the greedy lags the oracle's
//! immediate adaptation (29% vs 38%).

use super::common::{ExpParams, RunCache};
use crate::arch::ArchConfig;
use crate::report::{pct, TextTable};
use respin_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// One configuration's trace for one benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// Configuration label.
    pub config: String,
    /// (time µs, active cores per cluster, averaged) samples.
    pub series: Vec<(f64, f64)>,
    /// Energy relative to PR-SRAM-NT (− = saving).
    pub energy_vs_baseline: f64,
    /// Paper's value where published.
    pub paper_vs_baseline: Option<f64>,
}

/// One benchmark's figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConsolidationTraceFigure {
    /// "Figure 12" or "Figure 13".
    pub figure: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Greedy and oracle traces.
    pub traces: Vec<Trace>,
}

fn paper_value(figure: &str, arch: ArchConfig) -> Option<f64> {
    match (figure, arch) {
        ("Figure 12", ArchConfig::ShSttCc) => Some(-0.48),
        ("Figure 12", ArchConfig::ShSttCcOracle) => Some(-0.50),
        ("Figure 13", ArchConfig::ShSttCc) => Some(-0.29),
        ("Figure 13", ArchConfig::ShSttCcOracle) => Some(-0.38),
        _ => None,
    }
}

/// Regenerates one of the two trace figures.
pub fn generate(
    cache: &RunCache,
    params: &ExpParams,
    figure: &str,
    benchmark: Benchmark,
) -> ConsolidationTraceFigure {
    let clusters = 4.0;
    let baseline = cache.run(&params.options(ArchConfig::PrSramNt, benchmark));
    let mut traces = Vec::new();
    for arch in [ArchConfig::ShSttCc, ArchConfig::ShSttCcOracle] {
        let r = cache.run(&params.options(arch, benchmark));
        let t0 = r
            .stats
            .consolidation_trace
            .first()
            .map(|&(t, _)| t)
            .unwrap_or(0);
        let series = r
            .stats
            .consolidation_trace
            .iter()
            .map(|&(t, active)| {
                (
                    (t - t0) as f64 * 0.4 / 1_000.0, // ticks → µs
                    active as f64 / clusters,
                )
            })
            .collect();
        traces.push(Trace {
            config: arch.name().into(),
            series,
            energy_vs_baseline: r.energy.chip_total_pj() / baseline.energy.chip_total_pj() - 1.0,
            paper_vs_baseline: paper_value(figure, arch),
        });
    }
    ConsolidationTraceFigure {
        figure: figure.into(),
        benchmark: benchmark.name().into(),
        traces,
    }
}

impl ConsolidationTraceFigure {
    /// Text rendering: energy summary plus a coarse textual trace.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "{} ({}): consolidation trace, greedy vs oracle\n",
            self.figure, self.benchmark
        );
        let mut t = TextTable::new(vec![
            "config",
            "energy vs baseline",
            "paper",
            "state changes",
        ]);
        for tr in &self.traces {
            t.row(vec![
                tr.config.clone(),
                pct(tr.energy_vs_baseline),
                tr.paper_vs_baseline.map(pct).unwrap_or_else(|| "-".into()),
                format!("{}", tr.series.len()),
            ]);
        }
        out.push_str(&t.render());
        for tr in &self.traces {
            out.push_str(&format!(
                "\n{} trace (t µs → active cores/cluster):\n  ",
                tr.config
            ));
            // Print up to 24 evenly-spaced samples.
            let step = (tr.series.len() / 24).max(1);
            for (i, (t_us, a)) in tr.series.iter().enumerate() {
                if i % step == 0 {
                    out.push_str(&format!("{t_us:.0}:{a:.0} "));
                }
            }
            out.push('\n');
        }
        out
    }
}
