//! Experiment drivers: one module per table/figure of the paper's §V.
//!
//! Every driver produces a serialisable result struct plus an aligned text
//! rendering, and records the paper's published values next to the
//! regenerated ones so EXPERIMENTS.md can compare shape directly. The
//! `respin-experiments` binary is the CLI over these modules.
//!
//! Underlying runs are memoised in a [`common::RunCache`] because several
//! figures share configurations (e.g. the `PR-SRAM-NT` × medium × suite
//! runs feed Figures 6, 7, 8, and 9).

pub mod ablation;
pub mod cluster_sweep;
pub mod common;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12_13;
pub mod fig14;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod resilience;
pub mod tables;
pub mod voltage;

pub use common::{ExpParams, RunCache};
pub use respin_pool::Pool;

use crate::report::to_json;
use respin_trace::TraceSink;
use respin_workloads::Benchmark;
use std::sync::Arc;

/// Every experiment name the dispatch understands, in CLI order.
pub const EXPERIMENT_NAMES: [&str; 18] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "fig1",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "cluster",
    "ablation",
    "voltage",
    "resilience",
];

/// Runs the named experiment against `cache` at `params`, returning its
/// `(text, json)` artifact pair, or `None` for an unknown name.
///
/// This is the **single dispatch** behind both front-ends — the
/// one-shot `respin-experiments` CLI and the `respin-serve` daemon — so
/// an artifact can never depend on which of them asked. `resilience_sink`
/// and `trace_epochs` apply only to the `resilience` experiment, whose
/// fault-injection runs live outside the [`RunCache`] (fault
/// configurations are not expressible as cacheable [`crate::RunOptions`])
/// and are traced through their own scoped sinks.
pub fn generate_named(
    name: &str,
    cache: &RunCache,
    params: &ExpParams,
    resilience_sink: Option<Arc<dyn TraceSink>>,
    trace_epochs: Option<u64>,
) -> Option<(String, String)> {
    Some(match name {
        "table1" => (tables::table1_text(), "{}".to_string()),
        "table2" => (tables::table2_text(), "{}".to_string()),
        "table3" => (
            tables::table3_text(),
            to_json(&respin_power::table3::generate()),
        ),
        "table4" => (tables::table4_text(), "{}".to_string()),
        "fig1" => {
            let d = fig1::generate(cache, params);
            (d.render_text(), to_json(&d))
        }
        "fig6" => {
            let d = fig6::generate(cache, params);
            (d.render_text(), to_json(&d))
        }
        "fig7" => {
            let d = fig7::generate(cache, params);
            (d.render_text(), to_json(&d))
        }
        "fig8" => {
            let d = fig8::generate(cache, params);
            (d.render_text(), to_json(&d))
        }
        "fig9" => {
            let d = fig9::generate(cache, params);
            (d.render_text(), to_json(&d))
        }
        "fig10" => {
            let d = fig10::generate(cache, params);
            (d.render_text(), to_json(&d))
        }
        "fig11" => {
            let d = fig11::generate(cache, params);
            (d.render_text(), to_json(&d))
        }
        "fig12" => {
            let d = fig12_13::generate(cache, params, "Figure 12", Benchmark::Radix);
            (d.render_text(), to_json(&d))
        }
        "fig13" => {
            let d = fig12_13::generate(cache, params, "Figure 13", Benchmark::Lu);
            (d.render_text(), to_json(&d))
        }
        "fig14" => {
            let d = fig14::generate(cache, params);
            (d.render_text(), to_json(&d))
        }
        "cluster" => {
            let d = cluster_sweep::generate(cache, params);
            (d.render_text(), to_json(&d))
        }
        "ablation" => {
            let d = ablation::generate(cache, params);
            (d.render_text(), to_json(&d))
        }
        "voltage" => {
            let d = voltage::generate(cache, params);
            (d.render_text(), to_json(&d))
        }
        "resilience" => {
            let d = resilience::generate_traced(params, resilience_sink, trace_epochs);
            (d.render_text(), to_json(&d))
        }
        _ => return None,
    })
}
