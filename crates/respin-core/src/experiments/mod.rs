//! Experiment drivers: one module per table/figure of the paper's §V.
//!
//! Every driver produces a serialisable result struct plus an aligned text
//! rendering, and records the paper's published values next to the
//! regenerated ones so EXPERIMENTS.md can compare shape directly. The
//! `respin-experiments` binary is the CLI over these modules.
//!
//! Underlying runs are memoised in a [`common::RunCache`] because several
//! figures share configurations (e.g. the `PR-SRAM-NT` × medium × suite
//! runs feed Figures 6, 7, 8, and 9).

pub mod ablation;
pub mod cluster_sweep;
pub mod common;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12_13;
pub mod fig14;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod resilience;
pub mod tables;
pub mod voltage;

pub use common::{ExpParams, RunCache};
pub use respin_pool::Pool;
