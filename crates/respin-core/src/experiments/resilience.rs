//! Resilience experiment: fault injection and graceful degradation.
//!
//! Not a paper figure — the robustness counterpart to §V. The paper's
//! evaluation assumes the STT-RAM arrays and NT cores are fault-free;
//! this experiment prices that assumption:
//!
//! * **BER × retry-budget sweep** — stochastic write failures with
//!   write-verify-retry, SECDED, and epoch scrubbing enabled. How much
//!   energy and time does recovery cost, and does anything escape?
//! * **Graceful degradation** — one variation-marginal core is seeded to
//!   fault every epoch until the VCM decommissions it. The run must
//!   complete with smoothly degraded IPC, never crash or corrupt.
//!
//! The text rendering ends with a greppable `smoke:` line consumed by
//! `scripts/verify.sh` and CI.

use super::common::ExpParams;
use crate::arch::ArchConfig;
use crate::consolidation::{GreedyConfig, GreedySearch, HealthMonitor};
use crate::report::{pct, TextTable};
use crate::runner;
use respin_sim::{Chip, FaultConfig, RunResult};
use respin_trace::{ScopedSink, TraceEvent, TraceKind, TraceSink, Tracer};
use respin_workloads::Benchmark;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Benchmark used (radix: the consolidation showcase).
const BENCH: Benchmark = Benchmark::Radix;
/// Small machine: the fault models act per array/core, so a 2 × 4-core
/// chip exercises every path at a fraction of the 64-core cost.
const CLUSTERS: usize = 2;
const CORES_PER_CLUSTER: usize = 4;

/// One point of the BER × retry-budget sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Per-bit write failure probability.
    pub write_ber: f64,
    /// Write-verify-retry budget.
    pub retry_budget: u32,
    /// Total injected faults (write + retention + core).
    pub injected: u64,
    /// Line-level write failures.
    pub write_faults: u64,
    /// Extra write attempts spent recovering.
    pub write_retries: u64,
    /// Writes that exhausted the budget and left residual flips.
    pub retry_exhausted: u64,
    /// Single-bit errors corrected by SECDED.
    pub ecc_corrected: u64,
    /// Uncorrectable errors detected (line refetched).
    pub ecc_detected: u64,
    /// Corrupted values consumed undetected (must be 0 with ECC).
    pub escapes: u64,
    /// Energy spent on retries / correction rewrites / scrubbing, pJ.
    pub recovery_energy_pj: f64,
    /// Chip energy vs the fault-free baseline (+ = overhead).
    pub energy_vs_baseline: f64,
    /// Execution time vs the fault-free baseline.
    pub time_vs_baseline: f64,
}

/// Outcome of the seeded-bad-core degradation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Degradation {
    /// IPC of the fault-free consolidation run.
    pub baseline_ipc: f64,
    /// IPC with the seeded bad core decommissioned mid-run.
    pub degraded_ipc: f64,
    /// `degraded / baseline` — graceful means this stays well above 0.
    pub ipc_ratio: f64,
    /// Transient core faults injected before the threshold tripped.
    pub core_faults: u64,
    /// Cores decommissioned (expected: exactly 1).
    pub cores_decommissioned: u64,
    /// Healthy cores per cluster at the end of the run.
    pub healthy_cores: Vec<usize>,
    /// Degradation steps the VCM health monitor observed.
    pub health_events: usize,
    /// The run retired every instruction despite the faults.
    pub completed: bool,
}

/// Full resilience campaign result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Resilience {
    /// Benchmark name.
    pub benchmark: String,
    /// BER × retry-budget sweep.
    pub sweep: Vec<SweepPoint>,
    /// Graceful-degradation run.
    pub degradation: Degradation,
}

fn build_chip(params: &ExpParams, arch: ArchConfig, faults: FaultConfig, tracer: Tracer) -> Chip {
    let mut o = params.options(arch, BENCH);
    o.clusters = CLUSTERS;
    o.cores_per_cluster = CORES_PER_CLUSTER;
    let mut config = o.chip_config();
    config.faults = faults;
    let mut chip = Chip::new(config, &BENCH.spec(), o.seed);
    chip.set_tracer(tracer);
    chip
}

/// Per-campaign trace collection: each chip run gets its own run id and
/// a labelled `RunStart` marker, mirroring the experiment cache.
struct TraceCtx {
    sink: Option<Arc<dyn TraceSink>>,
    limit: Option<u64>,
}

impl TraceCtx {
    fn new(sink: Option<Arc<dyn TraceSink>>, limit: Option<u64>) -> Self {
        Self { sink, limit }
    }

    /// A tracer for one labelled run of the campaign (disabled when no
    /// sink was requested). The run id is a hash of the label — like the
    /// experiment cache's key-derived ids, it depends on *which* run
    /// this is, never on dispatch order, so the sweep can run on the
    /// pool and still trace identically to a sequential campaign.
    fn tracer(&self, label: &str) -> Tracer {
        let Some(sink) = &self.sink else {
            return Tracer::disabled();
        };
        let id = super::common::stable_run_id(label);
        let scoped: Arc<dyn TraceSink> = Arc::new(ScopedSink::new(id, self.limit, sink.clone()));
        scoped.record(&TraceEvent::at(
            0,
            TraceKind::RunStart {
                options: label.to_string(),
            },
        ));
        Tracer::new(scoped)
    }
}

fn total_cores() -> u64 {
    (CLUSTERS * CORES_PER_CLUSTER) as u64
}

/// Runs a chip to completion under the greedy consolidation policy with
/// the healthy-core cap applied each epoch (the `runner` loop, inlined so
/// the experiment can also watch the health monitor).
fn run_greedy_degraded(chip: &mut Chip) -> (RunResult, Vec<HealthMonitor>) {
    let n = chip.config.cores_per_cluster;
    let mut policies: Vec<GreedySearch> = (0..chip.clusters.len())
        .map(|_| GreedySearch::new(n, GreedyConfig::default()))
        .collect();
    let mut health: Vec<HealthMonitor> = (0..chip.clusters.len())
        .map(|_| HealthMonitor::new())
        .collect();
    loop {
        let report = chip.run_epoch();
        if report.finished {
            return (chip.result(), health);
        }
        let epi = runner::epoch_epi_public(&report);
        for (k, policy) in policies.iter_mut().enumerate() {
            health[k].observe(report.healthy_cores[k]);
            policy.limit_max_cores(report.healthy_cores[k]);
            let next = policy.decide(epi, report.active_cores[k]);
            if next != report.active_cores[k] {
                chip.set_active_cores(k, next);
            }
        }
    }
}

/// Runs the resilience campaign.
pub fn generate(params: &ExpParams) -> Resilience {
    generate_traced(params, None, None)
}

/// Runs the resilience campaign, tracing every chip run into `sink`
/// when one is given (`trace_epochs` caps the epoch series per run).
/// This is the `--trace-out` path: the campaign is seconds long yet
/// exercises consolidation, migration, faults, and decommissioning.
pub fn generate_traced(
    params: &ExpParams,
    sink: Option<Arc<dyn TraceSink>>,
    trace_epochs: Option<u64>,
) -> Resilience {
    let trace = TraceCtx::new(sink, trace_epochs);
    let warmup = params.warmup_per_thread * total_cores();

    // Fault-free baseline for the sweep (no consolidation: isolate the
    // cell-level recovery cost from policy decisions). Runs first and
    // alone: every sweep point normalises against it.
    let base = {
        let mut chip = build_chip(
            params,
            ArchConfig::ShStt,
            FaultConfig::off(),
            trace.tracer("resilience baseline"),
        );
        chip.run_warmup(warmup);
        chip.run_to_completion()
    };

    // The BER × retry-budget sweep points are independent chips — run
    // them on the pool. par_map preserves input order and each run id is
    // a label hash, so results and traces match a sequential campaign.
    let combos: Vec<(f64, u32)> = [1e-5, 1e-4]
        .iter()
        .flat_map(|&ber| [1u32, 2, 4].iter().map(move |&budget| (ber, budget)))
        .collect();
    let sweep: Vec<SweepPoint> = respin_pool::par_map(&combos, |&(write_ber, retry_budget)| {
        let mut fc = FaultConfig::off();
        fc.write_ber = write_ber;
        fc.retention_flip_rate = 1e-12;
        fc.retry_budget = retry_budget;
        fc.ecc = true;
        fc.scrub = true;
        let mut chip = build_chip(
            params,
            ArchConfig::ShStt,
            fc,
            trace.tracer(&format!(
                "resilience sweep ber={write_ber} budget={retry_budget}"
            )),
        );
        chip.run_warmup(warmup);
        let r = chip.run_to_completion();
        let f = &r.stats.faults;
        SweepPoint {
            write_ber,
            retry_budget,
            injected: f.total_injected(),
            write_faults: f.write_faults,
            write_retries: f.write_retries,
            retry_exhausted: f.retry_exhausted,
            ecc_corrected: f.ecc_corrected,
            ecc_detected: f.ecc_detected,
            escapes: f.uncorrected_escapes,
            recovery_energy_pj: f.recovery_energy_pj,
            energy_vs_baseline: r.energy.chip_total_pj() / base.energy.chip_total_pj() - 1.0,
            time_vs_baseline: r.ticks as f64 / base.ticks as f64 - 1.0,
        }
    });

    // Graceful degradation: fault-free consolidation baseline vs a chip
    // whose core (cluster 0, core 1) faults every epoch until the VCM
    // decommissions it. The pair is independent — two more pool items.
    let mut bad_fc = FaultConfig::off();
    bad_fc.seeded_bad_core = Some(1);
    bad_fc.core_fault_threshold = 2;
    let degr_items = [
        (FaultConfig::off(), "resilience degradation baseline"),
        (bad_fc, "resilience degradation seeded-bad-core"),
    ];
    let mut degr = respin_pool::par_map(&degr_items, |&(fc, label)| {
        let mut chip = build_chip(params, ArchConfig::ShSttCc, fc, trace.tracer(label));
        chip.run_warmup(warmup);
        run_greedy_degraded(&mut chip)
    });
    let (bad, health) = degr.remove(1);
    let (good, _) = degr.remove(0);
    let ipc = |r: &RunResult| r.instructions as f64 / r.ticks as f64;
    let healthy_end: Vec<usize> = health
        .iter()
        .map(|h| h.healthy().unwrap_or(CORES_PER_CLUSTER))
        .collect();
    // The warm-up stops on a chip-wide instruction total, so individual
    // threads can overshoot their per-thread warm-up budget; allow the
    // measured window the same ~10% slack the runner tests use.
    let expected = params.instructions_per_thread * total_cores() * 9 / 10;
    let degradation = Degradation {
        baseline_ipc: ipc(&good),
        degraded_ipc: ipc(&bad),
        ipc_ratio: ipc(&bad) / ipc(&good),
        core_faults: bad.stats.faults.core_faults,
        cores_decommissioned: bad.stats.faults.cores_decommissioned,
        healthy_cores: healthy_end,
        health_events: health.iter().map(|h| h.log().len()).sum(),
        completed: bad.instructions >= expected,
    };

    Resilience {
        benchmark: BENCH.name().into(),
        sweep,
        degradation,
    }
}

impl Resilience {
    /// Total injected faults across the sweep and degradation runs.
    pub fn total_injected(&self) -> u64 {
        self.sweep.iter().map(|p| p.injected).sum::<u64>() + self.degradation.core_faults
    }

    /// Total silent escapes (must be zero: every run has ECC on or no
    /// cell faults enabled).
    pub fn total_escapes(&self) -> u64 {
        self.sweep.iter().map(|p| p.escapes).sum()
    }

    /// Text rendering.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "Resilience ({}, {} clusters x {} cores):\n\n",
            self.benchmark, CLUSTERS, CORES_PER_CLUSTER
        );

        let mut t = TextTable::new(vec![
            "BER",
            "budget",
            "injected",
            "retries",
            "exhausted",
            "corrected",
            "detected",
            "escapes",
            "recovery pJ",
            "energy vs base",
            "time vs base",
        ]);
        for p in &self.sweep {
            t.row(vec![
                format!("{:.0e}", p.write_ber),
                format!("{}", p.retry_budget),
                format!("{}", p.injected),
                format!("{}", p.write_retries),
                format!("{}", p.retry_exhausted),
                format!("{}", p.ecc_corrected),
                format!("{}", p.ecc_detected),
                format!("{}", p.escapes),
                format!("{:.1}", p.recovery_energy_pj),
                pct(p.energy_vs_baseline),
                pct(p.time_vs_baseline),
            ]);
        }
        out.push_str("STT-RAM write-failure sweep (SECDED + scrub on):\n");
        out.push_str(&t.render());

        let d = &self.degradation;
        out.push_str("\nGraceful degradation (seeded bad core, threshold 2):\n");
        out.push_str(&format!(
            "  baseline IPC {:.4}, degraded IPC {:.4} (ratio {:.3})\n",
            d.baseline_ipc, d.degraded_ipc, d.ipc_ratio
        ));
        out.push_str(&format!(
            "  core faults {}, decommissioned {}, healthy at end {:?}, \
             health events {}, completed {}\n",
            d.core_faults, d.cores_decommissioned, d.healthy_cores, d.health_events, d.completed
        ));

        out.push_str(&format!(
            "\nsmoke: injected={} escapes={} decommissioned={}\n",
            self.total_injected(),
            self.total_escapes(),
            d.cores_decommissioned
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resilience_smoke() {
        let mut params = ExpParams::quick();
        params.instructions_per_thread = 6_000;
        params.warmup_per_thread = 1_000;
        params.epoch_instructions = 2_000;
        let r = generate(&params);
        assert_eq!(r.sweep.len(), 6);
        assert!(r.total_injected() > 0, "faults must fire");
        assert_eq!(r.total_escapes(), 0, "ECC is on everywhere");
        let d = &r.degradation;
        assert!(d.completed, "degraded run must retire every instruction");
        assert_eq!(d.cores_decommissioned, 1);
        assert!(d.core_faults >= 2);
        assert!(d.healthy_cores.contains(&(CORES_PER_CLUSTER - 1)));
        assert!(d.health_events >= 1);
        assert!(
            d.ipc_ratio > 0.3 && d.ipc_ratio < 1.3,
            "IPC must degrade smoothly, got {}",
            d.ipc_ratio
        );
        // Recovery costs rise with BER at fixed budget.
        let text = r.render_text();
        assert!(text.contains("smoke: injected="));
        assert!(text.contains("escapes=0"));
    }
}
