//! Figure 8: CMP energy vs cache size, normalised to PR-SRAM-NT.
//!
//! Paper: SH-STT uses 13% / 23% / 31% less energy than the baseline for
//! small / medium / large; SH-SRAM-Nom uses 8–16% *more*.

use super::common::{geomean, ExpParams, RunCache};
use crate::arch::ArchConfig;
use crate::report::{pct, TextTable};
use respin_power::diag::Violation;
use respin_sim::CacheSizeClass;
use respin_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// One (config, size) energy point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Row {
    /// Configuration label.
    pub config: String,
    /// Cache sizing class.
    pub size: String,
    /// Energy relative to PR-SRAM-NT at the same size (− = saving).
    pub vs_baseline: f64,
    /// Paper's value where published.
    pub paper_vs_baseline: Option<f64>,
}

/// Figure 8 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8 {
    /// All rows.
    pub rows: Vec<Fig8Row>,
}

fn paper_value(arch: ArchConfig, size: CacheSizeClass) -> Option<f64> {
    match (arch, size) {
        (ArchConfig::ShStt, CacheSizeClass::Small) => Some(-0.13),
        (ArchConfig::ShStt, CacheSizeClass::Medium) => Some(-0.23),
        (ArchConfig::ShStt, CacheSizeClass::Large) => Some(-0.31),
        // "8-16% more energy" across sizes:
        (ArchConfig::ShSramNom, CacheSizeClass::Small) => Some(0.08),
        (ArchConfig::ShSramNom, CacheSizeClass::Large) => Some(0.16),
        (ArchConfig::ShSramNom, CacheSizeClass::Medium) => Some(0.12),
        _ => None,
    }
}

/// Regenerates Figure 8.
pub fn generate(cache: &RunCache, params: &ExpParams) -> Fig8 {
    let mut rows = Vec::new();
    for size in CacheSizeClass::ALL {
        let energy_of = |arch: ArchConfig| -> Vec<f64> {
            let batch: Vec<_> = Benchmark::ALL
                .iter()
                .map(|&b| {
                    let mut o = params.options(arch, b);
                    o.size = size;
                    o
                })
                .collect();
            cache
                .run_all(&batch)
                .iter()
                .map(|r| r.energy.chip_total_pj())
                .collect()
        };
        let base = energy_of(ArchConfig::PrSramNt);
        for arch in [ArchConfig::ShStt, ArchConfig::ShSramNom] {
            let e = energy_of(arch);
            let ratio = geomean(baseline_ratios(&e, &base, arch, size));
            rows.push(Fig8Row {
                config: arch.name().into(),
                size: size.name().into(),
                vs_baseline: ratio - 1.0,
                paper_vs_baseline: paper_value(arch, size),
            });
        }
    }
    Fig8 { rows }
}

/// Per-benchmark `energy / baseline` ratios for the suite geomean.
///
/// A zero (or otherwise degenerate) PR-SRAM-NT baseline entry would turn
/// one ratio into `inf`/`NaN`, the geomean into `NaN`, and land `NaN` in
/// the JSON report with no indication of *which* run was broken. Such a
/// baseline is a simulator bug, not a data point — fail loudly with a
/// structured diagnostic naming the offending benchmark instead.
///
/// # Panics
///
/// With a `FIG8-BASELINE` violation when a baseline entry is not finite
/// and positive. (A degenerate *numerator* still surfaces through
/// `geomean`'s own NaN-on-invalid contract.)
fn baseline_ratios<'a>(
    e: &'a [f64],
    base: &'a [f64],
    arch: ArchConfig,
    size: CacheSizeClass,
) -> impl Iterator<Item = f64> + 'a {
    assert_eq!(e.len(), base.len(), "one energy per suite benchmark");
    e.iter().zip(base).enumerate().map(move |(i, (a, b))| {
        if !(b.is_finite() && *b > 0.0) {
            let bench = Benchmark::ALL.get(i).map_or("<unknown>", |bm| bm.name());
            panic!(
                "{}",
                Violation::error(
                    "FIG8-BASELINE",
                    "PR-SRAM-NT baseline energies are finite and positive",
                    format!("fig8: benchmark {bench}, size {}", size.name()),
                    format!(
                        "baseline energy {b} pJ cannot normalise {}; \
                         the baseline run is broken",
                        arch.name()
                    ),
                )
            );
        }
        a / b
    })
}

impl Fig8 {
    /// Text rendering.
    pub fn render_text(&self) -> String {
        let mut t = TextTable::new(vec!["config", "size", "energy vs baseline", "paper"]);
        for r in &self.rows {
            t.row(vec![
                r.config.clone(),
                r.size.clone(),
                pct(r.vs_baseline),
                r.paper_vs_baseline.map(pct).unwrap_or_else(|| "-".into()),
            ]);
        }
        format!(
            "Figure 8: CMP energy vs cache size, normalised to PR-SRAM-NT (suite geomean)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_ratios_pass_healthy_data_through_exactly() {
        let e = [2.0, 9.0];
        let base = [4.0, 3.0];
        let ratios: Vec<f64> =
            baseline_ratios(&e, &base, ArchConfig::ShStt, CacheSizeClass::Medium).collect();
        assert_eq!(ratios, vec![0.5, 3.0]);
    }

    #[test]
    #[should_panic(expected = "FIG8-BASELINE")]
    fn zero_baseline_is_a_structured_diagnostic_not_a_nan() {
        let e = [2.0, 9.0];
        let base = [4.0, 0.0];
        // Force the lazy iterator: the second entry must trip the guard
        // before any NaN can reach a geomean (or a JSON report).
        let _: Vec<f64> =
            baseline_ratios(&e, &base, ArchConfig::ShStt, CacheSizeClass::Medium).collect();
    }

    #[test]
    #[should_panic(expected = "FIG8-BASELINE")]
    fn infinite_baseline_is_rejected_too() {
        let _: Vec<f64> = baseline_ratios(
            &[2.0],
            &[f64::INFINITY],
            ArchConfig::ShSramNom,
            CacheSizeClass::Small,
        )
        .collect();
    }

    #[test]
    fn diagnostic_names_the_offending_benchmark() {
        let mut base = vec![1.0; Benchmark::ALL.len()];
        base[2] = 0.0;
        let e = vec![1.0; Benchmark::ALL.len()];
        let err = std::panic::catch_unwind(|| {
            let _: Vec<f64> =
                baseline_ratios(&e, &base, ArchConfig::ShStt, CacheSizeClass::Large).collect();
        })
        .expect_err("zero baseline must panic");
        let msg = err
            .downcast_ref::<String>()
            .expect("structured violation message");
        assert!(
            msg.contains(Benchmark::ALL[2].name()),
            "diagnostic must name the benchmark: {msg}"
        );
    }
}
