//! Figure 8: CMP energy vs cache size, normalised to PR-SRAM-NT.
//!
//! Paper: SH-STT uses 13% / 23% / 31% less energy than the baseline for
//! small / medium / large; SH-SRAM-Nom uses 8–16% *more*.

use super::common::{geomean, ExpParams, RunCache};
use crate::arch::ArchConfig;
use crate::report::{pct, TextTable};
use respin_sim::CacheSizeClass;
use respin_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// One (config, size) energy point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Row {
    /// Configuration label.
    pub config: String,
    /// Cache sizing class.
    pub size: String,
    /// Energy relative to PR-SRAM-NT at the same size (− = saving).
    pub vs_baseline: f64,
    /// Paper's value where published.
    pub paper_vs_baseline: Option<f64>,
}

/// Figure 8 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8 {
    /// All rows.
    pub rows: Vec<Fig8Row>,
}

fn paper_value(arch: ArchConfig, size: CacheSizeClass) -> Option<f64> {
    match (arch, size) {
        (ArchConfig::ShStt, CacheSizeClass::Small) => Some(-0.13),
        (ArchConfig::ShStt, CacheSizeClass::Medium) => Some(-0.23),
        (ArchConfig::ShStt, CacheSizeClass::Large) => Some(-0.31),
        // "8-16% more energy" across sizes:
        (ArchConfig::ShSramNom, CacheSizeClass::Small) => Some(0.08),
        (ArchConfig::ShSramNom, CacheSizeClass::Large) => Some(0.16),
        (ArchConfig::ShSramNom, CacheSizeClass::Medium) => Some(0.12),
        _ => None,
    }
}

/// Regenerates Figure 8.
pub fn generate(cache: &RunCache, params: &ExpParams) -> Fig8 {
    let mut rows = Vec::new();
    for size in CacheSizeClass::ALL {
        let energy_of = |arch: ArchConfig| -> Vec<f64> {
            let batch: Vec<_> = Benchmark::ALL
                .iter()
                .map(|&b| {
                    let mut o = params.options(arch, b);
                    o.size = size;
                    o
                })
                .collect();
            cache
                .run_all(&batch)
                .iter()
                .map(|r| r.energy.chip_total_pj())
                .collect()
        };
        let base = energy_of(ArchConfig::PrSramNt);
        for arch in [ArchConfig::ShStt, ArchConfig::ShSramNom] {
            let e = energy_of(arch);
            let ratio = geomean(e.iter().zip(&base).map(|(a, b)| a / b));
            rows.push(Fig8Row {
                config: arch.name().into(),
                size: size.name().into(),
                vs_baseline: ratio - 1.0,
                paper_vs_baseline: paper_value(arch, size),
            });
        }
    }
    Fig8 { rows }
}

impl Fig8 {
    /// Text rendering.
    pub fn render_text(&self) -> String {
        let mut t = TextTable::new(vec!["config", "size", "energy vs baseline", "paper"]);
        for r in &self.rows {
            t.row(vec![
                r.config.clone(),
                r.size.clone(),
                pct(r.vs_baseline),
                r.paper_vs_baseline.map(pct).unwrap_or_else(|| "-".into()),
            ]);
        }
        format!(
            "Figure 8: CMP energy vs cache size, normalised to PR-SRAM-NT (suite geomean)\n{}",
            t.render()
        )
    }
}
