//! Voltage sweep: the near-threshold motivation itself.
//!
//! The paper's Introduction: lowering Vdd from nominal into the
//! near-threshold range slows the chip ~10× but cuts power ~100×,
//! "potentially resulting in a full order of magnitude in energy savings".
//! This sweep runs the shared-STT chip across core voltages from 1.0 V
//! down to 0.4 V (the cache rail stays at nominal, as in the design) and
//! reports frequency, power, and energy per instruction — the U-shaped EPI
//! curve whose low-voltage side is exactly where Respin operates.
//!
//! (The runs use custom voltage configurations, so they bypass the shared
//! run cache; the `_cache` parameter keeps the driver signature uniform.)

use super::common::{mean, ExpParams, RunCache};
use crate::arch::ArchConfig;
use crate::report::TextTable;
use respin_variation::FrequencyBand;
use respin_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// One operating-voltage point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VoltagePoint {
    /// Core Vdd, volts.
    pub core_vdd: f64,
    /// Mean core frequency after quantisation, MHz.
    pub mean_core_mhz: f64,
    /// Execution time relative to the 1.0 V point.
    pub time_vs_nominal: f64,
    /// CMP power relative to the 1.0 V point.
    pub power_vs_nominal: f64,
    /// Energy per instruction relative to the 1.0 V point.
    pub epi_vs_nominal: f64,
}

/// The voltage sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VoltageSweep {
    /// Benchmarks averaged.
    pub benchmarks: Vec<String>,
    /// Points from nominal down to near threshold.
    pub points: Vec<VoltagePoint>,
}

/// Voltages swept: nominal down to the paper's NT operating point.
pub const VOLTAGES: [f64; 7] = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4];

/// Benchmarks used (a fast, representative trio).
pub const SWEEP_BENCHMARKS: [Benchmark; 3] =
    [Benchmark::Fft, Benchmark::WaterNsq, Benchmark::Swaptions];

/// Runs the sweep.
pub fn generate(_cache: &RunCache, params: &ExpParams) -> VoltageSweep {
    let mut points = Vec::new();
    let mut nominal: Option<(f64, f64, f64)> = None; // (time, power, epi)
    for &vdd in &VOLTAGES {
        let mut times = Vec::new();
        let mut powers = Vec::new();
        let mut epis = Vec::new();
        let mut mhz = Vec::new();
        for &bench in &SWEEP_BENCHMARKS {
            let o = params.options(ArchConfig::ShStt, bench);
            let mut config = o.arch.chip_config(o.size, o.cores_per_cluster);
            config.clusters = o.clusters;
            config.core_vdd = vdd;
            config.band = FrequencyBand::WIDE;
            config.instructions_per_thread =
                Some(o.measured_per_thread() / 2 + o.warmup_per_thread);
            let mut chip = respin_sim::Chip::new(config, &bench.spec(), o.seed);
            mhz.push(mean(
                chip.clusters
                    .iter()
                    .flat_map(|cl| cl.cores.iter().map(|c| 2500.0 / c.mult as f64)),
            ));
            chip.run_warmup(o.warmup_per_thread * 64);
            let r = chip.run_to_completion();
            times.push(r.time_ps);
            powers.push(r.average_power_mw());
            epis.push(r.epi_pj());
        }
        let (t, p, e) = (mean(times), mean(powers), mean(epis));
        let base = *nominal.get_or_insert((t, p, e));
        points.push(VoltagePoint {
            core_vdd: vdd,
            mean_core_mhz: mean(mhz),
            time_vs_nominal: t / base.0,
            power_vs_nominal: p / base.1,
            epi_vs_nominal: e / base.2,
        });
    }
    VoltageSweep {
        benchmarks: SWEEP_BENCHMARKS
            .iter()
            .map(|b| b.name().to_string())
            .collect(),
        points,
    }
}

impl VoltageSweep {
    /// Text rendering.
    pub fn render_text(&self) -> String {
        let mut t = TextTable::new(vec![
            "core Vdd",
            "mean f (MHz)",
            "time ×",
            "power ×",
            "EPI ×",
        ]);
        for p in &self.points {
            t.row(vec![
                format!("{:.2} V", p.core_vdd),
                format!("{:.0}", p.mean_core_mhz),
                format!("{:.2}", p.time_vs_nominal),
                format!("{:.3}", p.power_vs_nominal),
                format!("{:.3}", p.epi_vs_nominal),
            ]);
        }
        format!(
            "Voltage sweep (Introduction motivation): mean over {:?}\n{}\n\
             (paper: NT ≈ 10× slower, ~100× less power, ~10× less energy for the cores;\n\
              the chip-level numbers here include the nominal-voltage cache rail)\n",
            self.benchmarks,
            t.render()
        )
    }
}
