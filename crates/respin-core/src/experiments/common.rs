//! Shared plumbing for the experiment drivers: run parameters, a
//! memoising run cache (several figures share the same underlying runs),
//! and parallel sweep helpers.

use crate::arch::ArchConfig;
use crate::runner::{run, RunOptions};
use parking_lot::Mutex;
use rayon::prelude::*;
use respin_sim::{CacheSizeClass, RunResult};
use respin_trace::{ScopedSink, TraceEvent, TraceKind, TraceSink, Tracer};
use respin_workloads::Benchmark;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};

/// Scale of an experiment campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpParams {
    /// Measured instructions per thread.
    pub instructions_per_thread: u64,
    /// Warm-up instructions per thread.
    pub warmup_per_thread: u64,
    /// Consolidation epoch, instructions per cluster.
    pub epoch_instructions: u64,
    /// Seed for variation + workloads.
    pub seed: u64,
}

impl ExpParams {
    /// Full scale: enough epochs for the consolidation searches to
    /// converge; a full campaign takes minutes.
    pub fn full() -> Self {
        Self {
            instructions_per_thread: 256_000,
            warmup_per_thread: 16_000,
            epoch_instructions: 40_000,
            seed: 42,
        }
    }

    /// Quick scale for tests and Criterion benches (seconds, same shapes
    /// with more noise).
    pub fn quick() -> Self {
        Self {
            instructions_per_thread: 40_000,
            warmup_per_thread: 8_000,
            epoch_instructions: 10_000,
            seed: 42,
        }
    }

    /// Builds run options at this scale.
    pub fn options(&self, arch: ArchConfig, benchmark: Benchmark) -> RunOptions {
        let mut o = RunOptions::new(arch, benchmark);
        o.instructions_per_thread = Some(self.instructions_per_thread);
        o.warmup_per_thread = self.warmup_per_thread;
        o.epoch_instructions = Some(self.epoch_instructions);
        o.seed = self.seed;
        o
    }
}

/// One per-key in-flight/completed cell: empty while the winning caller
/// simulates, filled exactly once with the shared result.
type RunCell = Arc<OnceLock<Arc<RunResult>>>;

/// Memoising run cache shared by the experiment drivers.
///
/// Keys are the serialised [`RunOptions`], which include the
/// `reference_loop` execution-strategy flag: a reference-loop run and a
/// fast-path run of the same physics memoise separately (their results
/// are bit-identical by contract, but conflating them would let a cached
/// fast result masquerade as reference coverage in differential tests
/// and in the `bench_report` timing harness).
///
/// Concurrency contract: each distinct option set simulates **exactly
/// once**, no matter how many threads ask for it simultaneously. Every
/// key owns a [`OnceLock`] cell; the first caller to reach an empty cell
/// runs the simulation inside `get_or_init` and every concurrent caller
/// for the same key blocks on that cell (not on the map lock, which is
/// only held for the lookup) until the result lands. The previous
/// implementation dropped the map lock while simulating, so a
/// simultaneous second caller re-ran the same multi-second simulation
/// and discarded one result.
#[derive(Clone, Default)]
pub struct RunCache {
    inner: Arc<Mutex<HashMap<String, RunCell>>>,
    /// Optional trace sink: each de-duplicated simulation gets a
    /// [`ScopedSink`] stamping a fresh run id, and announces itself with
    /// a `RunStart` event (so "number of `RunStart`s" = "number of
    /// simulations actually paid for").
    sink: Option<Arc<dyn TraceSink>>,
    /// Epoch cap forwarded to every scoped sink (`--trace-epochs`).
    trace_epochs: Option<u64>,
    next_run: Arc<AtomicU32>,
}

impl RunCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty cache that traces every underlying simulation into `sink`,
    /// keeping epoch-series records only for the first `trace_epochs`
    /// epochs when a cap is given.
    pub fn with_tracer(sink: Arc<dyn TraceSink>, trace_epochs: Option<u64>) -> Self {
        Self {
            sink: Some(sink),
            trace_epochs,
            ..Self::default()
        }
    }

    /// Runs `opts` (or returns the memoised result). Concurrent calls
    /// with equal options execute the simulation once; the losers block
    /// until the winner's result is available.
    pub fn run(&self, opts: &RunOptions) -> Arc<RunResult> {
        let key = serde_json::to_string(opts).expect("options serialise");
        let cell = self.inner.lock().entry(key.clone()).or_default().clone();
        cell.get_or_init(|| Arc::new(self.execute(&key, opts)))
            .clone()
    }

    /// Actually simulates (cache miss path), installing a scoped tracer
    /// when this cache was built with one.
    fn execute(&self, key: &str, opts: &RunOptions) -> RunResult {
        match &self.sink {
            Some(sink) => {
                let id = self.next_run.fetch_add(1, Ordering::Relaxed);
                let scoped: Arc<dyn TraceSink> =
                    Arc::new(ScopedSink::new(id, self.trace_epochs, sink.clone()));
                scoped.record(&TraceEvent::at(
                    0,
                    TraceKind::RunStart {
                        options: key.to_string(),
                    },
                ));
                run(&opts.clone().traced(Tracer::new(scoped)))
            }
            None => run(opts),
        }
    }

    /// Runs a batch in parallel (deduplicated through the cache).
    pub fn run_all(&self, batch: &[RunOptions]) -> Vec<Arc<RunResult>> {
        batch.par_iter().map(|o| self.run(o)).collect()
    }

    /// Number of memoised (completed) runs.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .values()
            .filter(|cell| cell.get().is_some())
            .count()
    }

    /// True when no run has completed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Sweep helper: (arch × benchmark) at `size`, in parallel, returning
/// results in input order.
pub fn sweep(
    cache: &RunCache,
    params: &ExpParams,
    archs: &[ArchConfig],
    benches: &[Benchmark],
    size: CacheSizeClass,
) -> Vec<(ArchConfig, Benchmark, Arc<RunResult>)> {
    let combos: Vec<(ArchConfig, Benchmark)> = archs
        .iter()
        .flat_map(|&a| benches.iter().map(move |&b| (a, b)))
        .collect();
    combos
        .par_iter()
        .map(|&(a, b)| {
            let mut o = params.options(a, b);
            o.size = size;
            (a, b, cache.run(&o))
        })
        .collect()
}

/// Geometric mean (the conventional average for normalised ratios).
///
/// Contract: defined only for **strictly positive, finite** inputs
/// (normalised energy/time ratios always are). Any other input — or an
/// empty sequence — returns `NaN` so the corruption is visible at the
/// call site instead of silently propagating: `ln` of a non-positive
/// value would otherwise fold `-inf`/`NaN` into the sum and surface as a
/// plausible-looking 0 or garbage mean several tables later.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if !(v.is_finite() && v > 0.0) {
            return f64::NAN;
        }
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return f64::NAN;
    }
    (log_sum / n as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        return f64::NAN;
    }
    sum / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean([1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(std::iter::empty()).is_nan());
    }

    #[test]
    fn geomean_rejects_non_positive_and_non_finite_inputs() {
        // Each poison value must surface as NaN, never as a
        // plausible-looking number.
        assert!(geomean([1.0, 0.0, 4.0]).is_nan());
        assert!(geomean([1.0, -2.0]).is_nan());
        assert!(geomean([f64::NAN]).is_nan());
        assert!(geomean([f64::INFINITY, 2.0]).is_nan());
        // ...while all-positive input stays exact.
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cache_deduplicates() {
        let cache = RunCache::new();
        let mut params = ExpParams::quick();
        params.instructions_per_thread = 2_000;
        params.warmup_per_thread = 500;
        let mut o = params.options(ArchConfig::ShStt, Benchmark::Fft);
        o.clusters = 1;
        o.cores_per_cluster = 4;
        let a = cache.run(&o);
        let b = cache.run(&o);
        assert_eq!(cache.len(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn concurrent_identical_runs_simulate_once() {
        use respin_trace::RingSink;

        // The vendored rayon is sequential, so the stampede can only be
        // reproduced with real OS threads racing the same key.
        let ring = Arc::new(RingSink::unbounded());
        let cache = RunCache::with_tracer(ring.clone(), None);
        let mut params = ExpParams::quick();
        params.instructions_per_thread = 2_000;
        params.warmup_per_thread = 500;
        let mut o = params.options(ArchConfig::ShStt, Benchmark::Fft);
        o.clusters = 1;
        o.cores_per_cluster = 4;

        let results: Vec<Arc<RunResult>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cache = cache.clone();
                    let o = o.clone();
                    s.spawn(move || cache.run(&o))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("runner thread panicked"))
                .collect()
        });

        assert_eq!(cache.len(), 1);
        for r in &results[1..] {
            assert!(
                Arc::ptr_eq(&results[0], r),
                "every caller must share the single memoised result"
            );
        }
        // Exactly one RunStart: the simulation was paid for once. Before
        // the in-flight dedup, each racing thread emitted its own.
        let run_starts = ring
            .snapshot()
            .iter()
            .filter(|e| matches!(e.kind, respin_trace::TraceKind::RunStart { .. }))
            .count();
        assert_eq!(run_starts, 1);
    }

    #[test]
    fn quick_params_are_smaller() {
        assert!(
            ExpParams::quick().instructions_per_thread < ExpParams::full().instructions_per_thread
        );
    }
}
