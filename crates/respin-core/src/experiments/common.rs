//! Shared plumbing for the experiment drivers: run parameters, a
//! memoising run cache (several figures share the same underlying runs),
//! and parallel sweep helpers.

use crate::arch::ArchConfig;
use crate::runner::{run, RunOptions};
use parking_lot::Mutex;
use rayon::prelude::*;
use respin_sim::{CacheSizeClass, RunResult};
use respin_workloads::Benchmark;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Scale of an experiment campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpParams {
    /// Measured instructions per thread.
    pub instructions_per_thread: u64,
    /// Warm-up instructions per thread.
    pub warmup_per_thread: u64,
    /// Consolidation epoch, instructions per cluster.
    pub epoch_instructions: u64,
    /// Seed for variation + workloads.
    pub seed: u64,
}

impl ExpParams {
    /// Full scale: enough epochs for the consolidation searches to
    /// converge; a full campaign takes minutes.
    pub fn full() -> Self {
        Self {
            instructions_per_thread: 256_000,
            warmup_per_thread: 16_000,
            epoch_instructions: 40_000,
            seed: 42,
        }
    }

    /// Quick scale for tests and Criterion benches (seconds, same shapes
    /// with more noise).
    pub fn quick() -> Self {
        Self {
            instructions_per_thread: 40_000,
            warmup_per_thread: 8_000,
            epoch_instructions: 10_000,
            seed: 42,
        }
    }

    /// Builds run options at this scale.
    pub fn options(&self, arch: ArchConfig, benchmark: Benchmark) -> RunOptions {
        let mut o = RunOptions::new(arch, benchmark);
        o.instructions_per_thread = Some(self.instructions_per_thread);
        o.warmup_per_thread = self.warmup_per_thread;
        o.epoch_instructions = Some(self.epoch_instructions);
        o.seed = self.seed;
        o
    }
}

/// Memoising run cache shared by the experiment drivers.
#[derive(Clone, Default)]
pub struct RunCache {
    inner: Arc<Mutex<HashMap<String, Arc<RunResult>>>>,
}

impl RunCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `opts` (or returns the memoised result).
    pub fn run(&self, opts: &RunOptions) -> Arc<RunResult> {
        let key = serde_json::to_string(opts).expect("options serialise");
        if let Some(hit) = self.inner.lock().get(&key) {
            return hit.clone();
        }
        let result = Arc::new(run(opts));
        self.inner
            .lock()
            .entry(key)
            .or_insert_with(|| result.clone())
            .clone()
    }

    /// Runs a batch in parallel (deduplicated through the cache).
    pub fn run_all(&self, batch: &[RunOptions]) -> Vec<Arc<RunResult>> {
        batch.par_iter().map(|o| self.run(o)).collect()
    }

    /// Number of memoised runs.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// Sweep helper: (arch × benchmark) at `size`, in parallel, returning
/// results in input order.
pub fn sweep(
    cache: &RunCache,
    params: &ExpParams,
    archs: &[ArchConfig],
    benches: &[Benchmark],
    size: CacheSizeClass,
) -> Vec<(ArchConfig, Benchmark, Arc<RunResult>)> {
    let combos: Vec<(ArchConfig, Benchmark)> = archs
        .iter()
        .flat_map(|&a| benches.iter().map(move |&b| (a, b)))
        .collect();
    combos
        .par_iter()
        .map(|&(a, b)| {
            let mut o = params.options(a, b);
            o.size = size;
            (a, b, cache.run(&o))
        })
        .collect()
}

/// Geometric mean (the conventional average for normalised ratios).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return f64::NAN;
    }
    (log_sum / n as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        return f64::NAN;
    }
    sum / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean([1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(std::iter::empty()).is_nan());
    }

    #[test]
    fn cache_deduplicates() {
        let cache = RunCache::new();
        let mut params = ExpParams::quick();
        params.instructions_per_thread = 2_000;
        params.warmup_per_thread = 500;
        let mut o = params.options(ArchConfig::ShStt, Benchmark::Fft);
        o.clusters = 1;
        o.cores_per_cluster = 4;
        let a = cache.run(&o);
        let b = cache.run(&o);
        assert_eq!(cache.len(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn quick_params_are_smaller() {
        assert!(
            ExpParams::quick().instructions_per_thread < ExpParams::full().instructions_per_thread
        );
    }
}
