//! Shared plumbing for the experiment drivers: run parameters, a
//! memoising run cache (several figures share the same underlying runs),
//! and parallel sweep helpers dispatching onto the `respin-pool`
//! work-stealing run pool (`RESPIN_THREADS` / `--threads` sized).
//!
//! Determinism contract: every simulation is a pure function of its
//! [`RunOptions`], results are returned in input order, and trace run
//! ids are hashes of the canonical options key — so experiment results,
//! reports, and (canonically ordered) traces are bit-identical at every
//! thread count. See DESIGN.md §13.

use crate::arch::ArchConfig;
use crate::persist::{JournalRecord, ResultJournal, RunOutcome};
use crate::runner::{run, RunOptions};
use parking_lot::{Condvar, Mutex};
use respin_pool::Pool;
use respin_power::diag::{Report, Violation};
use respin_sim::{CacheSizeClass, RunResult};
use respin_trace::{ScopedSink, TraceEvent, TraceKind, TraceSink, Tracer};
use respin_workloads::Benchmark;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Best-effort human-readable text from a panic payload (the common
/// `String`/`&str` payloads; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "run panicked (non-string payload)".to_string())
}

/// Scale of an experiment campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpParams {
    /// Measured instructions per thread.
    pub instructions_per_thread: u64,
    /// Warm-up instructions per thread.
    pub warmup_per_thread: u64,
    /// Consolidation epoch, instructions per cluster.
    pub epoch_instructions: u64,
    /// Seed for variation + workloads.
    pub seed: u64,
}

impl ExpParams {
    /// Full scale: enough epochs for the consolidation searches to
    /// converge; a full campaign takes minutes.
    pub fn full() -> Self {
        Self {
            instructions_per_thread: 256_000,
            warmup_per_thread: 16_000,
            epoch_instructions: 40_000,
            seed: 42,
        }
    }

    /// Quick scale for tests and Criterion benches (seconds, same shapes
    /// with more noise).
    pub fn quick() -> Self {
        Self {
            instructions_per_thread: 40_000,
            warmup_per_thread: 8_000,
            epoch_instructions: 10_000,
            seed: 42,
        }
    }

    /// Builds run options at this scale.
    pub fn options(&self, arch: ArchConfig, benchmark: Benchmark) -> RunOptions {
        let mut o = RunOptions::new(arch, benchmark);
        o.instructions_per_thread = Some(self.instructions_per_thread);
        o.warmup_per_thread = self.warmup_per_thread;
        o.epoch_instructions = Some(self.epoch_instructions);
        o.seed = self.seed;
        o
    }
}

/// Lifecycle of one cache key.
#[derive(Debug, Default)]
enum CellState {
    /// Nobody is simulating this key.
    #[default]
    Empty,
    /// One caller (the winner) is simulating; everyone else waits on the
    /// cell's condvar.
    InFlight,
    /// The result landed; shared by every caller forever after.
    Done(Arc<RunResult>),
}

/// One per-key in-flight/completed cell.
///
/// This replaces the earlier `OnceLock`-based cell, whose one-shot
/// initialisation had a fatal recovery property: a task that panicked
/// inside `get_or_init` left the cell empty but its waiters blocked (and
/// any later caller re-racing an aborted slot). Here the state machine
/// is explicit — `Empty → InFlight → Done` on success, `InFlight →
/// Empty` (with a wake-up) when the winner unwinds — so a panicked run
/// never poisons the key: the next caller simply becomes the new winner
/// and retries.
#[derive(Debug, Default)]
struct RunCell {
    state: Mutex<CellState>,
    ready: Condvar,
}

/// Resets an `InFlight` cell back to `Empty` (waking all waiters) when
/// the winning caller unwinds instead of completing. Disarmed on the
/// success path after `Done` is stored.
struct ResetOnUnwind<'a> {
    cell: &'a RunCell,
    armed: bool,
}

impl Drop for ResetOnUnwind<'_> {
    fn drop(&mut self) {
        if self.armed {
            *self.cell.state.lock() = CellState::Empty;
            self.cell.ready.notify_all();
        }
    }
}

/// The canonical cache key: the serialised [`RunOptions`]. One
/// serialisation point so the key, the memoisation map, the trace run
/// id, and the `respin-serve` content-addressed store can never
/// disagree.
pub fn canonical_key(opts: &RunOptions) -> String {
    serde_json::to_string(opts).expect("options serialise")
}

/// A persistent second level behind the [`RunCache`]: somewhere completed
/// results can be saved to and reloaded from across process lifetimes
/// (the `respin-serve` content-addressed on-disk store implements this).
///
/// Contract:
/// * `load` must return **exactly** the [`RunResult`] that was stored
///   for this canonical key, or `None` — never a near-miss. A warm
///   result is substituted for a live simulation, so any drift breaks
///   the workspace byte-identity contract.
/// * Both operations are called outside the cache's per-key cell lock
///   but only ever by the key's single winner, so implementations need
///   no per-key dedup of their own (just whole-store thread safety).
/// * Failures must degrade (return `None` / skip the save), not panic:
///   a persistence problem may cost warm starts, never a campaign.
pub trait ResultBacking: Send + Sync {
    /// Returns the stored result for `key`, if an intact one exists.
    fn load(&self, key: &str) -> Option<RunResult>;
    /// Durably saves `result` under `key` (best-effort).
    fn save(&self, key: &str, result: &RunResult);
}

/// Deterministic trace run id: FNV-1a over the canonical options key,
/// finished with the splitmix64 mixer (the same finalizer the fault
/// models use for seed derivation), folded to 32 bits.
///
/// Run ids must be a pure function of *what ran*, not of scheduling: a
/// parallel sweep completes runs in nondeterministic order, so a
/// `fetch_add` counter would stamp schedule-dependent ids and traced
/// parallel output could never be byte-compared against sequential. A
/// key hash is stable across thread counts, processes, and PRs. (A
/// 32-bit collision between two distinct option sets in one trace is
/// possible but needs ~2^16 simultaneous runs to become likely —
/// campaigns here are tens of runs.)
pub(crate) fn stable_run_id(key: &str) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 32) as u32 ^ (z as u32)
}

/// Memoising run cache shared by the experiment drivers.
///
/// Keys are the serialised [`RunOptions`], which include the
/// `reference_loop` execution-strategy flag: a reference-loop run and a
/// fast-path run of the same physics memoise separately (their results
/// are bit-identical by contract, but conflating them would let a cached
/// fast result masquerade as reference coverage in differential tests
/// and in the `bench_report` timing harness).
///
/// Concurrency contract: each distinct option set simulates **exactly
/// once**, no matter how many threads ask for it simultaneously. Every
/// key owns a [`OnceLock`] cell; the first caller to reach an empty cell
/// runs the simulation inside `get_or_init` and every concurrent caller
/// for the same key blocks on that cell (not on the map lock, which is
/// only held for the lookup) until the result lands. The previous
/// implementation dropped the map lock while simulating, so a
/// simultaneous second caller re-ran the same multi-second simulation
/// and discarded one result.
#[derive(Clone, Default)]
pub struct RunCache {
    // BTreeMap, not HashMap (determinism lint D001): `len` walks the
    // cells and future iteration (eviction, the roadmap's on-disk store)
    // must see key order, not hasher order. Lookups are once per
    // multi-second simulation — map flavour is free here.
    inner: Arc<Mutex<BTreeMap<String, Arc<RunCell>>>>,
    /// Optional trace sink: each de-duplicated simulation gets a
    /// [`ScopedSink`] stamping a fresh run id, and announces itself with
    /// a `RunStart` event (so "number of `RunStart`s" = "number of
    /// simulations actually paid for").
    sink: Option<Arc<dyn TraceSink>>,
    /// Epoch cap forwarded to every scoped sink (`--trace-epochs`).
    trace_epochs: Option<u64>,
    /// Optional result journal: every completed simulation is appended
    /// as an `Ok` record the moment it finishes (see
    /// [`crate::persist`]). Cache *hits* are not re-journaled.
    journal: Option<Arc<ResultJournal>>,
    /// Optional persistent second level: the winner consults it before
    /// simulating (a hit completes the key without paying for a run —
    /// or journaling one) and saves every live result into it.
    backing: Option<Arc<dyn ResultBacking>>,
    /// Pool the batch entry points dispatch onto when no pool is passed
    /// explicitly (`None` = [`Pool::current`]). The `respin-serve`
    /// daemon hands each admitted job a cache view carrying the job's
    /// fair-share pool, so experiment drivers deep inside
    /// [`sweep`]/[`RunCache::run_all`] respect the per-job thread
    /// budget without threading a pool through every signature.
    pool: Option<Pool>,
}

impl RunCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty cache that traces every underlying simulation into `sink`,
    /// keeping epoch-series records only for the first `trace_epochs`
    /// epochs when a cap is given.
    pub fn with_tracer(sink: Arc<dyn TraceSink>, trace_epochs: Option<u64>) -> Self {
        Self {
            sink: Some(sink),
            trace_epochs,
            ..Self::default()
        }
    }

    /// Runs `opts` (or returns the memoised result). Concurrent calls
    /// with equal options execute the simulation once; the losers block
    /// until the winner's result is available.
    pub fn run(&self, opts: &RunOptions) -> Arc<RunResult> {
        self.run_keyed(&canonical_key(opts), opts)
    }

    /// Installs `journal` so every subsequent completed simulation is
    /// appended as a durable `Ok` record (chained builder form).
    pub fn with_journal(mut self, journal: Arc<ResultJournal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Installs a persistent second level (chained builder form): the
    /// winner of each key consults `backing` before simulating, and
    /// every live result is saved into it. See [`ResultBacking`].
    pub fn with_backing(mut self, backing: Arc<dyn ResultBacking>) -> Self {
        self.backing = Some(backing);
        self
    }

    /// Pins the pool used by [`RunCache::run_all`] and by the sweep
    /// helpers when no pool is passed explicitly (chained builder form).
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The pinned pool, or [`Pool::current`] when none is pinned.
    pub fn pool_or_current(&self) -> Pool {
        self.pool.unwrap_or_else(Pool::current)
    }

    /// A view of this cache sharing the memo map, journal, and backing,
    /// but tracing into `sink` (with its own epoch cap) — the shape the
    /// `respin-serve` daemon needs: one process-wide cache, one trace
    /// stream per connection. Only simulations this view actually
    /// *executes* are traced; a key that lands warm (memo, another
    /// job's in-flight run, or the backing store) streams nothing.
    pub fn with_sink(&self, sink: Arc<dyn TraceSink>, trace_epochs: Option<u64>) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
            sink: Some(sink),
            trace_epochs,
            journal: self.journal.clone(),
            backing: self.backing.clone(),
            pool: self.pool,
        }
    }

    /// The memoised result for `opts`, if one has already completed —
    /// never triggers (or waits for) a simulation.
    pub fn peek(&self, opts: &RunOptions) -> Option<Arc<RunResult>> {
        self.peek_key(&canonical_key(opts))
    }

    /// [`RunCache::peek`] with the key already serialised.
    pub fn peek_key(&self, key: &str) -> Option<Arc<RunResult>> {
        let cell = self.inner.lock().get(key).cloned()?;
        let state = cell.state.lock();
        match &*state {
            CellState::Done(result) => Some(result.clone()),
            _ => None,
        }
    }

    /// Warms the cache from replayed journal records: every `Ok` record
    /// becomes a completed cell, so those keys never re-simulate.
    /// `Failed` records are retryable and deliberately skipped. Returns
    /// the number of results inserted (already-warm keys are not
    /// overwritten — the first landing wins, as in live execution).
    pub fn warm(&self, records: &[JournalRecord]) -> usize {
        let mut inserted = 0;
        let mut inner = self.inner.lock();
        for record in records {
            let RunOutcome::Ok(result) = &record.outcome else {
                continue;
            };
            let cell = inner.entry(record.key.clone()).or_default().clone();
            let mut state = cell.state.lock();
            if matches!(*state, CellState::Empty) {
                *state = CellState::Done(Arc::new(result.as_ref().clone()));
                inserted += 1;
            }
        }
        inserted
    }

    /// [`RunCache::run`] with the key already serialised (the batch path
    /// computes keys up front for pre-deduplication; don't pay twice).
    fn run_keyed(&self, key: &str, opts: &RunOptions) -> Arc<RunResult> {
        let cell = self
            .inner
            .lock()
            .entry(key.to_string())
            .or_default()
            .clone();
        // Claim loop: return a Done result, wait out another caller's
        // InFlight claim (re-checking after every wake — a panicked
        // winner resets to Empty, which we then claim), or claim Empty
        // and become the winner.
        loop {
            let mut state = cell.state.lock();
            match &*state {
                CellState::Done(result) => return result.clone(),
                CellState::InFlight => {
                    state = cell.ready.wait(state);
                    // Spurious wakes and reset-to-Empty both land back at
                    // the match; drop the guard by looping.
                    drop(state);
                }
                CellState::Empty => {
                    *state = CellState::InFlight;
                    break;
                }
            }
        }
        // Winner path. The simulation runs outside the cell lock; the
        // guard guarantees that if it unwinds, the cell returns to
        // `Empty` and waiters wake to retry — a panic never wedges the
        // key (see the in-flight dedup regression test).
        let mut guard = ResetOnUnwind {
            cell: &cell,
            armed: true,
        };
        // Persistent second level first: a warm result substitutes for
        // the simulation bit-for-bit (the ResultBacking contract), costs
        // no RunStart, and is not re-journaled — exactly like a memo
        // hit, which is what it is, one process lifetime removed.
        if let Some(backing) = &self.backing {
            if let Some(warm) = backing.load(key) {
                let warm = Arc::new(warm);
                *cell.state.lock() = CellState::Done(warm.clone());
                guard.armed = false;
                cell.ready.notify_all();
                return warm;
            }
        }
        let result = match catch_unwind(AssertUnwindSafe(|| self.execute(key, opts))) {
            Ok(result) => Arc::new(result),
            Err(payload) => {
                // Journal the panic as a failed-retryable record before
                // re-raising: the crash report survives the process, and
                // a resume re-executes exactly this key.
                if let Some(journal) = &self.journal {
                    let _ = journal.append(&JournalRecord::failed(key, panic_message(&payload)));
                }
                std::panic::resume_unwind(payload);
            }
        };
        if let Some(journal) = &self.journal {
            if let Err(e) = journal.append(&JournalRecord::ok(key, &result)) {
                // Journaling is durability, not correctness: an append
                // failure (disk full, dir removed) degrades resumability
                // but must not fail the run that just completed.
                eprintln!(
                    "warning: failed to journal run to {}: {e}",
                    journal.path().display()
                );
            }
        }
        if let Some(backing) = &self.backing {
            // Only a *completed* result ever reaches the store — the
            // panic path above re-raises before this point, so a failed
            // job can journal `failed-retryable` without ever poisoning
            // a content-addressed entry.
            backing.save(key, &result);
        }
        *cell.state.lock() = CellState::Done(result.clone());
        guard.armed = false;
        cell.ready.notify_all();
        result
    }

    /// Actually simulates (cache miss path), installing a scoped tracer
    /// when this cache was built with one. The run id stamped onto the
    /// trace is [`stable_run_id`] of the cache key — a pure function of
    /// the options, so traced sweeps are comparable across thread counts
    /// and sessions.
    fn execute(&self, key: &str, opts: &RunOptions) -> RunResult {
        match &self.sink {
            Some(sink) => {
                let id = stable_run_id(key);
                let scoped: Arc<dyn TraceSink> =
                    Arc::new(ScopedSink::new(id, self.trace_epochs, sink.clone()));
                scoped.record(&TraceEvent::at(
                    0,
                    TraceKind::RunStart {
                        options: key.to_string(),
                    },
                ));
                run(&opts.clone().traced(Tracer::new(scoped)))
            }
            None => run(opts),
        }
    }

    /// Runs a batch on the cache's pinned pool (else [`Pool::current`]),
    /// deduplicated through the cache, preserving input order.
    pub fn run_all(&self, batch: &[RunOptions]) -> Vec<Arc<RunResult>> {
        self.run_all_on(&self.pool_or_current(), batch)
    }

    /// [`RunCache::run_all`] on an explicitly-sized pool.
    ///
    /// Duplicate option sets are collapsed *before* dispatch: only
    /// distinct keys reach the pool, so a batch with N copies of one
    /// configuration occupies one worker for one simulation instead of
    /// parking N-1 workers on the same in-flight [`OnceLock`] cell while
    /// the rest of the queue waits. Every batch position still gets its
    /// (shared) result, in input order.
    pub fn run_all_on(&self, pool: &Pool, batch: &[RunOptions]) -> Vec<Arc<RunResult>> {
        let keys: Vec<String> = batch.iter().map(canonical_key).collect();
        // Ordered map for the same reason as `inner`: the dedup *outcome*
        // is order-independent (first occurrence wins either way), but
        // nothing downstream should ever have to prove that against a
        // hasher (determinism lint D001).
        let mut position: BTreeMap<&str, usize> = BTreeMap::new();
        let mut unique: Vec<usize> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            position.entry(key.as_str()).or_insert_with(|| {
                unique.push(i);
                unique.len() - 1
            });
        }
        let distinct: Vec<Arc<RunResult>> =
            pool.par_map(&unique, |&i| self.run_keyed(&keys[i], &batch[i]));
        keys.iter()
            .map(|key| distinct[position[key.as_str()]].clone())
            .collect()
    }

    /// Fault-isolating [`RunCache::run_all_on`]: one panicking run does
    /// not lose the batch. Every position gets `Some(result)` on
    /// success; a panicked key yields `None` at each of its positions,
    /// is appended to the journal as a failed-retryable record, and
    /// contributes one `RUN-PANIC` violation to the returned [`Report`]
    /// — the campaign's structured partial-failure report. Successful
    /// results land in cache and journal exactly as in `run_all_on`, so
    /// a later resume retries only the failed keys.
    pub fn run_all_recovering(
        &self,
        pool: &Pool,
        batch: &[RunOptions],
    ) -> (Vec<Option<Arc<RunResult>>>, Report) {
        let keys: Vec<String> = batch.iter().map(canonical_key).collect();
        let mut position: BTreeMap<&str, usize> = BTreeMap::new();
        let mut unique: Vec<usize> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            position.entry(key.as_str()).or_insert_with(|| {
                unique.push(i);
                unique.len() - 1
            });
        }
        let outcomes = pool.try_par_map(&unique, |&i| self.run_keyed(&keys[i], &batch[i]));
        let mut report = Report::new();
        for (&i, outcome) in unique.iter().zip(&outcomes) {
            if let Err(message) = outcome {
                // The failed-retryable journal record was already written
                // by `run_keyed` at the moment of the panic; here we only
                // fold the failure into the campaign report.
                report.push(Violation::error(
                    "RUN-PANIC",
                    "campaign partial failure",
                    &keys[i],
                    format!("run panicked ({message}); key recorded as failed-retryable"),
                ));
            }
        }
        let results = keys
            .iter()
            .map(|key| outcomes[position[key.as_str()]].as_ref().ok().cloned())
            .collect();
        (results, report)
    }

    /// Number of memoised (completed) runs.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .values()
            .filter(|cell| matches!(*cell.state.lock(), CellState::Done(_)))
            .count()
    }

    /// True when no run has completed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Sweep helper: (arch × benchmark) at `size`, on the cache's pinned
/// pool (else the current run pool), returning results in input order.
pub fn sweep(
    cache: &RunCache,
    params: &ExpParams,
    archs: &[ArchConfig],
    benches: &[Benchmark],
    size: CacheSizeClass,
) -> Vec<(ArchConfig, Benchmark, Arc<RunResult>)> {
    let combos: Vec<(ArchConfig, Benchmark)> = archs
        .iter()
        .flat_map(|&a| benches.iter().map(move |&b| (a, b)))
        .collect();
    cache.pool_or_current().par_map(&combos, |&(a, b)| {
        let mut o = params.options(a, b);
        o.size = size;
        (a, b, cache.run(&o))
    })
}

/// Geometric mean (the conventional average for normalised ratios).
///
/// Contract: defined only for **strictly positive, finite** inputs
/// (normalised energy/time ratios always are). Any other input — or an
/// empty sequence — returns `NaN` so the corruption is visible at the
/// call site instead of silently propagating: `ln` of a non-positive
/// value would otherwise fold `-inf`/`NaN` into the sum and surface as a
/// plausible-looking 0 or garbage mean several tables later.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if !(v.is_finite() && v > 0.0) {
            return f64::NAN;
        }
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return f64::NAN;
    }
    (log_sum / n as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        return f64::NAN;
    }
    sum / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean([1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(std::iter::empty()).is_nan());
    }

    #[test]
    fn geomean_rejects_non_positive_and_non_finite_inputs() {
        // Each poison value must surface as NaN, never as a
        // plausible-looking number.
        assert!(geomean([1.0, 0.0, 4.0]).is_nan());
        assert!(geomean([1.0, -2.0]).is_nan());
        assert!(geomean([f64::NAN]).is_nan());
        assert!(geomean([f64::INFINITY, 2.0]).is_nan());
        // ...while all-positive input stays exact.
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cache_deduplicates() {
        let cache = RunCache::new();
        let mut params = ExpParams::quick();
        params.instructions_per_thread = 2_000;
        params.warmup_per_thread = 500;
        let mut o = params.options(ArchConfig::ShStt, Benchmark::Fft);
        o.clusters = 1;
        o.cores_per_cluster = 4;
        let a = cache.run(&o);
        let b = cache.run(&o);
        assert_eq!(cache.len(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn concurrent_identical_runs_simulate_once() {
        use respin_trace::RingSink;

        // Raw OS threads racing the same key, below the run_all
        // pre-dedup layer: the OnceLock cell itself must hold.
        let ring = Arc::new(RingSink::unbounded());
        let cache = RunCache::with_tracer(ring.clone(), None);
        let mut params = ExpParams::quick();
        params.instructions_per_thread = 2_000;
        params.warmup_per_thread = 500;
        let mut o = params.options(ArchConfig::ShStt, Benchmark::Fft);
        o.clusters = 1;
        o.cores_per_cluster = 4;

        let results: Vec<Arc<RunResult>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cache = cache.clone();
                    let o = o.clone();
                    s.spawn(move || cache.run(&o))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("runner thread panicked"))
                .collect()
        });

        assert_eq!(cache.len(), 1);
        for r in &results[1..] {
            assert!(
                Arc::ptr_eq(&results[0], r),
                "every caller must share the single memoised result"
            );
        }
        // Exactly one RunStart: the simulation was paid for once. Before
        // the in-flight dedup, each racing thread emitted its own.
        let run_starts = ring
            .snapshot()
            .iter()
            .filter(|e| matches!(e.kind, respin_trace::TraceKind::RunStart { .. }))
            .count();
        assert_eq!(run_starts, 1);
    }

    #[test]
    fn run_all_prededups_identical_options_within_a_batch() {
        use respin_trace::RingSink;

        // A batch of N identical option sets must cost one simulation
        // (one RunStart) and must not park N-1 pool workers on the same
        // in-flight cell: only distinct keys are dispatched at all.
        let ring = Arc::new(RingSink::unbounded());
        let cache = RunCache::with_tracer(ring.clone(), None);
        let mut params = ExpParams::quick();
        params.instructions_per_thread = 2_000;
        params.warmup_per_thread = 500;
        let mut o = params.options(ArchConfig::ShStt, Benchmark::Fft);
        o.clusters = 1;
        o.cores_per_cluster = 4;
        let batch = vec![o; 6];

        let results = cache.run_all_on(&Pool::with_threads(4), &batch);

        assert_eq!(results.len(), 6, "every batch position gets a result");
        assert_eq!(cache.len(), 1, "one distinct key, one memoised run");
        for r in &results[1..] {
            assert!(Arc::ptr_eq(&results[0], r), "all positions share it");
        }
        let run_starts = ring
            .snapshot()
            .iter()
            .filter(|e| matches!(e.kind, respin_trace::TraceKind::RunStart { .. }))
            .count();
        assert_eq!(run_starts, 1, "exactly one simulation paid for");
    }

    #[test]
    fn run_all_results_identical_across_thread_counts() {
        let mut params = ExpParams::quick();
        params.instructions_per_thread = 2_000;
        params.warmup_per_thread = 500;
        let batch: Vec<RunOptions> = [Benchmark::Fft, Benchmark::Radix, Benchmark::Lu]
            .iter()
            .map(|&b| {
                let mut o = params.options(ArchConfig::ShStt, b);
                o.clusters = 1;
                o.cores_per_cluster = 4;
                o
            })
            .collect();
        let seq = RunCache::new().run_all_on(&Pool::with_threads(1), &batch);
        let par = RunCache::new().run_all_on(&Pool::with_threads(4), &batch);
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(**s, **p, "thread count must not change any result");
        }
    }

    /// Options whose chip construction panics deterministically
    /// (`epoch_instructions = 0` fails validation with `CFG-EPOCH`) —
    /// the workspace's standard hook for exercising panic paths.
    fn poisoned_options() -> RunOptions {
        let mut params = ExpParams::quick();
        params.instructions_per_thread = 2_000;
        params.warmup_per_thread = 500;
        let mut o = params.options(ArchConfig::ShStt, Benchmark::Fft);
        o.clusters = 1;
        o.cores_per_cluster = 4;
        o.epoch_instructions = Some(0);
        o
    }

    #[test]
    fn panicked_run_leaves_key_retryable() {
        use std::panic::{catch_unwind, AssertUnwindSafe};

        let cache = RunCache::new();
        let mut o = poisoned_options();
        // First attempt panics (invalid options)...
        let err = catch_unwind(AssertUnwindSafe(|| cache.run(&o)));
        assert!(err.is_err(), "zero epoch must panic in build_chip");
        assert_eq!(cache.len(), 0, "a panicked run must not count as done");
        // ...the same key panics again, not wedge (the old OnceLock cell
        // would have aborted the second get_or_init or blocked forever)...
        let err = catch_unwind(AssertUnwindSafe(|| cache.run(&o)));
        assert!(err.is_err(), "retry of a poisoned key must re-execute");
        // ...and once the options are repaired, the SAME cache key space
        // works: the fixed options (a different key) simulate fine.
        o.epoch_instructions = Some(10_000);
        let result = cache.run(&o);
        assert!(result.instructions > 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn panicked_run_wakes_concurrent_waiters_to_retry() {
        use std::panic::{catch_unwind, AssertUnwindSafe};

        // Several threads race one poisoned key: every one of them must
        // observe the panic (either as winner or woken retrier) instead
        // of blocking forever on an in-flight cell that will never fill.
        let cache = RunCache::new();
        let o = poisoned_options();
        let outcomes: Vec<bool> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cache = cache.clone();
                    let o = o.clone();
                    s.spawn(move || catch_unwind(AssertUnwindSafe(|| cache.run(&o))).is_err())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("racer thread must terminate"))
                .collect()
        });
        assert!(
            outcomes.iter().all(|&panicked| panicked),
            "every racer must see the panic, none may hang or get a result"
        );
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn run_all_recovering_isolates_the_failed_key() {
        let dir = std::env::temp_dir().join("respin-recovering-test");
        let _ = std::fs::remove_dir_all(&dir);
        let journal = Arc::new(crate::persist::ResultJournal::open(&dir).expect("journal opens"));
        let cache = RunCache::new().with_journal(journal);

        let mut params = ExpParams::quick();
        params.instructions_per_thread = 2_000;
        params.warmup_per_thread = 500;
        let good = |b: Benchmark| {
            let mut o = params.options(ArchConfig::ShStt, b);
            o.clusters = 1;
            o.cores_per_cluster = 4;
            o
        };
        let batch = vec![
            good(Benchmark::Fft),
            poisoned_options(),
            good(Benchmark::Lu),
        ];

        let (results, report) = cache.run_all_recovering(&Pool::with_threads(2), &batch);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_some(), "healthy run 0 must land");
        assert!(
            results[1].is_none(),
            "poisoned run yields None, not a panic"
        );
        assert!(results[2].is_some(), "healthy run 2 must land");
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].code, "RUN-PANIC");

        // The journal holds the two completed results plus the
        // failed-retryable record; a fresh cache warmed from it skips
        // the good keys and retries (only) the failed one.
        let replay = crate::persist::replay(&dir).expect("replay");
        assert_eq!(replay.completed(), 2);
        assert_eq!(replay.failed(), 1);
        let warmed = RunCache::new();
        assert_eq!(warmed.warm(&replay.records), 2);
        assert_eq!(warmed.len(), 2);
        let again = warmed.run(&batch[0]);
        assert_eq!(
            *again,
            **results[0].as_ref().unwrap(),
            "warmed result must be byte-exact vs the live one"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// In-memory [`ResultBacking`] with call counters, for seam tests.
    #[derive(Default)]
    struct MapBacking {
        map: Mutex<BTreeMap<String, RunResult>>,
        loads: Mutex<usize>,
        saves: Mutex<usize>,
    }

    impl ResultBacking for MapBacking {
        fn load(&self, key: &str) -> Option<RunResult> {
            *self.loads.lock() += 1;
            self.map.lock().get(key).cloned()
        }
        fn save(&self, key: &str, result: &RunResult) {
            *self.saves.lock() += 1;
            self.map.lock().insert(key.to_string(), result.clone());
        }
    }

    #[test]
    fn backing_receives_live_results_and_serves_them_warm() {
        use respin_trace::RingSink;

        let backing = Arc::new(MapBacking::default());
        let mut params = ExpParams::quick();
        params.instructions_per_thread = 2_000;
        params.warmup_per_thread = 500;
        let mut o = params.options(ArchConfig::ShStt, Benchmark::Fft);
        o.clusters = 1;
        o.cores_per_cluster = 4;

        // Cold cache: the run executes live and is saved into the backing.
        let ring = Arc::new(RingSink::unbounded());
        let cold = RunCache::with_tracer(ring.clone(), None).with_backing(backing.clone());
        let live = cold.run(&o);
        assert_eq!(*backing.saves.lock(), 1, "live result must be saved");
        assert_eq!(backing.map.lock().len(), 1);

        // Fresh cache, same backing: the key lands warm — no simulation
        // (no new RunStart), bit-identical result, nothing re-saved.
        let run_starts = |r: &RingSink| {
            r.snapshot()
                .iter()
                .filter(|e| matches!(e.kind, respin_trace::TraceKind::RunStart { .. }))
                .count()
        };
        assert_eq!(run_starts(&ring), 1);
        let warm_cache = RunCache::with_tracer(ring.clone(), None).with_backing(backing.clone());
        let warm = warm_cache.run(&o);
        assert_eq!(*warm, *live, "warm result must be bit-identical");
        assert_eq!(run_starts(&ring), 1, "warm hit must not simulate");
        assert_eq!(*backing.saves.lock(), 1, "warm hit must not re-save");
        assert_eq!(warm_cache.len(), 1, "warm key completes the cell");
        // A memo hit afterwards does not consult the backing again.
        let loads_before = *backing.loads.lock();
        let _ = warm_cache.run(&o);
        assert_eq!(*backing.loads.lock(), loads_before);
    }

    #[test]
    fn panicked_run_never_reaches_the_backing() {
        let backing = Arc::new(MapBacking::default());
        let cache = RunCache::new().with_backing(backing.clone());
        let o = poisoned_options();
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| cache.run(&o)));
        assert!(err.is_err());
        assert_eq!(
            *backing.saves.lock(),
            0,
            "a failed job must not poison the store"
        );
        assert!(backing.map.lock().is_empty());
    }

    #[test]
    fn stable_run_ids_depend_only_on_the_key() {
        assert_eq!(stable_run_id("abc"), stable_run_id("abc"));
        assert_ne!(stable_run_id("abc"), stable_run_id("abd"));
        assert_ne!(stable_run_id(""), stable_run_id("a"));
    }

    #[test]
    fn quick_params_are_smaller() {
        assert!(
            ExpParams::quick().instructions_per_thread < ExpParams::full().instructions_per_thread
        );
    }
}
