//! Figure 9: per-benchmark CMP energy of every non-baseline configuration,
//! normalised to PR-SRAM-NT (medium caches).
//!
//! Paper averages: SH-STT −23%, SH-SRAM-Nom +12%, HP-SRAM-CMP +40%,
//! SH-STT-CC −33%, SH-STT-CC-Oracle −36%, PR-STT-CC −24%, and
//! SH-STT-CC-OS +27% *relative to SH-STT*.

use super::common::{geomean, ExpParams, RunCache};
use crate::arch::ArchConfig;
use crate::report::TextTable;
use respin_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// The configurations plotted in Figure 9, in the paper's order.
pub const FIG9_CONFIGS: [ArchConfig; 7] = [
    ArchConfig::ShSramNom,
    ArchConfig::HpSramCmp,
    ArchConfig::ShStt,
    ArchConfig::ShSttCc,
    ArchConfig::ShSttCcOracle,
    ArchConfig::PrSttCc,
    ArchConfig::ShSttCcOs,
];

/// Normalised energies of one benchmark (order of [`FIG9_CONFIGS`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Row {
    /// Benchmark name ("geomean" for the summary).
    pub benchmark: String,
    /// Energy / baseline energy, per configuration.
    pub energy: Vec<f64>,
}

/// Figure 9 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9 {
    /// Configuration labels (column order).
    pub configs: Vec<String>,
    /// Rows.
    pub rows: Vec<Fig9Row>,
    /// Paper's mean values, same column order.
    pub paper_means: Vec<f64>,
}

/// Regenerates Figure 9. This is the heavy experiment (the oracle replays
/// every epoch 2·radius+1 times).
pub fn generate(cache: &RunCache, params: &ExpParams) -> Fig9 {
    let mut all_archs = vec![ArchConfig::PrSramNt];
    all_archs.extend(FIG9_CONFIGS);
    let batch: Vec<_> = all_archs
        .iter()
        .flat_map(|&a| Benchmark::ALL.iter().map(move |&b| params.options(a, b)))
        .collect();
    let results = cache.run_all(&batch);
    let energy = |a: ArchConfig, b: Benchmark| -> f64 {
        let ai = all_archs.iter().position(|&x| x == a).expect("arch");
        let bi = Benchmark::ALL.iter().position(|&x| x == b).expect("bench");
        results[ai * Benchmark::ALL.len() + bi]
            .energy
            .chip_total_pj()
    };

    let mut rows: Vec<Fig9Row> = Benchmark::ALL
        .iter()
        .map(|&b| {
            let base = energy(ArchConfig::PrSramNt, b);
            Fig9Row {
                benchmark: b.name().into(),
                energy: FIG9_CONFIGS.iter().map(|&a| energy(a, b) / base).collect(),
            }
        })
        .collect();
    let means: Vec<f64> = (0..FIG9_CONFIGS.len())
        .map(|i| geomean(rows.iter().map(|r| r.energy[i])))
        .collect();
    rows.push(Fig9Row {
        benchmark: "geomean".into(),
        energy: means,
    });

    Fig9 {
        configs: FIG9_CONFIGS.iter().map(|a| a.name().to_string()).collect(),
        rows,
        // SH-SRAM-Nom +12%, HP +40%, SH-STT −23%, CC −33%, Oracle −36%,
        // PR-STT-CC −24%, CC-OS = SH-STT × 1.27.
        paper_means: vec![1.12, 1.40, 0.77, 0.67, 0.64, 0.76, 0.77 * 1.27],
    }
}

impl Fig9 {
    /// Text rendering.
    pub fn render_text(&self) -> String {
        let mut header = vec!["benchmark".to_string()];
        header.extend(self.configs.clone());
        let mut t = TextTable::new(header);
        for r in &self.rows {
            let mut cells = vec![r.benchmark.clone()];
            cells.extend(r.energy.iter().map(|e| format!("{e:.3}")));
            t.row(cells);
        }
        let mut cells = vec!["paper mean".to_string()];
        cells.extend(self.paper_means.iter().map(|e| format!("{e:.3}")));
        t.row(cells);
        format!(
            "Figure 9: CMP energy normalised to PR-SRAM-NT (medium caches)\n{}",
            t.render()
        )
    }
}
