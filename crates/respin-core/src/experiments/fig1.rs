//! Figure 1: leakage/dynamic power breakdown of a 64-core CMP at nominal
//! voltage and at near-threshold voltage.
//!
//! The paper reports: at 1.0 V, caches contribute ~14% leakage and ~14%
//! dynamic power, with dynamic power ~60% of the total; at NT (cores
//! 0.4 V, SRAM caches 0.65 V) leakage dominates at ~75%, close to half of
//! it from caches.

use super::common::{mean, ExpParams, RunCache};
use crate::arch::ArchConfig;
use crate::report::{frac, TextTable};
use respin_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// One operating point's power split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Row {
    /// "nominal" or "near-threshold".
    pub point: String,
    /// Configuration that realises the point.
    pub config: String,
    /// Fraction of CMP power in core dynamic.
    pub core_dynamic: f64,
    /// Core leakage fraction.
    pub core_leakage: f64,
    /// Cache dynamic fraction.
    pub cache_dynamic: f64,
    /// Cache leakage fraction.
    pub cache_leakage: f64,
    /// Interconnect/level-shifter fraction.
    pub other: f64,
    /// Total leakage fraction (paper: ~40% nominal, ~75% NT).
    pub leakage_total: f64,
}

/// Figure 1 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1 {
    /// The two operating points.
    pub rows: Vec<Fig1Row>,
    /// Paper's headline values for comparison.
    pub paper_note: String,
}

/// Regenerates Figure 1 (suite mean at each operating point).
pub fn generate(cache: &RunCache, params: &ExpParams) -> Fig1 {
    let points = [
        ("nominal", ArchConfig::HpSramCmp),
        ("near-threshold", ArchConfig::PrSramNt),
    ];
    let mut rows = Vec::new();
    for (label, arch) in points {
        let batch: Vec<_> = Benchmark::ALL
            .iter()
            .map(|&b| params.options(arch, b))
            .collect();
        let results = cache.run_all(&batch);
        let split = |f: &dyn Fn(&respin_sim::EnergyBreakdown) -> f64| {
            mean(
                results
                    .iter()
                    .map(|r| f(&r.energy) / r.energy.chip_total_pj()),
            )
        };
        rows.push(Fig1Row {
            point: label.into(),
            config: arch.name().into(),
            core_dynamic: split(&|e| e.core_dynamic_pj),
            core_leakage: split(&|e| e.core_leakage_pj),
            cache_dynamic: split(&|e| e.cache_dynamic_pj),
            cache_leakage: split(&|e| e.cache_leakage_pj),
            other: split(&|e| e.interconnect_pj),
            leakage_total: split(&|e| e.leakage_pj()),
        });
    }
    Fig1 {
        rows,
        paper_note: "paper: nominal ≈ 60% dynamic (caches 14% leak + 14% dyn); \
                     NT ≈ 75% leakage, caches ≈ half of it"
            .into(),
    }
}

impl Fig1 {
    /// Text rendering.
    pub fn render_text(&self) -> String {
        let mut t = TextTable::new(vec![
            "operating point",
            "config",
            "core dyn",
            "core leak",
            "cache dyn",
            "cache leak",
            "other",
            "leakage total",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.point.clone(),
                r.config.clone(),
                frac(r.core_dynamic),
                frac(r.core_leakage),
                frac(r.cache_dynamic),
                frac(r.cache_leakage),
                frac(r.other),
                frac(r.leakage_total),
            ]);
        }
        format!(
            "Figure 1: CMP power breakdown, nominal vs near-threshold\n{}\n({})\n",
            t.render(),
            self.paper_note
        )
    }
}
