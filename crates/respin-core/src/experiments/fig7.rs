//! Figure 7: per-benchmark execution time, normalised to PR-SRAM-NT
//! (medium caches).
//!
//! Paper: SH-STT reduces execution time by 11% on average (raytrace and
//! ocean benefit most); SH-SRAM-Nom is marginally slower than SH-STT
//! (~1.2%); HP-SRAM-CMP is fastest outright.

use super::common::{geomean, ExpParams, RunCache};
use crate::arch::ArchConfig;
use crate::report::TextTable;
use respin_workloads::Benchmark;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Normalised execution times of one benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Row {
    /// Benchmark name ("geomean" for the summary row).
    pub benchmark: String,
    /// SH-STT time / baseline time.
    pub sh_stt: f64,
    /// SH-SRAM-Nom time / baseline time.
    pub sh_sram_nom: f64,
    /// HP-SRAM-CMP time / baseline time.
    pub hp_sram_cmp: f64,
}

/// Figure 7 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7 {
    /// Per-benchmark rows plus the geomean.
    pub rows: Vec<Fig7Row>,
    /// Paper's SH-STT average (0.89×).
    pub paper_sh_stt_mean: f64,
}

/// Regenerates Figure 7.
pub fn generate(cache: &RunCache, params: &ExpParams) -> Fig7 {
    let archs = [
        ArchConfig::PrSramNt,
        ArchConfig::ShStt,
        ArchConfig::ShSramNom,
        ArchConfig::HpSramCmp,
    ];
    let batch: Vec<_> = archs
        .iter()
        .flat_map(|&a| Benchmark::ALL.iter().map(move |&b| params.options(a, b)))
        .collect();
    let results = cache.run_all(&batch);
    let get = |a: ArchConfig, b: Benchmark| -> Arc<respin_sim::RunResult> {
        let ai = archs.iter().position(|&x| x == a).expect("arch in sweep");
        let bi = Benchmark::ALL.iter().position(|&x| x == b).expect("bench");
        results[ai * Benchmark::ALL.len() + bi].clone()
    };

    let mut rows: Vec<Fig7Row> = Benchmark::ALL
        .iter()
        .map(|&b| {
            let base = get(ArchConfig::PrSramNt, b).ticks as f64;
            Fig7Row {
                benchmark: b.name().into(),
                sh_stt: get(ArchConfig::ShStt, b).ticks as f64 / base,
                sh_sram_nom: get(ArchConfig::ShSramNom, b).ticks as f64 / base,
                hp_sram_cmp: get(ArchConfig::HpSramCmp, b).ticks as f64 / base,
            }
        })
        .collect();
    rows.push(Fig7Row {
        benchmark: "geomean".into(),
        sh_stt: geomean(rows.iter().map(|r| r.sh_stt)),
        sh_sram_nom: geomean(rows.iter().map(|r| r.sh_sram_nom)),
        hp_sram_cmp: geomean(rows.iter().map(|r| r.hp_sram_cmp)),
    });
    Fig7 {
        rows,
        paper_sh_stt_mean: 0.89,
    }
}

impl Fig7 {
    /// Text rendering.
    pub fn render_text(&self) -> String {
        let mut t = TextTable::new(vec!["benchmark", "SH-STT", "SH-SRAM-Nom", "HP-SRAM-CMP"]);
        for r in &self.rows {
            t.row(vec![
                r.benchmark.clone(),
                format!("{:.3}", r.sh_stt),
                format!("{:.3}", r.sh_sram_nom),
                format!("{:.3}", r.hp_sram_cmp),
            ]);
        }
        format!(
            "Figure 7: execution time normalised to PR-SRAM-NT (medium caches)\n{}\n\
             (paper: SH-STT mean {:.2}; HP fastest; SH-SRAM-Nom ≈ SH-STT + ~1%)\n",
            t.render(),
            self.paper_sh_stt_mean
        )
    }
}
