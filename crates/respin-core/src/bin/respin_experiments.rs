//! CLI regenerating every table and figure of the Respin paper.
//!
//! ```text
//! respin-experiments <experiment|all> [--quick] [--out DIR] [--threads N]
//!                    [--trace-out PATH] [--trace-epochs N]
//!                    [--checkpoint-dir DIR] [--resume]
//!
//! experiments: table1 table2 table3 table4 fig1 fig6 fig7 fig8 fig9
//!              fig10 fig11 fig12 fig13 fig14 cluster ablation voltage
//!              resilience
//! ```
//!
//! Sweeps run on the `respin-pool` run pool. `--threads N` pins the
//! worker count (outranking `RESPIN_THREADS`; the default is the host
//! parallelism). Results, tables, and written artifacts are
//! **bit-identical at every thread count** — the resolved worker count
//! is echoed on the greppable stdout status lines (`smoke:`/`trace:`)
//! only, never into `--out` files.
//!
//! Each experiment prints its text table and, when `--out` is given (or
//! for `all`, defaulting to `results/`), writes `<name>.txt` and
//! `<name>.json`.
//!
//! `--trace-out PATH` additionally records an epoch-level trace of every
//! simulation: `PATH.jsonl` (one structured event per line) and
//! `PATH.chrome.json` (Chrome-trace / Perfetto counter + instant
//! events). `--trace-epochs N` caps the per-run epoch time-series at the
//! first `N` epochs; discrete events (consolidations, migrations,
//! decommissions) are always kept. Tracing is observation-only: results
//! are bit-identical with and without it.
//!
//! `--checkpoint-dir DIR` makes the campaign crash-safe: every completed
//! run is appended to `DIR/journal.jsonl` (durable, checksummed, one
//! record per line). `--resume` replays that journal first — torn or
//! corrupt tails are reported and truncated, `ok` records warm the run
//! cache so only missing runs execute — and the final report is
//! byte-identical to a never-interrupted campaign. A panicking
//! experiment no longer aborts the campaign when a checkpoint dir is
//! set: its keys are journaled as failed-retryable, the remaining
//! experiments run, and the process exits non-zero with a structured
//! partial-failure report.

use respin_core::experiments::{
    ablation, cluster_sweep, fig1, fig10, fig11, fig12_13, fig14, fig6, fig7, fig8, fig9,
    resilience, tables, voltage, ExpParams, RunCache,
};
use respin_core::persist::{self, atomic_write, ResultJournal};
use respin_core::report::to_json;
use respin_trace::{canonical_order, to_chrome_trace, to_jsonl, RingSink};
use respin_workloads::Benchmark;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const EXPERIMENTS: [&str; 18] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "fig1",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "cluster",
    "ablation",
    "voltage",
    "resilience",
];

struct Args {
    names: Vec<String>,
    quick: bool,
    out: Option<PathBuf>,
    threads: Option<usize>,
    trace_out: Option<PathBuf>,
    trace_epochs: Option<u64>,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
}

fn usage() -> String {
    format!(
        "usage: respin-experiments <{}|all> [--quick] [--out DIR] [--threads N] \
         [--trace-out PATH] [--trace-epochs N] [--checkpoint-dir DIR] [--resume]",
        EXPERIMENTS.join("|")
    )
}

fn parse_args() -> Args {
    let mut names = Vec::new();
    let mut quick = false;
    let mut out = None;
    let mut threads = None;
    let mut trace_out = None;
    let mut trace_epochs = None;
    let mut checkpoint_dir = None;
    let mut resume = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = Some(PathBuf::from(
                    args.next().expect("--out requires a directory"),
                ));
            }
            "--threads" => {
                let n = args.next().expect("--threads requires a count");
                let n: usize = n.parse().expect("--threads takes a positive integer");
                assert!(n > 0, "--threads takes a positive integer");
                threads = Some(n);
            }
            "--trace-out" => {
                trace_out = Some(PathBuf::from(
                    args.next().expect("--trace-out requires a file path"),
                ));
            }
            "--trace-epochs" => {
                let n = args.next().expect("--trace-epochs requires a count");
                trace_epochs = Some(n.parse().expect("--trace-epochs takes an integer"));
            }
            "--checkpoint-dir" => {
                checkpoint_dir = Some(PathBuf::from(
                    args.next().expect("--checkpoint-dir requires a directory"),
                ));
            }
            "--resume" => resume = true,
            "all" => names = EXPERIMENTS.iter().map(|s| s.to_string()).collect(),
            name if EXPERIMENTS.contains(&name) => names.push(name.to_string()),
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("{}", usage());
                std::process::exit(2);
            }
        }
    }
    if names.is_empty() {
        eprintln!("{}", usage());
        std::process::exit(2);
    }
    if resume && checkpoint_dir.is_none() {
        eprintln!("--resume requires --checkpoint-dir");
        eprintln!("{}", usage());
        std::process::exit(2);
    }
    Args {
        names,
        quick,
        out,
        threads,
        trace_out,
        trace_epochs,
        checkpoint_dir,
        resume,
    }
}

/// Appends ` threads=N` to the greppable `smoke:` status lines for
/// stdout. Written artifacts keep the unannotated text: report files
/// are bit-identical at every thread count by contract, and a worker
/// count baked into them would break exactly the byte-diff gate that
/// enforces it.
fn annotate_status_lines(text: &str, threads: usize) -> String {
    text.split('\n')
        .map(|line| {
            if line.starts_with("smoke: ") {
                format!("{line} threads={threads}")
            } else {
                line.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Strips a trailing `.jsonl` so `--trace-out t.jsonl` and
/// `--trace-out t` both produce `t.jsonl` + `t.chrome.json`.
fn trace_base(path: &std::path::Path) -> PathBuf {
    match path.to_str() {
        Some(s) if s.ends_with(".jsonl") => PathBuf::from(&s[..s.len() - ".jsonl".len()]),
        _ => path.to_path_buf(),
    }
}

fn main() {
    let args = parse_args();
    if let Some(n) = args.threads {
        respin_pool::set_threads(n);
    }
    let threads = respin_pool::resolved_threads();
    let params = if args.quick {
        ExpParams::quick()
    } else {
        ExpParams::full()
    };
    let out_dir = args.out.clone().or_else(|| {
        if args.names.len() == EXPERIMENTS.len() {
            Some(PathBuf::from("results"))
        } else {
            None
        }
    });
    if let Some(dir) = &out_dir {
        fs::create_dir_all(dir).expect("create output directory");
    }
    let ring = args
        .trace_out
        .as_ref()
        .map(|_| Arc::new(RingSink::unbounded()));
    let mut cache = match &ring {
        Some(ring) => RunCache::with_tracer(ring.clone(), args.trace_epochs),
        None => RunCache::new(),
    };
    if let Some(dir) = &args.checkpoint_dir {
        if args.resume {
            // Replay BEFORE opening the append handle: a torn tail is
            // truncated away first, so new appends extend a clean prefix.
            let replay = persist::replay(dir).expect("replay result journal");
            // `JRN-TORN` is warning-severity (the campaign recovers), so
            // gate on any violation at all, not on `is_clean()`.
            if !replay.report.violations.is_empty() {
                eprintln!("{}", replay.report);
            }
            let warmed = cache.warm(&replay.records);
            println!(
                "resume: replayed={} warmed={} failed_retryable={} truncated={}",
                replay.records.len(),
                warmed,
                replay.failed(),
                replay.truncated
            );
        }
        let journal = ResultJournal::open(dir).expect("open result journal");
        cache = cache.with_journal(Arc::new(journal));
    }
    let cache = cache;

    let emit = |name: &str, text: String, json: String| {
        println!("{}", annotate_status_lines(&text, threads));
        if let Some(dir) = &out_dir {
            atomic_write(&dir.join(format!("{name}.txt")), text.as_bytes()).expect("write text");
            atomic_write(&dir.join(format!("{name}.json")), json.as_bytes()).expect("write json");
        }
    };

    let mut failed_experiments: Vec<(String, String)> = Vec::new();
    for name in &args.names {
        // CLI progress timing: the elapsed value is printed to *stderr*
        // only ("[… done in …]" below) and never reaches stdout tables or
        // --out artifacts, so the byte-diff gate still holds.
        // respin-lint: allow(D002, reason="stderr progress timing only; never written to results or artifacts")
        let t = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| match name.as_str() {
            "table1" => emit("table1", tables::table1_text(), "{}".into()),
            "table2" => emit("table2", tables::table2_text(), "{}".into()),
            "table3" => emit(
                "table3",
                tables::table3_text(),
                to_json(&respin_power::table3::generate()),
            ),
            "table4" => emit("table4", tables::table4_text(), "{}".into()),
            "fig1" => {
                let d = fig1::generate(&cache, &params);
                emit("fig1", d.render_text(), to_json(&d));
            }
            "fig6" => {
                let d = fig6::generate(&cache, &params);
                emit("fig6", d.render_text(), to_json(&d));
            }
            "fig7" => {
                let d = fig7::generate(&cache, &params);
                emit("fig7", d.render_text(), to_json(&d));
            }
            "fig8" => {
                let d = fig8::generate(&cache, &params);
                emit("fig8", d.render_text(), to_json(&d));
            }
            "fig9" => {
                let d = fig9::generate(&cache, &params);
                emit("fig9", d.render_text(), to_json(&d));
            }
            "fig10" => {
                let d = fig10::generate(&cache, &params);
                emit("fig10", d.render_text(), to_json(&d));
            }
            "fig11" => {
                let d = fig11::generate(&cache, &params);
                emit("fig11", d.render_text(), to_json(&d));
            }
            "fig12" => {
                let d = fig12_13::generate(&cache, &params, "Figure 12", Benchmark::Radix);
                emit("fig12", d.render_text(), to_json(&d));
            }
            "fig13" => {
                let d = fig12_13::generate(&cache, &params, "Figure 13", Benchmark::Lu);
                emit("fig13", d.render_text(), to_json(&d));
            }
            "fig14" => {
                let d = fig14::generate(&cache, &params);
                emit("fig14", d.render_text(), to_json(&d));
            }
            "cluster" => {
                let d = cluster_sweep::generate(&cache, &params);
                emit("cluster", d.render_text(), to_json(&d));
            }
            "ablation" => {
                let d = ablation::generate(&cache, &params);
                emit("ablation", d.render_text(), to_json(&d));
            }
            "voltage" => {
                let d = voltage::generate(&cache, &params);
                emit("voltage", d.render_text(), to_json(&d));
            }
            "resilience" => {
                let sink = ring.clone().map(|r| r as Arc<dyn respin_trace::TraceSink>);
                let d = resilience::generate_traced(&params, sink, args.trace_epochs);
                emit("resilience", d.render_text(), to_json(&d));
            }
            _ => unreachable!("validated in parse_args"),
        }));
        match outcome {
            Ok(()) => eprintln!(
                "[{name} done in {:.1?}; {} cached runs]",
                t.elapsed(),
                cache.len()
            ),
            Err(payload) => {
                // Fault isolation: completed sibling runs are already in
                // cache and journal; record the failure and keep going so
                // one bad experiment cannot take down the campaign.
                let why = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "panicked (non-string payload)".to_string());
                eprintln!("[{name} FAILED in {:.1?}: {why}]", t.elapsed());
                failed_experiments.push((name.clone(), why));
            }
        }
    }

    if let (Some(path), Some(ring)) = (&args.trace_out, &ring) {
        // Canonical order (stable grouping by schedule-independent run
        // id): parallel and sequential campaigns export byte-identical
        // files.
        let mut events = ring.snapshot();
        canonical_order(&mut events);
        let base = trace_base(path);
        let jsonl_path = base.with_extension("jsonl");
        let chrome_path = base.with_extension("chrome.json");
        if let Some(dir) = jsonl_path.parent().filter(|d| !d.as_os_str().is_empty()) {
            fs::create_dir_all(dir).expect("create trace directory");
        }
        atomic_write(&jsonl_path, to_jsonl(&events).as_bytes()).expect("write jsonl trace");
        atomic_write(&chrome_path, to_chrome_trace(&events).as_bytes())
            .expect("write chrome trace");
        println!(
            "trace: {} events ({} dropped) threads={} -> {} + {}",
            events.len(),
            ring.dropped(),
            threads,
            jsonl_path.display(),
            chrome_path.display()
        );
    }

    if !failed_experiments.is_empty() {
        // Structured partial-failure report: everything that did complete
        // is journaled/written above; the exit code tells automation the
        // campaign needs a --resume retry.
        eprintln!(
            "campaign: partial failure — {}/{} experiments failed",
            failed_experiments.len(),
            args.names.len()
        );
        for (name, why) in &failed_experiments {
            eprintln!("campaign:   {name}: {why}");
        }
        std::process::exit(1);
    }
}
