//! CLI regenerating every table and figure of the Respin paper.
//!
//! ```text
//! respin-experiments <experiment|all> [--quick] [--out DIR]
//!
//! experiments: table1 table2 table3 table4 fig1 fig6 fig7 fig8 fig9
//!              fig10 fig11 fig12 fig13 fig14 cluster ablation voltage
//!              resilience
//! ```
//!
//! Each experiment prints its text table and, when `--out` is given (or
//! for `all`, defaulting to `results/`), writes `<name>.txt` and
//! `<name>.json`.

use respin_core::experiments::{
    ablation, cluster_sweep, fig1, fig10, fig11, fig12_13, fig14, fig6, fig7, fig8, fig9,
    resilience, tables, voltage, ExpParams, RunCache,
};
use respin_core::report::to_json;
use respin_workloads::Benchmark;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

const EXPERIMENTS: [&str; 18] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "fig1",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "cluster",
    "ablation",
    "voltage",
    "resilience",
];

struct Args {
    names: Vec<String>,
    quick: bool,
    out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut names = Vec::new();
    let mut quick = false;
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = Some(PathBuf::from(
                    args.next().expect("--out requires a directory"),
                ));
            }
            "all" => names = EXPERIMENTS.iter().map(|s| s.to_string()).collect(),
            name if EXPERIMENTS.contains(&name) => names.push(name.to_string()),
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!(
                    "usage: respin-experiments <{}|all> [--quick] [--out DIR]",
                    EXPERIMENTS.join("|")
                );
                std::process::exit(2);
            }
        }
    }
    if names.is_empty() {
        eprintln!(
            "usage: respin-experiments <{}|all> [--quick] [--out DIR]",
            EXPERIMENTS.join("|")
        );
        std::process::exit(2);
    }
    Args { names, quick, out }
}

fn main() {
    let args = parse_args();
    let params = if args.quick {
        ExpParams::quick()
    } else {
        ExpParams::full()
    };
    let out_dir = args.out.clone().or_else(|| {
        if args.names.len() == EXPERIMENTS.len() {
            Some(PathBuf::from("results"))
        } else {
            None
        }
    });
    if let Some(dir) = &out_dir {
        fs::create_dir_all(dir).expect("create output directory");
    }
    let cache = RunCache::new();

    let emit = |name: &str, text: String, json: String| {
        println!("{text}");
        if let Some(dir) = &out_dir {
            fs::write(dir.join(format!("{name}.txt")), &text).expect("write text");
            fs::write(dir.join(format!("{name}.json")), &json).expect("write json");
        }
    };

    for name in &args.names {
        let t = Instant::now();
        match name.as_str() {
            "table1" => emit("table1", tables::table1_text(), "{}".into()),
            "table2" => emit("table2", tables::table2_text(), "{}".into()),
            "table3" => emit(
                "table3",
                tables::table3_text(),
                to_json(&respin_power::table3::generate()),
            ),
            "table4" => emit("table4", tables::table4_text(), "{}".into()),
            "fig1" => {
                let d = fig1::generate(&cache, &params);
                emit("fig1", d.render_text(), to_json(&d));
            }
            "fig6" => {
                let d = fig6::generate(&cache, &params);
                emit("fig6", d.render_text(), to_json(&d));
            }
            "fig7" => {
                let d = fig7::generate(&cache, &params);
                emit("fig7", d.render_text(), to_json(&d));
            }
            "fig8" => {
                let d = fig8::generate(&cache, &params);
                emit("fig8", d.render_text(), to_json(&d));
            }
            "fig9" => {
                let d = fig9::generate(&cache, &params);
                emit("fig9", d.render_text(), to_json(&d));
            }
            "fig10" => {
                let d = fig10::generate(&cache, &params);
                emit("fig10", d.render_text(), to_json(&d));
            }
            "fig11" => {
                let d = fig11::generate(&cache, &params);
                emit("fig11", d.render_text(), to_json(&d));
            }
            "fig12" => {
                let d = fig12_13::generate(&cache, &params, "Figure 12", Benchmark::Radix);
                emit("fig12", d.render_text(), to_json(&d));
            }
            "fig13" => {
                let d = fig12_13::generate(&cache, &params, "Figure 13", Benchmark::Lu);
                emit("fig13", d.render_text(), to_json(&d));
            }
            "fig14" => {
                let d = fig14::generate(&cache, &params);
                emit("fig14", d.render_text(), to_json(&d));
            }
            "cluster" => {
                let d = cluster_sweep::generate(&cache, &params);
                emit("cluster", d.render_text(), to_json(&d));
            }
            "ablation" => {
                let d = ablation::generate(&cache, &params);
                emit("ablation", d.render_text(), to_json(&d));
            }
            "voltage" => {
                let d = voltage::generate(&cache, &params);
                emit("voltage", d.render_text(), to_json(&d));
            }
            "resilience" => {
                let d = resilience::generate(&params);
                emit("resilience", d.render_text(), to_json(&d));
            }
            _ => unreachable!("validated in parse_args"),
        }
        eprintln!(
            "[{name} done in {:.1?}; {} cached runs]",
            t.elapsed(),
            cache.len()
        );
    }
}
