//! Smoke tests for every experiment driver at micro scale: each figure
//! generates, its output is well-formed, and the headline *directions*
//! hold even on tiny runs.

#![allow(clippy::unwrap_used)]

use respin_core::experiments::{
    ablation, cluster_sweep, fig1, fig10, fig11, fig12_13, fig14, fig6, fig7, fig8, fig9,
    ExpParams, RunCache,
};
use respin_workloads::Benchmark;

fn micro() -> ExpParams {
    ExpParams {
        instructions_per_thread: 5_000,
        warmup_per_thread: 1_000,
        epoch_instructions: 2_000,
        seed: 42,
    }
}

#[test]
fn fig1_fractions_form_a_distribution_and_nt_is_leakier() {
    let cache = RunCache::new();
    let d = fig1::generate(&cache, &micro());
    assert_eq!(d.rows.len(), 2);
    for r in &d.rows {
        let total = r.core_dynamic + r.core_leakage + r.cache_dynamic + r.cache_leakage + r.other;
        assert!((total - 1.0).abs() < 1e-6, "{}: {total}", r.point);
    }
    let nominal = &d.rows[0];
    let nt = &d.rows[1];
    assert!(
        nt.leakage_total > nominal.leakage_total,
        "NT must be leakage-dominated: {} vs {}",
        nt.leakage_total,
        nominal.leakage_total
    );
    assert!(nt.leakage_total > 0.5);
    assert!(d.render_text().contains("near-threshold"));
}

#[test]
fn fig6_baseline_rows_are_zero_and_stt_saves_at_large() {
    let cache = RunCache::new();
    let d = fig6::generate(&cache, &micro());
    assert_eq!(d.rows.len(), 9);
    for r in d.rows.iter().filter(|r| r.config == "PR-SRAM-NT") {
        assert!(r.vs_baseline.abs() < 1e-9);
        assert!((r.leakage_mw + r.dynamic_mw - r.power_mw).abs() < 1e-6);
    }
    let stt_large = d
        .rows
        .iter()
        .find(|r| r.config == "SH-STT" && r.size == "large")
        .expect("row present");
    assert!(
        stt_large.vs_baseline < 0.0,
        "large caches must favour STT power: {}",
        stt_large.vs_baseline
    );
}

#[test]
fn fig7_shared_designs_are_faster_hp_fastest() {
    let cache = RunCache::new();
    let d = fig7::generate(&cache, &micro());
    let mean = d.rows.last().expect("geomean row");
    assert_eq!(mean.benchmark, "geomean");
    assert!(mean.sh_stt < 1.0, "SH-STT mean {}", mean.sh_stt);
    assert!(mean.hp_sram_cmp < mean.sh_stt, "HP fastest");
    assert!(
        (mean.sh_stt - mean.sh_sram_nom).abs() < 0.05,
        "near-identical organisations"
    );
}

#[test]
fn fig8_stt_advantage_grows_with_cache_size() {
    let cache = RunCache::new();
    let d = fig8::generate(&cache, &micro());
    let stt: Vec<f64> = d
        .rows
        .iter()
        .filter(|r| r.config == "SH-STT")
        .map(|r| r.vs_baseline)
        .collect();
    assert_eq!(stt.len(), 3); // small, medium, large
    assert!(stt[0] > stt[2], "monotone trend small→large: {stt:?}");
    // SRAM at nominal voltage must always be worse than STT at same size.
    for size in ["small", "medium", "large"] {
        let stt_v = d
            .rows
            .iter()
            .find(|r| r.config == "SH-STT" && r.size == size)
            .unwrap();
        let sram_v = d
            .rows
            .iter()
            .find(|r| r.config == "SH-SRAM-Nom" && r.size == size)
            .unwrap();
        assert!(sram_v.vs_baseline > stt_v.vs_baseline, "{size}");
    }
}

#[test]
fn fig9_has_all_configs_and_ordering() {
    let cache = RunCache::new();
    let d = fig9::generate(&cache, &micro());
    assert_eq!(d.configs.len(), 7);
    assert_eq!(d.rows.len(), 14); // 13 benchmarks + geomean
    let mean = &d.rows.last().unwrap().energy;
    let idx = |name: &str| d.configs.iter().position(|c| c == name).unwrap();
    // SH-STT saves energy vs baseline; HP costs more.
    assert!(mean[idx("SH-STT")] < 1.0);
    assert!(mean[idx("HP-SRAM-CMP")] > 1.0);
    // The OS variant must be worse than hardware consolidation.
    assert!(mean[idx("SH-STT-CC-OS")] > mean[idx("SH-STT-CC")]);
}

#[test]
fn fig10_distributions_sum_to_one() {
    let cache = RunCache::new();
    let d = fig10::generate(&cache, &micro());
    assert_eq!(d.rows.len(), 6); // 5 benchmarks + mean
    for r in &d.rows {
        let total: f64 = r.fractions.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "{}: {total}", r.benchmark);
    }
}

#[test]
fn fig11_one_cycle_dominates() {
    let cache = RunCache::new();
    let d = fig11::generate(&cache, &micro());
    let mean = d.rows.last().unwrap();
    assert_eq!(mean.benchmark, "mean");
    assert!(
        mean.cycles[0] > 0.7,
        "one-cycle fraction {}",
        mean.cycles[0]
    );
    let total: f64 = mean.cycles.iter().sum();
    assert!((total - 1.0).abs() < 1e-9);
}

#[test]
fn fig12_traces_are_monotone_in_time_and_within_range() {
    let cache = RunCache::new();
    let d = fig12_13::generate(&cache, &micro(), "Figure 12", Benchmark::Radix);
    assert_eq!(d.traces.len(), 2);
    for t in &d.traces {
        assert!(!t.series.is_empty());
        for w in t.series.windows(2) {
            assert!(w[1].0 >= w[0].0, "time must not run backwards");
        }
        for &(_, active) in &t.series {
            assert!((1.0..=16.0).contains(&active), "active {active}");
        }
    }
}

#[test]
fn fig14_ranges_are_consistent() {
    let cache = RunCache::new();
    let d = fig14::generate(&cache, &micro());
    assert_eq!(d.rows.len(), 14);
    for r in &d.rows {
        // Every real run produces samples; min/max are None only for a
        // run with no per-cluster data at all.
        let (min, max) = (
            r.min.unwrap_or_else(|| panic!("{}: no min", r.benchmark)),
            r.max.unwrap_or_else(|| panic!("{}: no max", r.benchmark)),
        );
        assert!(min <= max, "{}", r.benchmark);
        assert!(
            r.avg >= min as f64 - 1e-9 && r.avg <= max as f64 + 1e-9,
            "{}: avg {} outside [{min}, {max}]",
            r.benchmark,
            r.avg,
        );
        assert!(max <= 16);
    }
}

#[test]
fn cluster_sweep_covers_the_paper_points() {
    let cache = RunCache::new();
    let d = cluster_sweep::generate(&cache, &micro());
    let sizes: Vec<usize> = d.rows.iter().map(|r| r.cores_per_cluster).collect();
    assert_eq!(sizes, vec![4, 8, 16, 32]);
    for r in &d.rows {
        assert_eq!(r.shared_l1_kib, 16 * r.cores_per_cluster as u64);
        assert!(r.time_ratio > 0.0 && r.time_ratio.is_finite());
    }
    // Contention must grow with cluster size.
    assert!(d.rows[3].half_miss > d.rows[0].half_miss);
}

#[test]
fn ablation_produces_all_three_sweeps() {
    let cache = RunCache::new();
    let d = ablation::generate(&cache, &micro());
    assert_eq!(d.epochs.len(), 4);
    assert_eq!(d.delivery.len(), 5);
    assert_eq!(d.thresholds.len(), 3);
    // Longer delivery must not reduce runtime.
    let t0 = d.delivery.first().unwrap().time_vs_default;
    let t4 = d.delivery.last().unwrap().time_vs_default;
    assert!(t4 >= t0 - 0.02, "delivery 0: {t0}, delivery 4: {t4}");
    assert!(d.render_text().contains("Consolidation interval"));
}
