//! # respin-pool — the experiment run pool
//!
//! Every Respin evaluation artifact is a sweep of *independent,
//! deterministic* simulations, so the only parallelism the workspace
//! needs is "run these N closures on K OS threads, give me the results
//! back in input order". This crate provides exactly that, with no
//! dependencies beyond `std`:
//!
//! * [`Pool::par_map`] — order-preserving parallel map over a slice.
//!   Workers steal items one at a time from a shared atomic index (the
//!   degenerate — and for second-to-minutes simulation tasks, optimal —
//!   work-stealing deque), so an expensive item never serialises the
//!   batch behind it.
//! * [`Pool::par_for_each`] — the same, discarding results.
//! * Panic propagation: a panicking task aborts the remaining queue,
//!   every worker is joined, and the **original payload** is re-thrown
//!   on the calling thread (`resume_unwind`), so `should_panic` tests
//!   and error reports see the real message — never a deadlock, never a
//!   swallowed panic.
//!
//! ## Thread-count resolution
//!
//! [`Pool::current`] (and the free [`par_map`]/[`par_for_each`]) resolve
//! the worker count as: programmatic override ([`set_threads`], used by
//! the `--threads` CLI flags) → the `RESPIN_THREADS` environment
//! variable → [`std::thread::available_parallelism`]. A count of 1 runs
//! the *same claim loop* inline on the caller — the sequential fallback
//! is the parallel code path minus the spawns, not a second
//! implementation.
//!
//! ## Determinism contract
//!
//! The pool schedules; it never reorders results. For pure `f`,
//! `pool.par_map(items, f)` is element-for-element identical to
//! `items.iter().map(f).collect()` at every thread count — the
//! experiment layer's "bit-identical results regardless of
//! `RESPIN_THREADS`" guarantee (DESIGN.md §13) builds directly on this.
//!
//! ```
//! let pool = respin_pool::Pool::with_threads(4);
//! let squares = pool.par_map(&[1u64, 2, 3, 4, 5], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Tests may unwrap: a panic IS the failure report there.
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(clippy::all)]

use std::panic::resume_unwind;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread;

/// Programmatic worker-count override (0 = unset). Highest-priority
/// resolution source; written by the CLI `--threads` flags.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets (n ≥ 1) or clears (0) the process-wide worker-count override.
///
/// The override outranks `RESPIN_THREADS` and the hardware default for
/// every subsequent [`Pool::current`] / [`par_map`] / [`par_for_each`]
/// call. Explicitly-sized pools ([`Pool::with_threads`]) are unaffected.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::SeqCst);
}

/// Parses a `RESPIN_THREADS` value: a positive integer, or `None` for
/// anything unusable (empty, zero, garbage) so resolution falls through
/// to the hardware default instead of panicking inside library code.
fn parse_threads(s: &str) -> Option<usize> {
    match s.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

/// The worker count [`Pool::current`] would use right now:
/// [`set_threads`] override, else `RESPIN_THREADS`, else
/// [`std::thread::available_parallelism`] (1 if even that is unknown).
pub fn resolved_threads() -> usize {
    let over = OVERRIDE.load(Ordering::SeqCst);
    if over > 0 {
        return over;
    }
    if let Ok(v) = std::env::var("RESPIN_THREADS") {
        if let Some(n) = parse_threads(&v) {
            return n;
        }
    }
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// A fixed-width run pool.
///
/// Stateless and trivially cheap: workers are scoped `std::thread`s
/// spawned per batch (setup cost is nanoseconds against simulation tasks
/// of seconds), so a `Pool` is just a worker count and never holds
/// threads, locks, or queues between calls.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with exactly `n` workers (minimum 1).
    pub fn with_threads(n: usize) -> Self {
        Self { threads: n.max(1) }
    }

    /// A pool sized by [`resolved_threads`] (override → env → hardware).
    pub fn current() -> Self {
        Self::with_threads(resolved_threads())
    }

    /// The worker count this pool dispatches to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` on up to [`Pool::threads`] workers,
    /// returning results **in input order**.
    ///
    /// Work distribution is dynamic (shared atomic claim index): a slow
    /// item occupies one worker while the rest drain the queue. With one
    /// worker — or one item — the claim loop runs inline on the calling
    /// thread; no thread is spawned.
    ///
    /// # Panics
    ///
    /// Re-raises the first task panic on the calling thread with its
    /// original payload, after aborting undispatched items and joining
    /// every worker (the scope never deadlocks on a panicked task).
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n);
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);

        let buckets: Vec<Vec<(usize, U)>> = if workers <= 1 {
            // Strictly sequential fallback: the same claim loop, inline.
            vec![worker_loop(&next, &abort, items, &f)]
        } else {
            let joined: Vec<thread::Result<Vec<(usize, U)>>> = thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| s.spawn(|| worker_loop(&next, &abort, items, &f)))
                    .collect();
                // Join everything before leaving the scope so a panic in
                // one task can never leave a worker detached.
                handles.into_iter().map(|h| h.join()).collect()
            });
            let mut buckets = Vec::with_capacity(workers);
            let mut panic_payload = None;
            for r in joined {
                match r {
                    Ok(bucket) => buckets.push(bucket),
                    Err(payload) => {
                        if panic_payload.is_none() {
                            panic_payload = Some(payload);
                        }
                    }
                }
            }
            if let Some(payload) = panic_payload {
                resume_unwind(payload);
            }
            buckets
        };

        let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
        for (i, v) in buckets.into_iter().flatten() {
            slots[i] = Some(v);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every claimed index produced a result"))
            .collect()
    }

    /// [`Pool::par_map`] discarding results: runs `f` on every item,
    /// with the same scheduling, panic, and ordering guarantees.
    pub fn par_for_each<T, F>(&self, items: &[T], f: F)
    where
        T: Sync,
        F: Fn(&T) + Sync,
    {
        self.par_map(items, |item| f(item));
    }

    /// Fault-isolating [`Pool::par_map`]: a panicking task becomes an
    /// `Err(message)` **for that item only** — every other item still
    /// runs and returns `Ok`, and the batch never aborts. Results come
    /// back in input order, so `out[i]` is always item `i`'s outcome at
    /// every thread count.
    ///
    /// This is the campaign-recovery primitive: `par_map` treats a panic
    /// as "the batch is doomed" and re-raises it, `try_par_map` treats it
    /// as "this run failed, record it and keep the rest". The payload is
    /// rendered to a `String` (`&str`/`String` payloads verbatim, others
    /// as a placeholder) because `Box<dyn Any>` is neither `Send`-shareable
    /// across the merge nor displayable in a partial-failure report.
    pub fn try_par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<Result<U, String>>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        self.par_map(items, |item| {
            // AssertUnwindSafe: the closure only borrows `item` and `f`
            // immutably, and a panicking task's partial effects are
            // confined to its own (discarded) call frame.
            catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| {
                payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "task panicked (non-string payload)".to_string())
            })
        })
    }
}

/// Sets the abort flag when dropped during unwinding, so one panicking
/// task stops the other workers from claiming further items.
struct AbortOnPanic<'a>(&'a AtomicBool);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if thread::panicking() {
            // Safety argument (canonical D003 waiver exemplar): the abort
            // flag only makes workers stop claiming *sooner*. Whether a
            // racing worker observes it one iteration late changes which
            // items execute before the panic unwinds — never any result:
            // the batch is already doomed, its outputs are discarded, and
            // the panic payload re-raised to the caller is the one the
            // panicking task produced regardless of this store's timing.
            // respin-lint: allow(D003, reason="abort flag is a shutdown hint; batch results are discarded on panic")
            self.0.store(true, Ordering::Relaxed);
        }
    }
}

/// One worker: claim the next unclaimed index, run `f`, keep
/// `(index, result)` locally; merge happens after the join so result
/// types only need `Send`, not `Sync`.
fn worker_loop<T, U, F>(
    next: &AtomicUsize,
    abort: &AtomicBool,
    items: &[T],
    f: &F,
) -> Vec<(usize, U)>
where
    F: Fn(&T) -> U,
{
    let _guard = AbortOnPanic(abort);
    let mut out = Vec::new();
    // Safety argument (canonical D003 waiver exemplars, see DESIGN.md
    // §14): neither relaxed value can reach results.
    //
    // * The abort load only decides whether to *stop early* on a batch
    //   whose results are about to be thrown away by `resume_unwind`; a
    //   stale `false` claims at most a few extra items, it never alters
    //   any item's output.
    // * The claim index is made race-free by `fetch_add`'s atomicity
    //   itself (each index is handed out exactly once — that is a
    //   property of read-modify-write atomicity, not of ordering), and
    //   the value only selects *which worker* computes item `i`. Results
    //   are merged by item index after the join (a synchronising
    //   operation), so claim order is invisible in `par_map`'s output:
    //   `out[i] == f(&items[i])` at every thread count.
    //
    // respin-lint: allow(D003, reason="abort is a stop-early hint on a discarded batch")
    while !abort.load(Ordering::Relaxed) {
        // respin-lint: allow(D003, reason="claim index picks a worker, never a value; merge is by item index after join")
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= items.len() {
            break;
        }
        out.push((i, f(&items[i])));
    }
    out
}

/// [`Pool::par_map`] on the [`Pool::current`] pool.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    Pool::current().par_map(items, f)
}

/// [`Pool::par_for_each`] on the [`Pool::current`] pool.
pub fn par_for_each<T, F>(items: &[T], f: F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    Pool::current().par_for_each(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn empty_input_yields_empty_output() {
        let pool = Pool::with_threads(4);
        let out: Vec<u32> = pool.par_map(&[] as &[u32], |&x| x + 1);
        assert!(out.is_empty());
    }

    #[test]
    fn input_shorter_than_worker_count() {
        let pool = Pool::with_threads(16);
        assert_eq!(pool.par_map(&[10u32, 20, 30], |&x| x / 10), vec![1, 2, 3]);
    }

    #[test]
    fn single_item_runs_inline() {
        let pool = Pool::with_threads(8);
        let caller = thread::current().id();
        let ran_on = pool.par_map(&[()], |()| thread::current().id());
        assert_eq!(ran_on, vec![caller], "one item must not spawn");
    }

    #[test]
    fn threads_1_matches_parallel_result() {
        let items: Vec<u64> = (0..257).collect();
        let f = |&x: &u64| x.wrapping_mul(0x9e37_79b9).rotate_left(13);
        let seq = Pool::with_threads(1).par_map(&items, f);
        let par = Pool::with_threads(7).par_map(&items, f);
        assert_eq!(seq, par);
        assert_eq!(seq, items.iter().map(f).collect::<Vec<_>>());
    }

    #[test]
    fn order_preserved_under_shuffled_durations() {
        // Items deliberately finish out of claim order: pseudo-random
        // sleeps make fast items overtake slow earlier ones.
        let items: Vec<usize> = (0..200).collect();
        let out = Pool::with_threads(8).par_map(&items, |&i| {
            let jitter = (i.wrapping_mul(2654435761) >> 16) % 4;
            thread::sleep(Duration::from_micros(50 * jitter as u64));
            i * 3
        });
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn panic_propagates_with_original_payload_and_no_deadlock() {
        let pool = Pool::with_threads(4);
        let items: Vec<u32> = (0..64).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(&items, |&x| {
                if x == 13 {
                    panic!("boom at {x}");
                }
                x
            })
        }))
        .expect_err("the task panic must reach the caller");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap();
        assert!(msg.contains("boom at 13"), "payload lost: {msg}");
        // The pool is stateless: the next batch must work normally.
        assert_eq!(pool.par_map(&[1u32, 2], |&x| x + 1), vec![2, 3]);
    }

    #[test]
    fn panic_aborts_remaining_queue() {
        // With the abort flag, far fewer than all items run after the
        // poisoned one; without it this would still pass (the pool only
        // promises termination), so assert the strong-but-safe bound:
        // every executed item is counted, and the call returns.
        let executed = AtomicU64::new(0);
        let items: Vec<u32> = (0..1000).collect();
        let res = catch_unwind(AssertUnwindSafe(|| {
            Pool::with_threads(4).par_for_each(&items, |&x| {
                executed.fetch_add(1, Ordering::Relaxed);
                if x == 0 {
                    thread::sleep(Duration::from_millis(1));
                    panic!("early poison");
                }
            })
        }));
        assert!(res.is_err());
        assert!(executed.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn try_par_map_isolates_panics_to_their_item() {
        let pool = Pool::with_threads(4);
        let items: Vec<u32> = (0..64).collect();
        let out = pool.try_par_map(&items, |&x| {
            if x % 10 == 3 {
                panic!("boom at {x}");
            }
            x * 2
        });
        assert_eq!(out.len(), 64);
        for (i, r) in out.iter().enumerate() {
            if i % 10 == 3 {
                let msg = r.as_ref().expect_err("multiples-of-10-plus-3 panic");
                assert!(msg.contains(&format!("boom at {i}")), "payload lost: {msg}");
            } else {
                assert_eq!(*r, Ok(i as u32 * 2), "item {i} must still succeed");
            }
        }
        // Identical shape at one thread.
        let seq = Pool::with_threads(1).try_par_map(&items, |&x| {
            if x % 10 == 3 {
                panic!("boom at {x}");
            }
            x * 2
        });
        assert_eq!(out, seq, "outcome vector must be thread-count invariant");
    }

    #[test]
    fn par_for_each_visits_every_item_once() {
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        let items: Vec<usize> = (0..100).collect();
        Pool::with_threads(5).par_for_each(&items, |&i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 2 "), Some(2));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads(""), None);
        assert_eq!(parse_threads("many"), None);
        assert_eq!(parse_threads("-1"), None);
    }

    #[test]
    fn programmatic_override_outranks_default() {
        // Serialised with itself only; other tests use explicit pools so
        // flipping the global here cannot perturb them.
        set_threads(3);
        assert_eq!(resolved_threads(), 3);
        assert_eq!(Pool::current().threads(), 3);
        set_threads(0);
        assert!(resolved_threads() >= 1);
    }

    #[test]
    fn with_threads_clamps_zero_to_one() {
        assert_eq!(Pool::with_threads(0).threads(), 1);
    }
}
