//! # respin-pool — the experiment run pool
//!
//! Every Respin evaluation artifact is a sweep of *independent,
//! deterministic* simulations, so the only parallelism the workspace
//! needs is "run these N closures on K OS threads, give me the results
//! back in input order". This crate provides exactly that, with no
//! dependencies beyond `std`:
//!
//! * [`Pool::par_map`] — order-preserving parallel map over a slice.
//!   Workers steal items one at a time from a shared atomic index (the
//!   degenerate — and for second-to-minutes simulation tasks, optimal —
//!   work-stealing deque), so an expensive item never serialises the
//!   batch behind it.
//! * [`Pool::par_for_each`] — the same, discarding results.
//! * Panic propagation: a panicking task aborts the remaining queue,
//!   every worker is joined, and the **original payload** is re-thrown
//!   on the calling thread (`resume_unwind`), so `should_panic` tests
//!   and error reports see the real message — never a deadlock, never a
//!   swallowed panic.
//!
//! ## Thread-count resolution
//!
//! [`Pool::current`] (and the free [`par_map`]/[`par_for_each`]) resolve
//! the worker count as: programmatic override ([`set_threads`], used by
//! the `--threads` CLI flags) → the `RESPIN_THREADS` environment
//! variable → [`std::thread::available_parallelism`]. A count of 1 runs
//! the *same claim loop* inline on the caller — the sequential fallback
//! is the parallel code path minus the spawns, not a second
//! implementation.
//!
//! ## Determinism contract
//!
//! The pool schedules; it never reorders results. For pure `f`,
//! `pool.par_map(items, f)` is element-for-element identical to
//! `items.iter().map(f).collect()` at every thread count — the
//! experiment layer's "bit-identical results regardless of
//! `RESPIN_THREADS`" guarantee (DESIGN.md §13) builds directly on this.
//!
//! ```
//! let pool = respin_pool::Pool::with_threads(4);
//! let squares = pool.par_map(&[1u64, 2, 3, 4, 5], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Tests may unwrap: a panic IS the failure report there.
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(clippy::all)]

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread;

/// Programmatic worker-count override (0 = unset). Highest-priority
/// resolution source; written by the CLI `--threads` flags.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker-count override, clamped to a minimum of
/// 1 exactly like [`Pool::with_threads`].
///
/// The override outranks `RESPIN_THREADS` and the hardware default for
/// every subsequent [`Pool::current`] / [`par_map`] / [`par_for_each`]
/// call. Explicitly-sized pools ([`Pool::with_threads`]) are unaffected.
///
/// `set_threads(0)` used to *clear* the override (0 doubles as the
/// internal "unset" sentinel), silently diverging from
/// `Pool::with_threads(0)` which clamps to 1. Clearing is now the
/// explicit [`clear_threads_override`]; 0 here means "1 worker".
pub fn set_threads(n: usize) {
    OVERRIDE.store(n.max(1), Ordering::SeqCst);
}

/// Clears the [`set_threads`] override so worker-count resolution falls
/// back to `RESPIN_THREADS`, then the hardware default.
pub fn clear_threads_override() {
    OVERRIDE.store(0, Ordering::SeqCst);
}

/// Parses a `RESPIN_THREADS` value: a positive integer, or `None` for
/// anything unusable (empty, zero, garbage) so resolution falls through
/// to the hardware default instead of panicking inside library code.
fn parse_threads(s: &str) -> Option<usize> {
    match s.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

/// The worker count [`Pool::current`] would use right now:
/// [`set_threads`] override, else `RESPIN_THREADS`, else
/// [`std::thread::available_parallelism`] (1 if even that is unknown).
pub fn resolved_threads() -> usize {
    let over = OVERRIDE.load(Ordering::SeqCst);
    if over > 0 {
        return over;
    }
    if let Ok(v) = std::env::var("RESPIN_THREADS") {
        if let Some(n) = parse_threads(&v) {
            return n;
        }
    }
    thread::available_parallelism().map_or(1, |n| n.get())
}

thread_local! {
    /// True on threads spawned by this crate ([`Pool::par_map`] workers
    /// and [`with_team`] workers), false everywhere else — including the
    /// calling thread when a batch runs inline (one worker or one item).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True when the current thread is a respin-pool worker.
///
/// This is how nested parallelism shares one budget: code that could
/// fan out again while already running inside a pool worker (e.g. the
/// cluster-sharded chip stepper) checks this flag and degrades to width
/// 1, so `--threads`/`RESPIN_THREADS` bounds the *total* worker count
/// instead of multiplying per nesting level.
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// A fixed-width run pool.
///
/// Stateless and trivially cheap: workers are scoped `std::thread`s
/// spawned per batch (setup cost is nanoseconds against simulation tasks
/// of seconds), so a `Pool` is just a worker count and never holds
/// threads, locks, or queues between calls.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with exactly `n` workers (minimum 1).
    pub fn with_threads(n: usize) -> Self {
        Self { threads: n.max(1) }
    }

    /// A pool sized by [`resolved_threads`] (override → env → hardware).
    pub fn current() -> Self {
        Self::with_threads(resolved_threads())
    }

    /// The worker count this pool dispatches to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` on up to [`Pool::threads`] workers,
    /// returning results **in input order**.
    ///
    /// Work distribution is dynamic (shared atomic claim index): a slow
    /// item occupies one worker while the rest drain the queue. With one
    /// worker — or one item — the claim loop runs inline on the calling
    /// thread; no thread is spawned.
    ///
    /// # Panics
    ///
    /// Re-raises the first task panic on the calling thread with its
    /// original payload, after aborting undispatched items and joining
    /// every worker (the scope never deadlocks on a panicked task).
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n);
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);

        let buckets: Vec<Vec<(usize, U)>> = if workers <= 1 {
            // Strictly sequential fallback: the same claim loop, inline.
            vec![worker_loop(&next, &abort, items, &f)]
        } else {
            let joined: Vec<thread::Result<Vec<(usize, U)>>> = thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        s.spawn(|| {
                            IN_WORKER.with(|w| w.set(true));
                            worker_loop(&next, &abort, items, &f)
                        })
                    })
                    .collect();
                // Join everything before leaving the scope so a panic in
                // one task can never leave a worker detached.
                handles.into_iter().map(|h| h.join()).collect()
            });
            let mut buckets = Vec::with_capacity(workers);
            let mut panic_payload = None;
            for r in joined {
                match r {
                    Ok(bucket) => buckets.push(bucket),
                    Err(payload) => {
                        if panic_payload.is_none() {
                            panic_payload = Some(payload);
                        }
                    }
                }
            }
            if let Some(payload) = panic_payload {
                resume_unwind(payload);
            }
            buckets
        };

        let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
        for (i, v) in buckets.into_iter().flatten() {
            slots[i] = Some(v);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every claimed index produced a result"))
            .collect()
    }

    /// [`Pool::par_map`] discarding results: runs `f` on every item,
    /// with the same scheduling, panic, and ordering guarantees.
    pub fn par_for_each<T, F>(&self, items: &[T], f: F)
    where
        T: Sync,
        F: Fn(&T) + Sync,
    {
        self.par_map(items, |item| f(item));
    }

    /// Fault-isolating [`Pool::par_map`]: a panicking task becomes an
    /// `Err(message)` **for that item only** — every other item still
    /// runs and returns `Ok`, and the batch never aborts. Results come
    /// back in input order, so `out[i]` is always item `i`'s outcome at
    /// every thread count.
    ///
    /// This is the campaign-recovery primitive: `par_map` treats a panic
    /// as "the batch is doomed" and re-raises it, `try_par_map` treats it
    /// as "this run failed, record it and keep the rest". The payload is
    /// rendered to a `String` (`&str`/`String` payloads verbatim, others
    /// as a placeholder) because `Box<dyn Any>` is neither `Send`-shareable
    /// across the merge nor displayable in a partial-failure report.
    pub fn try_par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<Result<U, String>>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        self.par_map(items, |item| {
            // AssertUnwindSafe: the closure only borrows `item` and `f`
            // immutably, and a panicking task's partial effects are
            // confined to its own (discarded) call frame.
            catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| {
                payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "task panicked (non-string payload)".to_string())
            })
        })
    }
}

/// Sets the abort flag when dropped during unwinding, so one panicking
/// task stops the other workers from claiming further items.
struct AbortOnPanic<'a>(&'a AtomicBool);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if thread::panicking() {
            // Safety argument (canonical D003 waiver exemplar): the abort
            // flag only makes workers stop claiming *sooner*. Whether a
            // racing worker observes it one iteration late changes which
            // items execute before the panic unwinds — never any result:
            // the batch is already doomed, its outputs are discarded, and
            // the panic payload re-raised to the caller is the one the
            // panicking task produced regardless of this store's timing.
            // respin-lint: allow(D003, reason="abort flag is a shutdown hint; batch results are discarded on panic")
            self.0.store(true, Ordering::Relaxed);
        }
    }
}

/// One worker: claim the next unclaimed index, run `f`, keep
/// `(index, result)` locally; merge happens after the join so result
/// types only need `Send`, not `Sync`.
fn worker_loop<T, U, F>(
    next: &AtomicUsize,
    abort: &AtomicBool,
    items: &[T],
    f: &F,
) -> Vec<(usize, U)>
where
    F: Fn(&T) -> U,
{
    let _guard = AbortOnPanic(abort);
    let mut out = Vec::new();
    // Safety argument (canonical D003 waiver exemplars, see DESIGN.md
    // §14): neither relaxed value can reach results.
    //
    // * The abort load only decides whether to *stop early* on a batch
    //   whose results are about to be thrown away by `resume_unwind`; a
    //   stale `false` claims at most a few extra items, it never alters
    //   any item's output.
    // * The claim index is made race-free by `fetch_add`'s atomicity
    //   itself (each index is handed out exactly once — that is a
    //   property of read-modify-write atomicity, not of ordering), and
    //   the value only selects *which worker* computes item `i`. Results
    //   are merged by item index after the join (a synchronising
    //   operation), so claim order is invisible in `par_map`'s output:
    //   `out[i] == f(&items[i])` at every thread count.
    //
    // respin-lint: allow(D003, reason="abort is a stop-early hint on a discarded batch")
    while !abort.load(Ordering::Relaxed) {
        // respin-lint: allow(D003, reason="claim index picks a worker, never a value; merge is by item index after join")
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= items.len() {
            break;
        }
        out.push((i, f(&items[i])));
    }
    out
}

/// Handle the [`with_team`] driver uses to talk to its workers: submit
/// a job to a *specific* worker, receive completed results.
///
/// Jobs are routed, not stolen: worker `w` processes exactly the jobs
/// submitted to `w`, in submission order. That is what the cluster
/// stepper needs — each worker owns the clusters handed to it for the
/// current round, and the driver decides the (deterministic) layout.
pub struct Team<J, R> {
    job_tx: Vec<mpsc::Sender<J>>,
    result_rx: mpsc::Receiver<TeamMsg<R>>,
    fault: Arc<Mutex<Option<Box<dyn Any + Send>>>>,
}

/// Internal result-channel message: a completed job, or notice that a
/// worker died executing one. The sentinel is what keeps a blocked
/// [`Team::recv`] from deadlocking when one worker panics while its
/// siblings sit idle (alive, holding the channel open): the dying
/// worker stashes its payload in the shared fault slot and sends
/// `Died`, so the driver wakes and re-raises immediately instead of
/// waiting for results that can no longer arrive.
enum TeamMsg<R> {
    Done(R),
    Died,
}

/// Takes the first stashed worker-panic payload, surviving lock poison
/// (a poisoned fault slot means a *second* panic mid-stash; the slot's
/// contents are still the root cause we want).
fn take_fault(fault: &Mutex<Option<Box<dyn Any + Send>>>) -> Option<Box<dyn Any + Send>> {
    fault.lock().unwrap_or_else(PoisonError::into_inner).take()
}

impl<J, R> Team<J, R> {
    /// Number of workers in the team.
    pub fn width(&self) -> usize {
        self.job_tx.len()
    }

    /// Sends `job` to worker `worker % width()`.
    ///
    /// # Panics
    ///
    /// Panics if that worker has died (its own panic payload is what
    /// reaches the caller once [`with_team`] joins the scope).
    pub fn submit(&self, worker: usize, job: J) {
        let w = worker % self.job_tx.len();
        if self.job_tx[w].send(job).is_err() {
            panic!("team worker {w} died before accepting a job");
        }
    }

    /// Receives the next completed result, in per-worker submission
    /// order (results from *different* workers arrive in completion
    /// order — callers that need a canonical order must carry an index
    /// in `R` and reassemble).
    ///
    /// # Panics
    ///
    /// Re-raises a dead worker's original panic payload as soon as the
    /// death is observed — even while sibling workers are alive and
    /// idle — so a worker panic can never strand the driver waiting on
    /// results that will not arrive.
    pub fn recv(&self) -> R {
        match self.result_rx.recv() {
            Ok(TeamMsg::Done(r)) => r,
            Ok(TeamMsg::Died) | Err(_) => match take_fault(&self.fault) {
                Some(payload) => resume_unwind(payload),
                None => panic!("a team worker died with results outstanding"),
            },
        }
    }
}

/// Runs `drive` on the calling thread against a team of `workers`
/// threads each executing `work` on the jobs routed to it, and returns
/// `drive`'s result. The sub-batch analogue of [`Pool::par_map`] for
/// workloads that are *rounds of small jobs* rather than one slice: the
/// driver keeps ownership of the orchestration loop and uses the
/// [`Team`] handle to fan each round out and collect it back.
///
/// `workers` is clamped to ≥ 1; with one worker the jobs still flow
/// through the (single) worker thread so the code path is identical at
/// every width. Workers are marked with the [`in_worker`] flag, so
/// nested fan-out degrades to width 1 under one thread budget.
///
/// # Panics
///
/// If a worker panics, the scope is joined and the **worker's original
/// payload** is re-raised on the caller — even when the driver also
/// panicked as a consequence (e.g. inside [`Team::submit`] to the dead
/// worker): the root cause outranks the symptom.
pub fn with_team<J, R, T, W, D>(workers: usize, work: W, drive: D) -> T
where
    J: Send,
    R: Send,
    W: Fn(J) -> R + Sync,
    D: FnOnce(&Team<J, R>) -> T,
{
    let workers = workers.max(1);
    let (result_tx, result_rx) = mpsc::channel();
    let mut job_tx = Vec::with_capacity(workers);
    let mut job_rx = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = mpsc::channel::<J>();
        job_tx.push(tx);
        job_rx.push(rx);
    }
    let fault: Arc<Mutex<Option<Box<dyn Any + Send>>>> = Arc::new(Mutex::new(None));
    let team = Team {
        job_tx,
        result_rx,
        fault: Arc::clone(&fault),
    };

    thread::scope(|s| {
        let work = &work;
        let handles: Vec<_> = job_rx
            .into_iter()
            .map(|rx| {
                let result_tx = result_tx.clone();
                let fault = Arc::clone(&fault);
                s.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    while let Ok(job) = rx.recv() {
                        // Catch the job's panic rather than letting the
                        // thread die silently: the payload is stashed in
                        // the shared fault slot and a `Died` sentinel
                        // wakes a driver blocked in `recv` (send errors
                        // mean the driver is gone; drain quietly either
                        // way). The worker then stops accepting jobs —
                        // continuing past a panic would diverge from
                        // the sequential oracle, which stops there too.
                        match catch_unwind(AssertUnwindSafe(|| work(job))) {
                            Ok(r) => {
                                let _ = result_tx.send(TeamMsg::Done(r));
                            }
                            Err(payload) => {
                                let mut slot = fault.lock().unwrap_or_else(PoisonError::into_inner);
                                slot.get_or_insert(payload);
                                drop(slot);
                                let _ = result_tx.send(TeamMsg::Died);
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        drop(result_tx);

        // AssertUnwindSafe: on a driver panic nothing it touched is
        // reused — the team is dropped and the payload re-raised.
        let drove = catch_unwind(AssertUnwindSafe(|| drive(&team)));
        // Close the job channels so idle workers exit their recv loop.
        drop(team);

        for h in handles {
            // Workers catch job panics, so a join error can only be a
            // panic in the worker loop machinery itself; treat it like
            // a job fault (first one wins).
            if let Err(payload) = h.join() {
                fault
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .get_or_insert(payload);
            }
        }
        // A worker payload outranks the driver's: when a worker dies,
        // the driver's own panic (submit/recv on a dead worker, or the
        // re-raise inside `recv`) is downstream of the root cause. The
        // fault slot is empty when `recv` already re-raised (it takes
        // the payload), in which case `drove` holds that same payload.
        match (drove, take_fault(&fault)) {
            (_, Some(payload)) => resume_unwind(payload),
            (Err(payload), None) => resume_unwind(payload),
            (Ok(value), None) => value,
        }
    })
}

/// Fair division of one worker budget across concurrently admitted jobs.
///
/// A long-lived process serving several simulation jobs at once (the
/// `respin-serve` daemon) owns **one** thread budget — the same
/// `--threads` / `RESPIN_THREADS` number a one-shot campaign would use —
/// and must not let each job independently claim the whole machine.
/// `Budget` is the admission gate: at most `max_jobs` slots are out at
/// any moment ([`Budget::acquire`] blocks until one frees), and every
/// admitted job receives the same fair share of the total,
/// `max(1, total / max_jobs)`, as its private [`Pool`] width.
///
/// The share is a function of the *configuration*, not of the instantaneous
/// load: a job admitted alone on an idle daemon gets the same worker
/// count it would get under full load. That trades a little idle-time
/// throughput for a schedule-independent execution environment — and
/// since results are bit-identical at every thread count by the
/// workspace determinism contract, the share never affects what a job
/// computes, only how fast.
///
/// ```
/// use respin_pool::Budget;
/// use std::sync::Arc;
///
/// let budget = Arc::new(Budget::new(8, 2));
/// let slot = budget.acquire();
/// assert_eq!(slot.threads(), 4); // 8 threads fairly split across 2 jobs
/// assert_eq!(budget.active(), 1);
/// drop(slot);
/// assert_eq!(budget.active(), 0);
/// ```
#[derive(Debug)]
pub struct Budget {
    total: usize,
    max_jobs: usize,
    active: Mutex<usize>,
    freed: Condvar,
}

impl Budget {
    /// A budget of `total` workers shared by up to `max_jobs` concurrent
    /// jobs (both clamped to a minimum of 1, like [`Pool::with_threads`]).
    pub fn new(total: usize, max_jobs: usize) -> Self {
        Self {
            total: total.max(1),
            max_jobs: max_jobs.max(1),
            active: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// The total worker budget.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The concurrency ceiling.
    pub fn max_jobs(&self) -> usize {
        self.max_jobs
    }

    /// The fair per-job share: `max(1, total / max_jobs)`.
    pub fn fair_share(&self) -> usize {
        (self.total / self.max_jobs).max(1)
    }

    /// Jobs currently holding a slot.
    pub fn active(&self) -> usize {
        *self.active.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until a slot is free (fewer than `max_jobs` active), then
    /// claims it. The slot is released when the returned [`BudgetSlot`]
    /// drops — including on unwind, so a panicking job can never leak
    /// its admission.
    pub fn acquire(self: &Arc<Self>) -> BudgetSlot {
        let mut active = self.active.lock().unwrap_or_else(PoisonError::into_inner);
        while *active >= self.max_jobs {
            active = self
                .freed
                .wait(active)
                .unwrap_or_else(PoisonError::into_inner);
        }
        *active += 1;
        BudgetSlot {
            budget: Arc::clone(self),
        }
    }

    /// [`Budget::acquire`] without blocking: `None` when every slot is
    /// taken.
    pub fn try_acquire(self: &Arc<Self>) -> Option<BudgetSlot> {
        let mut active = self.active.lock().unwrap_or_else(PoisonError::into_inner);
        if *active >= self.max_jobs {
            return None;
        }
        *active += 1;
        Some(BudgetSlot {
            budget: Arc::clone(self),
        })
    }
}

/// One admitted job's claim on a [`Budget`]. Dropping it frees the slot
/// and wakes one blocked [`Budget::acquire`].
#[derive(Debug)]
pub struct BudgetSlot {
    budget: Arc<Budget>,
}

impl BudgetSlot {
    /// The worker count this job may use ([`Budget::fair_share`]).
    pub fn threads(&self) -> usize {
        self.budget.fair_share()
    }

    /// A [`Pool`] sized to this slot's share.
    pub fn pool(&self) -> Pool {
        Pool::with_threads(self.threads())
    }
}

impl Drop for BudgetSlot {
    fn drop(&mut self) {
        let mut active = self
            .budget
            .active
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *active = active.saturating_sub(1);
        self.budget.freed.notify_one();
    }
}

/// [`Pool::par_map`] on the [`Pool::current`] pool.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    Pool::current().par_map(items, f)
}

/// [`Pool::par_for_each`] on the [`Pool::current`] pool.
pub fn par_for_each<T, F>(items: &[T], f: F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    Pool::current().par_for_each(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn empty_input_yields_empty_output() {
        let pool = Pool::with_threads(4);
        let out: Vec<u32> = pool.par_map(&[] as &[u32], |&x| x + 1);
        assert!(out.is_empty());
    }

    #[test]
    fn input_shorter_than_worker_count() {
        let pool = Pool::with_threads(16);
        assert_eq!(pool.par_map(&[10u32, 20, 30], |&x| x / 10), vec![1, 2, 3]);
    }

    #[test]
    fn single_item_runs_inline() {
        let pool = Pool::with_threads(8);
        let caller = thread::current().id();
        let ran_on = pool.par_map(&[()], |()| thread::current().id());
        assert_eq!(ran_on, vec![caller], "one item must not spawn");
    }

    #[test]
    fn threads_1_matches_parallel_result() {
        let items: Vec<u64> = (0..257).collect();
        let f = |&x: &u64| x.wrapping_mul(0x9e37_79b9).rotate_left(13);
        let seq = Pool::with_threads(1).par_map(&items, f);
        let par = Pool::with_threads(7).par_map(&items, f);
        assert_eq!(seq, par);
        assert_eq!(seq, items.iter().map(f).collect::<Vec<_>>());
    }

    #[test]
    fn order_preserved_under_shuffled_durations() {
        // Items deliberately finish out of claim order: pseudo-random
        // sleeps make fast items overtake slow earlier ones.
        let items: Vec<usize> = (0..200).collect();
        let out = Pool::with_threads(8).par_map(&items, |&i| {
            let jitter = (i.wrapping_mul(2654435761) >> 16) % 4;
            thread::sleep(Duration::from_micros(50 * jitter as u64));
            i * 3
        });
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn panic_propagates_with_original_payload_and_no_deadlock() {
        let pool = Pool::with_threads(4);
        let items: Vec<u32> = (0..64).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(&items, |&x| {
                if x == 13 {
                    panic!("boom at {x}");
                }
                x
            })
        }))
        .expect_err("the task panic must reach the caller");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap();
        assert!(msg.contains("boom at 13"), "payload lost: {msg}");
        // The pool is stateless: the next batch must work normally.
        assert_eq!(pool.par_map(&[1u32, 2], |&x| x + 1), vec![2, 3]);
    }

    #[test]
    fn panic_aborts_remaining_queue() {
        // With the abort flag, far fewer than all items run after the
        // poisoned one; without it this would still pass (the pool only
        // promises termination), so assert the strong-but-safe bound:
        // every executed item is counted, and the call returns.
        let executed = AtomicU64::new(0);
        let items: Vec<u32> = (0..1000).collect();
        let res = catch_unwind(AssertUnwindSafe(|| {
            Pool::with_threads(4).par_for_each(&items, |&x| {
                executed.fetch_add(1, Ordering::Relaxed);
                if x == 0 {
                    thread::sleep(Duration::from_millis(1));
                    panic!("early poison");
                }
            })
        }));
        assert!(res.is_err());
        assert!(executed.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn try_par_map_isolates_panics_to_their_item() {
        let pool = Pool::with_threads(4);
        let items: Vec<u32> = (0..64).collect();
        let out = pool.try_par_map(&items, |&x| {
            if x % 10 == 3 {
                panic!("boom at {x}");
            }
            x * 2
        });
        assert_eq!(out.len(), 64);
        for (i, r) in out.iter().enumerate() {
            if i % 10 == 3 {
                let msg = r.as_ref().expect_err("multiples-of-10-plus-3 panic");
                assert!(msg.contains(&format!("boom at {i}")), "payload lost: {msg}");
            } else {
                assert_eq!(*r, Ok(i as u32 * 2), "item {i} must still succeed");
            }
        }
        // Identical shape at one thread.
        let seq = Pool::with_threads(1).try_par_map(&items, |&x| {
            if x % 10 == 3 {
                panic!("boom at {x}");
            }
            x * 2
        });
        assert_eq!(out, seq, "outcome vector must be thread-count invariant");
    }

    #[test]
    fn par_for_each_visits_every_item_once() {
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        let items: Vec<usize> = (0..100).collect();
        Pool::with_threads(5).par_for_each(&items, |&i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 2 "), Some(2));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads(""), None);
        assert_eq!(parse_threads("many"), None);
        assert_eq!(parse_threads("-1"), None);
    }

    #[test]
    fn programmatic_override_outranks_default() {
        // Serialised with itself only; other tests use explicit pools so
        // flipping the global here cannot perturb them.
        set_threads(3);
        assert_eq!(resolved_threads(), 3);
        assert_eq!(Pool::current().threads(), 3);
        // Regression: set_threads(0) used to silently *clear* the
        // override (0 doubles as the internal "unset" sentinel) while
        // Pool::with_threads(0) clamps to 1. It now clamps identically…
        set_threads(0);
        assert_eq!(resolved_threads(), 1);
        assert_eq!(Pool::current().threads(), 1);
        // …and clearing is its own explicit call.
        clear_threads_override();
        assert!(resolved_threads() >= 1);
    }

    #[test]
    fn with_threads_clamps_zero_to_one() {
        assert_eq!(Pool::with_threads(0).threads(), 1);
    }

    #[test]
    fn in_worker_is_set_on_workers_and_only_there() {
        assert!(!in_worker(), "caller thread must not be marked");
        // Multi-item batch on a multi-worker pool: spawned workers.
        let items: Vec<u32> = (0..16).collect();
        let flags = Pool::with_threads(4).par_map(&items, |_| in_worker());
        assert!(flags.iter().all(|&f| f), "par_map workers must be marked");
        // Single item runs inline on the caller: unmarked.
        let inline = Pool::with_threads(4).par_map(&[()], |()| in_worker());
        assert_eq!(inline, vec![false], "inline path must stay unmarked");
        assert!(!in_worker(), "flag must not leak back to the caller");
    }

    #[test]
    fn team_routes_jobs_to_workers_in_order() {
        let total: u64 = with_team(
            3,
            |job: (usize, u64)| (job.0, job.1 * 2, in_worker()),
            |team| {
                assert_eq!(team.width(), 3);
                for i in 0..30usize {
                    team.submit(i, (i, i as u64));
                }
                let mut seen = vec![u64::MAX; 30];
                let mut sum = 0;
                for _ in 0..30 {
                    let (i, doubled, marked) = team.recv();
                    assert!(marked, "team workers must set the in_worker flag");
                    seen[i] = doubled;
                    sum += doubled;
                }
                assert_eq!(seen, (0..30).map(|i| i * 2).collect::<Vec<u64>>());
                sum
            },
        );
        assert_eq!(total, (0..30u64).map(|i| i * 2).sum());
    }

    #[test]
    fn team_single_worker_matches_wider_teams() {
        let run = |width| {
            with_team(
                width,
                |x: u64| x + 1,
                |team| {
                    for x in 0..20 {
                        team.submit(x as usize, x);
                    }
                    let mut out: Vec<u64> = (0..20).map(|_| team.recv()).collect();
                    out.sort_unstable();
                    out
                },
            )
        };
        assert_eq!(run(1), run(4));
        assert_eq!(run(0), run(1), "width 0 must clamp to 1");
    }

    #[test]
    fn team_worker_panic_reaches_caller_with_original_payload() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            with_team(
                2,
                |x: u32| {
                    if x == 7 {
                        panic!("team boom at {x}");
                    }
                    x
                },
                |team| {
                    for x in 0..32 {
                        team.submit(x as usize, x);
                    }
                    for _ in 0..32 {
                        let _ = team.recv();
                    }
                },
            )
        }))
        .expect_err("the worker panic must reach the caller");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap();
        assert!(
            msg.contains("team boom at 7"),
            "worker payload lost (got: {msg})"
        );
    }

    #[test]
    fn budget_fair_share_is_total_over_max_jobs_floored_at_one() {
        assert_eq!(Budget::new(8, 2).fair_share(), 4);
        assert_eq!(Budget::new(3, 2).fair_share(), 1);
        assert_eq!(Budget::new(1, 4).fair_share(), 1);
        assert_eq!(Budget::new(0, 0).fair_share(), 1, "clamps like Pool");
    }

    #[test]
    fn budget_blocks_at_max_jobs_and_frees_on_drop() {
        let budget = Arc::new(Budget::new(4, 2));
        let a = budget.acquire();
        let b = budget.acquire();
        assert_eq!(budget.active(), 2);
        assert!(budget.try_acquire().is_none(), "third job must not enter");
        // A blocked acquire must be woken by a slot release.
        let waited = std::thread::scope(|s| {
            let handle = {
                let budget = budget.clone();
                s.spawn(move || {
                    let slot = budget.acquire();
                    slot.threads()
                })
            };
            drop(a);
            handle.join().expect("blocked acquire must complete")
        });
        assert_eq!(waited, 2, "admitted job gets the fair share");
        drop(b);
        assert_eq!(budget.active(), 0);
    }

    #[test]
    fn budget_slot_is_released_on_unwind() {
        let budget = Arc::new(Budget::new(2, 1));
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _slot = budget.acquire();
            panic!("job died");
        }));
        assert!(err.is_err());
        assert_eq!(budget.active(), 0, "unwound job must not leak its slot");
        let slot = budget.try_acquire();
        assert!(slot.is_some(), "the slot must be reusable after a panic");
    }

    #[test]
    fn team_driver_panic_propagates_when_workers_are_healthy() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            with_team(2, |x: u32| x, |_team| panic!("driver gave up"));
        }))
        .expect_err("the driver panic must reach the caller");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("driver gave up"), "payload lost: {msg}");
    }
}
