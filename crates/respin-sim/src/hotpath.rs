//! Dense executed-tick data structures: sync tables and the deferred
//! wakeup wheel.
//!
//! The chip used to keep its barrier counters and lock records in
//! `BTreeMap`s and its deferred completions in a `BinaryHeap`. All three
//! are touched on the executed-tick hot path, where tree rebalancing and
//! heap sift allocations cost real wall-clock time. This module replaces
//! them with flat structures over the small, dense id/tick spaces they
//! actually index:
//!
//! - [`BarrierTable`] — arrival counters in a `Vec<u32>` keyed by barrier
//!   id (a count of zero means "no arrivals outstanding", exactly the
//!   states the old map never stored);
//! - [`IdTable`] — lock records in a `Vec<Option<T>>` keyed by lock id
//!   (entries are created on first acquire and never removed, matching
//!   the old map's lifetime);
//! - [`DeferredWheel`] — a bucketed timing wheel over future ticks with a
//!   cached next-due tick, replacing the heap while preserving its exact
//!   pop order.
//!
//! # Determinism
//!
//! Internal layout here is either trivially canonical (tables are indexed
//! by the id itself) or never observable (wheel buckets are sorted on
//! drain and at snapshot boundaries). Every serialised form is
//! byte-identical to the `BTreeMap`/sorted-`Vec` layouts the chip
//! snapshot format already pinned, so `respin-chip-snapshot/v1` is
//! unchanged. The same canonical-order-at-boundaries argument as the
//! dense directory (see `directory.rs` module docs) applies.

use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::collections::BTreeMap;

/// Dense barrier arrival counters keyed by barrier id.
///
/// Semantically a map `id -> arrivals` that never holds zero values: the
/// old `BTreeMap` inserted on first arrival and removed the entry when
/// the barrier released, so `count == 0` and "absent" were the same
/// state. The dense table makes that identity literal.
#[derive(Debug, Clone, Default)]
pub(crate) struct BarrierTable {
    counts: Vec<u32>,
    /// Number of ids with a non-zero count (for O(1) `is_empty`).
    live: usize,
}

impl BarrierTable {
    /// Empty table.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Records one arrival at `id` and returns the new arrival count.
    pub(crate) fn arrive(&mut self, id: u32) -> u32 {
        let idx = id as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        if self.counts[idx] == 0 {
            self.live += 1;
        }
        self.counts[idx] += 1;
        self.counts[idx]
    }

    /// Clears `id`'s counter (the barrier released).
    pub(crate) fn reset(&mut self, id: u32) {
        let idx = id as usize;
        if idx < self.counts.len() && self.counts[idx] != 0 {
            self.counts[idx] = 0;
            self.live -= 1;
        }
    }

    /// True when no barrier has outstanding arrivals.
    #[cfg_attr(not(test), allow(dead_code))] // diagnostics/test-only view
    pub(crate) fn is_empty(&self) -> bool {
        self.live == 0
    }
}

/// Serialises as the `BTreeMap<u32, u32>` view of the non-zero counters —
/// byte-identical to the old map-backed field in chip snapshots.
impl Serialize for BarrierTable {
    fn to_value(&self) -> Value {
        let map: BTreeMap<u32, u32> = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(id, &c)| (id as u32, c))
            .collect();
        map.to_value()
    }
}

impl Deserialize for BarrierTable {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let map: BTreeMap<u32, u32> = BTreeMap::from_value(v)?;
        let mut t = BarrierTable::new();
        for (id, c) in map {
            let idx = id as usize;
            if idx >= t.counts.len() {
                t.counts.resize(idx + 1, 0);
            }
            if c != 0 && t.counts[idx] == 0 {
                t.live += 1;
            }
            t.counts[idx] = c;
        }
        Ok(t)
    }
}

/// Dense id-keyed record table: a map `u32 -> T` where entries are
/// created on demand and live forever (the chip's lock records keep their
/// `last_cluster` after release, so the old `BTreeMap` never removed
/// them).
#[derive(Debug, Clone, Default)]
pub(crate) struct IdTable<T> {
    slots: Vec<Option<T>>,
}

impl<T: Default> IdTable<T> {
    /// Empty table.
    pub(crate) fn new() -> Self {
        Self { slots: Vec::new() }
    }

    /// The record for `id`, created with `T::default()` if absent.
    pub(crate) fn get_or_default(&mut self, id: u32) -> &mut T {
        let idx = id as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        self.slots[idx].get_or_insert_with(T::default)
    }

    /// The record for `id`, if it was ever created.
    pub(crate) fn get_mut(&mut self, id: u32) -> Option<&mut T> {
        self.slots.get_mut(id as usize).and_then(Option::as_mut)
    }

    /// Present records in ascending id order (trivially canonical: the
    /// index *is* the id).
    #[cfg_attr(not(test), allow(dead_code))] // diagnostics/test-only view
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(id, s)| s.as_ref().map(|t| (id as u32, t)))
    }
}

/// Serialises as the `BTreeMap<u32, T>` view of the present records.
impl<T: Serialize> Serialize for IdTable<T> {
    fn to_value(&self) -> Value {
        let map: BTreeMap<u32, &T> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(id, s)| s.as_ref().map(|t| (id as u32, t)))
            .collect();
        map.to_value()
    }
}

impl<T: Deserialize> Deserialize for IdTable<T> {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let map: BTreeMap<u32, T> = BTreeMap::from_value(v)?;
        let mut t = IdTable { slots: Vec::new() };
        for (id, rec) in map {
            let idx = id as usize;
            if idx >= t.slots.len() {
                t.slots.resize_with(idx + 1, || None);
            }
            t.slots[idx] = Some(rec);
        }
        Ok(t)
    }
}

/// Bucket count: a power of two covering every deferred completion the
/// chip schedules (store drains and line-transfer penalties land within a
/// few hundred ticks of `now`). Entries beyond the window spill to an
/// overflow list and migrate in as the cursor advances.
const WHEEL_BUCKETS: usize = 1024;
const WHEEL_WORDS: usize = WHEEL_BUCKETS / 64;
const WHEEL_MASK: u64 = WHEEL_BUCKETS as u64 - 1;

/// Seed capacity for each bucket (and the overflow list) when the wheel
/// lazily materialises its buckets. Bucket buffers are swapped back
/// after every drain, so capacity is monotone per bucket — but a bucket
/// that starts at zero still reallocates each time its tick-load hits a
/// new maximum, which the hot-path allocation audit would count. 64
/// comfortably covers the completions one tick can carry (a few per
/// core) at ~1 MiB total for the wheel.
const WHEEL_BUCKET_SEED_CAP: usize = 64;

/// A bucketed timing wheel replacing `BinaryHeap<Reverse<(u64, T)>>` on
/// the deferred-completion path.
///
/// Each bucket holds the entries of exactly one tick in the window
/// `[cursor, cursor + WHEEL_BUCKETS)`; a bitmap over buckets plus a
/// cached next-due tick make the peek the fast path needs O(1) and the
/// post-drain rescan O(pending ticks). Buckets are sorted before their
/// entries are handed out, so the drain order is exactly the heap's
/// ascending `(tick, T)` pop order — the wheel is observationally
/// identical to the heap it replaces.
///
/// Aligned with the PR4 next-wakeup invariant: [`DeferredWheel::peek_next`]
/// is the deferred component of `Chip::next_event_tick`, and the idle-skip
/// fast path never jumps past it.
#[derive(Debug, Clone)]
pub(crate) struct DeferredWheel<T> {
    buckets: Vec<Vec<(u64, T)>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; WHEEL_WORDS],
    /// Lowest tick that may still hold undrained entries. Every entry in
    /// the wheel has `tick >= cursor`.
    cursor: u64,
    /// Cached minimum pending tick (`u64::MAX` when empty).
    next_due: u64,
    /// Entries beyond the bucket window, with their minimum tick.
    overflow: Vec<(u64, T)>,
    overflow_min: u64,
    /// Total entries (buckets + overflow).
    len: usize,
    /// Reusable drain buffer (swapped with the due bucket, so steady-state
    /// draining allocates nothing).
    scratch: Vec<(u64, T)>,
}

impl<T> Default for DeferredWheel<T> {
    fn default() -> Self {
        Self {
            buckets: Vec::new(),
            occupied: [0; WHEEL_WORDS],
            cursor: 0,
            next_due: u64::MAX,
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            len: 0,
            scratch: Vec::new(),
        }
    }
}

impl<T: Ord + Copy> DeferredWheel<T> {
    /// Empty wheel.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Number of pending entries.
    #[cfg_attr(not(test), allow(dead_code))] // diagnostics/test-only view
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Earliest pending tick, if any. O(1): the value is cached across
    /// pushes and rescanned only after a drain actually popped something.
    pub(crate) fn peek_next(&self) -> Option<u64> {
        (self.len != 0).then_some(self.next_due)
    }

    /// Schedules `item` at `tick`. Ticks already drained (below the
    /// cursor) are rejected in debug builds; the chip only schedules
    /// completions at or after the tick being executed.
    pub(crate) fn push(&mut self, tick: u64, item: T) {
        debug_assert!(
            tick >= self.cursor,
            "deferred completion scheduled at already-drained tick {tick} (cursor {})",
            self.cursor
        );
        if self.buckets.is_empty() {
            self.buckets = (0..WHEEL_BUCKETS)
                .map(|_| Vec::with_capacity(WHEEL_BUCKET_SEED_CAP))
                .collect();
            self.overflow.reserve(WHEEL_BUCKET_SEED_CAP);
        }
        self.len += 1;
        self.next_due = self.next_due.min(tick);
        if tick >= self.cursor + WHEEL_BUCKETS as u64 {
            self.overflow_min = self.overflow_min.min(tick);
            self.overflow.push((tick, item));
            return;
        }
        let b = (tick & WHEEL_MASK) as usize;
        self.buckets[b].push((tick, item));
        self.occupied[b / 64] |= 1 << (b % 64);
    }

    /// Pops every entry due at or before `now` into `out` (cleared
    /// first), in exactly the heap's ascending `(tick, item)` order, and
    /// advances the cursor past `now`.
    pub(crate) fn drain_into(&mut self, now: u64, out: &mut Vec<(u64, T)>) {
        out.clear();
        if self.len == 0 || self.next_due > now {
            // Nothing due, but the cursor still tracks the drained
            // horizon; overflow entries the advance brings into the
            // window move to their buckets so they stay cheap to reach.
            self.cursor = self.cursor.max(now + 1);
            if self.overflow_min < self.cursor + WHEEL_BUCKETS as u64 {
                self.migrate_overflow();
            }
            return;
        }
        while self.len != 0 && self.next_due <= now {
            let t = self.next_due;
            if t >= self.cursor + WHEEL_BUCKETS as u64 {
                // Only overflow entries remain this early: slide the
                // window forward and pull the near ones into buckets.
                self.cursor = t;
                self.migrate_overflow();
                continue;
            }
            let b = (t & WHEEL_MASK) as usize;
            std::mem::swap(&mut self.buckets[b], &mut self.scratch);
            self.occupied[b / 64] &= !(1 << (b % 64));
            self.scratch.sort_unstable();
            self.len -= self.scratch.len();
            out.append(&mut self.scratch);
            std::mem::swap(&mut self.buckets[b], &mut self.scratch);
            self.cursor = t + 1;
            if self.overflow_min < self.cursor + WHEEL_BUCKETS as u64 {
                self.migrate_overflow();
            }
            self.rescan_next_due();
        }
        self.cursor = self.cursor.max(now + 1);
    }

    /// Moves overflow entries that now fit the window into their buckets.
    fn migrate_overflow(&mut self) {
        let horizon = self.cursor + WHEEL_BUCKETS as u64;
        let mut kept_min = u64::MAX;
        let mut i = 0;
        while i < self.overflow.len() {
            let (tick, item) = self.overflow[i];
            if tick < horizon {
                self.overflow.swap_remove(i);
                let b = (tick & WHEEL_MASK) as usize;
                self.buckets[b].push((tick, item));
                self.occupied[b / 64] |= 1 << (b % 64);
            } else {
                kept_min = kept_min.min(tick);
                i += 1;
            }
        }
        self.overflow_min = kept_min;
    }

    /// Recomputes the cached next-due tick: the nearest occupied bucket
    /// in window order from the cursor, folded with the overflow minimum.
    fn rescan_next_due(&mut self) {
        let start = self.cursor & WHEEL_MASK;
        let mut best_rel = u64::MAX;
        for (w, &word) in self.occupied.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let idx = (w as u64) * 64 + u64::from(bits.trailing_zeros());
                bits &= bits - 1;
                let rel = idx.wrapping_sub(start) & WHEEL_MASK;
                best_rel = best_rel.min(rel);
            }
        }
        let bucket_min = if best_rel == u64::MAX {
            u64::MAX
        } else {
            self.cursor + best_rel
        };
        self.next_due = bucket_min.min(self.overflow_min);
    }

    /// Every pending entry in ascending `(tick, item)` order — the
    /// canonical boundary traversal for snapshots and diagnostics
    /// (identical bytes to the old heap's sorted flattening).
    pub(crate) fn to_sorted(&self) -> Vec<(u64, T)> {
        let mut v: Vec<(u64, T)> = self
            .buckets
            .iter()
            .flatten()
            .chain(self.overflow.iter())
            .copied()
            .collect();
        v.sort_unstable();
        v
    }

    /// Rebuilds a wheel from a snapshot's sorted flat form.
    pub(crate) fn from_sorted(entries: Vec<(u64, T)>) -> Self {
        let mut w = Self::new();
        for (tick, item) in entries {
            w.push(tick, item);
        }
        w
    }
}

/// Precomputed boundary-core schedule for one cluster.
///
/// A core only does anything on its cycle boundaries (`tick % mult ==
/// 0`); on every other tick its core cycle is a guaranteed no-op that
/// still costs a call and two bounds-checked loads per core. Core
/// periods never change after construction, so the pattern of
/// on-boundary cores repeats with period `lcm` of the cluster's mults
/// (1/4/5/6 → at most 60). This table stores, for each tick residue,
/// the ascending core indices on a boundary there, letting the stepping
/// loop iterate exactly the cores that can act.
///
/// Skipping the others is exact, not approximate: the core cycle's
/// first action is the boundary check, before any side effect.
///
/// Derived state: rebuilt from the cores' mults at construction and
/// snapshot restore, never serialised.
#[derive(Debug, Clone)]
pub(crate) struct BoundarySchedule {
    /// Schedule period in ticks (lcm of the mults), or 0 when the lcm
    /// overflowed [`Self::MAX_PERIOD`] and callers must fall back to
    /// visiting every core.
    period: u64,
    /// `slots[tick % period]` = ascending indices of cores with
    /// `tick % mult == 0`.
    slots: Vec<Vec<u16>>,
}

impl BoundarySchedule {
    /// Largest period the table will materialise. Mults are 1 or 4/5/6
    /// (lcm 60); the cap only exists so a hypothetical exotic mult set
    /// degrades to the visit-every-core loop instead of a huge table.
    const MAX_PERIOD: u64 = 4096;

    /// Builds the schedule for cores with the given periods.
    pub(crate) fn build(mults: impl Iterator<Item = u64> + Clone) -> Self {
        let mut period = 1u64;
        for m in mults.clone() {
            debug_assert!(m >= 1, "core period mult must be >= 1");
            period = period / gcd(period, m) * m;
            if period > Self::MAX_PERIOD {
                return Self {
                    period: 0,
                    slots: Vec::new(),
                };
            }
        }
        let slots = (0..period)
            .map(|s| {
                mults
                    .clone()
                    .enumerate()
                    .filter(|&(_, m)| s % m == 0)
                    .map(|(c, _)| u16::try_from(c).expect("cluster core index fits u16"))
                    .collect()
            })
            .collect();
        Self { period, slots }
    }

    /// Ascending indices of the cores on a cycle boundary at `now`, or
    /// `None` when no schedule was materialised (visit every core).
    #[inline]
    pub(crate) fn cores_at(&self, now: u64) -> Option<&[u16]> {
        if self.period == 0 {
            return None;
        }
        Some(&self.slots[(now % self.period) as usize])
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn barrier_counts_and_resets() {
        let mut b = BarrierTable::new();
        assert!(b.is_empty());
        assert_eq!(b.arrive(3), 1);
        assert_eq!(b.arrive(3), 2);
        assert_eq!(b.arrive(7), 1);
        assert!(!b.is_empty());
        b.reset(3);
        assert!(!b.is_empty());
        b.reset(7);
        assert!(b.is_empty());
        // Reset of an untouched id is a no-op.
        b.reset(100);
        assert!(b.is_empty());
    }

    #[test]
    fn barrier_serialises_like_a_btreemap() {
        let mut b = BarrierTable::new();
        b.arrive(10);
        b.arrive(2);
        b.arrive(2);
        let mut map = BTreeMap::new();
        map.insert(10u32, 1u32);
        map.insert(2u32, 2u32);
        assert_eq!(b.to_value(), map.to_value());
        let back = BarrierTable::from_value(&b.to_value()).expect("roundtrip");
        assert_eq!(back.to_value(), b.to_value());
        assert!(!back.is_empty());
    }

    #[test]
    fn id_table_creates_on_demand_and_iterates_in_id_order() {
        let mut t: IdTable<u32> = IdTable::new();
        *t.get_or_default(5) = 50;
        *t.get_or_default(1) = 10;
        assert_eq!(t.get_mut(5), Some(&mut 50));
        assert_eq!(t.get_mut(2), None);
        let seen: Vec<(u32, u32)> = t.iter().map(|(id, &v)| (id, v)).collect();
        assert_eq!(seen, vec![(1, 10), (5, 50)]);
        let mut map = BTreeMap::new();
        map.insert(1u32, 10u32);
        map.insert(5u32, 50u32);
        assert_eq!(t.to_value(), map.to_value());
    }

    #[test]
    fn wheel_drains_in_heap_order() {
        let mut w: DeferredWheel<u32> = DeferredWheel::new();
        w.push(5, 2);
        w.push(5, 1);
        w.push(3, 9);
        assert_eq!(w.peek_next(), Some(3));
        let mut out = Vec::new();
        w.drain_into(4, &mut out);
        assert_eq!(out, vec![(3, 9)]);
        assert_eq!(w.peek_next(), Some(5));
        w.drain_into(5, &mut out);
        assert_eq!(out, vec![(5, 1), (5, 2)]);
        assert_eq!(w.peek_next(), None);
        w.drain_into(6, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn wheel_handles_far_future_entries_via_overflow() {
        let mut w: DeferredWheel<u32> = DeferredWheel::new();
        w.push(0, 1);
        let far = WHEEL_BUCKETS as u64 * 3 + 17;
        w.push(far, 2);
        assert_eq!(w.peek_next(), Some(0));
        let mut out = Vec::new();
        w.drain_into(0, &mut out);
        assert_eq!(out, vec![(0, 1)]);
        assert_eq!(w.peek_next(), Some(far));
        w.drain_into(far, &mut out);
        assert_eq!(out, vec![(far, 2)]);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn wheel_rebases_after_long_idle() {
        let mut w: DeferredWheel<u32> = DeferredWheel::new();
        w.push(1, 1);
        let mut out = Vec::new();
        w.drain_into(1, &mut out);
        // A long idle-skip later, a push far ahead of the stale cursor
        // must still surface (overflow, then the window slides to it).
        let late = 1_000_000;
        w.push(late, 7);
        assert_eq!(w.peek_next(), Some(late));
        w.drain_into(late, &mut out);
        assert_eq!(out, vec![(late, 7)]);
    }

    #[test]
    fn wheel_snapshot_form_matches_sorted_heap_flattening() {
        let mut w: DeferredWheel<u32> = DeferredWheel::new();
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        for &(t, x) in &[(9u64, 1u32), (2, 5), (2, 3), (4000, 0), (7, 7)] {
            w.push(t, x);
            heap.push(Reverse((t, x)));
        }
        let mut flat: Vec<(u64, u32)> = heap.iter().map(|r| r.0).collect();
        flat.sort_unstable();
        assert_eq!(w.to_sorted(), flat);
        let back = DeferredWheel::from_sorted(w.to_sorted());
        assert_eq!(back.to_sorted(), flat);
        assert_eq!(back.peek_next(), w.peek_next());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Differential check against the heap the wheel replaces: random
        /// interleavings of pushes and drains must pop the same entries
        /// in the same order at every step, including far-future ticks
        /// that exercise the overflow list.
        #[test]
        fn wheel_matches_binary_heap(
            ops in proptest::collection::vec(
                // (advance ticks, pushes at now+delta); delta >= 1 because
                // the chip only schedules completions strictly after the
                // tick being executed (the wheel's cursor invariant).
                (0u64..200, proptest::collection::vec((1u64..3000, 0u32..8), 0..4)),
                1..64),
        ) {
            let mut w: DeferredWheel<u32> = DeferredWheel::new();
            let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
            let mut now = 0u64;
            let mut out = Vec::new();
            for (adv, pushes) in ops {
                for (delta, item) in pushes {
                    w.push(now + delta, item);
                    heap.push(Reverse((now + delta, item)));
                }
                now += adv;
                w.drain_into(now, &mut out);
                let mut expect = Vec::new();
                while let Some(&Reverse((t, x))) = heap.peek() {
                    if t > now {
                        break;
                    }
                    heap.pop();
                    expect.push((t, x));
                }
                prop_assert_eq!(&out, &expect, "drain at now={} diverged", now);
                prop_assert_eq!(w.len(), heap.len());
                let heap_peek = heap.peek().map(|r| r.0 .0);
                prop_assert_eq!(w.peek_next(), heap_peek);
            }
        }
    }

    #[test]
    fn boundary_schedule_matches_the_modulo_check() {
        let mults = [4u64, 5, 6, 4, 1];
        let sched = BoundarySchedule::build(mults.iter().copied());
        for now in 0..200u64 {
            let expect: Vec<u16> = mults
                .iter()
                .enumerate()
                .filter(|&(_, &m)| now.is_multiple_of(m))
                .map(|(c, _)| c as u16)
                .collect();
            assert_eq!(
                sched.cores_at(now).unwrap(),
                expect.as_slice(),
                "tick {now}"
            );
        }
    }

    #[test]
    fn boundary_schedule_falls_back_when_the_lcm_explodes() {
        // Coprime periods whose lcm exceeds the cap: no table, callers
        // visit every core.
        let sched = BoundarySchedule::build([4093u64, 4091].into_iter());
        assert!(sched.cores_at(0).is_none());
    }

    proptest! {
        #[test]
        fn boundary_schedule_is_exact_for_arbitrary_mults(
            mults in proptest::collection::vec(1u64..8, 1..12),
            now in 0u64..10_000,
        ) {
            let sched = BoundarySchedule::build(mults.iter().copied());
            let expect: Vec<u16> = mults
                .iter()
                .enumerate()
                .filter(|&(_, &m)| now.is_multiple_of(m))
                .map(|(c, _)| c as u16)
                .collect();
            prop_assert_eq!(sched.cores_at(now).unwrap(), expect.as_slice());
        }
    }
}
