//! Phase-attribution self-profiling for the executed-tick hot path.
//!
//! Perf work on the simulator needs to argue from data: which of the
//! step's phases actually costs wall-clock time? This module defines a
//! zero-cost probe seam — [`Chip::step`](crate::Chip::step) is generic
//! over a [`StepProbe`] whose no-op implementation ([`NoProbe`])
//! monomorphises away entirely — plus the accumulating implementation
//! ([`PhaseProfiler`]) that `respin-experiments bench --profile` runs to
//! produce the `respin-profile/v1` report.
//!
//! The simulator itself never reads a wall clock (determinism lint D002
//! confines `Instant::now` to the bench/CLI crates), so the profiler is
//! handed a monotonic nanosecond closure by its caller. Probing is
//! observation-only by construction: no simulator state ever depends on
//! a probe, so a profiled run is bit-identical to an unprofiled one.

/// The executed-tick phases wall time is attributed to.
///
/// The first four are the step's own phases; everything between steps —
/// next-event computation, idle-skip, the run loop's finished checks,
/// epoch-boundary fault maintenance and report assembly — lands in
/// [`Phase::EpochMaintenance`], so the five buckets partition the entire
/// run-loop wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Shared-L1 controller ticks (port arbitration, array access).
    SharedL1Tick = 0,
    /// L1 event dispatch (miss path, fills, writebacks) and deferred
    /// completions.
    EventDrain = 1,
    /// Core cycles: context-switch decisions, issue, retire, and the
    /// inline synchronisation ops they raise.
    CoreExecute = 2,
    /// Tick-boundary replay of queued cross-cluster coherence actions
    /// (and, in the sharded loop, the canonical-order sync replay).
    SyncReplay = 3,
    /// Everything between executed ticks: next-event-tick computation,
    /// idle skipping, loop control, epoch-boundary maintenance.
    EpochMaintenance = 4,
}

/// Number of phases in [`Phase`].
pub const PHASE_COUNT: usize = 5;

/// Short stable names, index-aligned with [`Phase`] (the JSON keys of
/// the `respin-profile/v1` report).
pub const PHASE_NAMES: [&str; PHASE_COUNT] = [
    "shared_l1_tick",
    "event_drain",
    "core_execute",
    "sync_replay",
    "epoch_maintenance",
];

/// Probe seam the stepping loop reports phase boundaries through.
///
/// `mark(p)` means "the wall time since the previous mark belongs to
/// phase `p`". Implementations must not touch simulator state (the type
/// system enforces this: probes only see themselves).
pub trait StepProbe {
    /// Attributes the time since the last mark to `phase`.
    fn mark(&mut self, phase: Phase);
    /// Called once per executed tick, after its last phase mark.
    fn tick_executed(&mut self);
}

/// The default probe: does nothing, costs nothing (every call inlines to
/// a no-op in the monomorphised unprofiled stepping loop).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProbe;

impl StepProbe for NoProbe {
    #[inline(always)]
    fn mark(&mut self, _phase: Phase) {}
    #[inline(always)]
    fn tick_executed(&mut self) {}
}

/// Accumulated phase attribution, in nanoseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseAccum {
    /// Nanoseconds per phase, indexed by `Phase as usize`
    /// ([`PHASE_NAMES`] gives the labels).
    pub ns: [u64; PHASE_COUNT],
    /// Executed (non-skipped) ticks observed.
    pub executed_ticks: u64,
}

impl PhaseAccum {
    /// Total attributed nanoseconds across all phases.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Folds another accumulation into this one.
    pub fn merge(&mut self, other: &PhaseAccum) {
        for (a, b) in self.ns.iter_mut().zip(other.ns.iter()) {
            *a += b;
        }
        self.executed_ticks += other.executed_ticks;
    }
}

/// The accumulating probe: attributes the interval between consecutive
/// marks to the marked phase, using a caller-supplied monotonic
/// nanosecond clock (the simulator crate never reads wall clocks
/// itself — determinism lint D002).
pub struct PhaseProfiler<'c> {
    clock: &'c mut dyn FnMut() -> u64,
    last: u64,
    /// The attribution accumulated so far.
    pub acc: PhaseAccum,
}

impl<'c> PhaseProfiler<'c> {
    /// Creates a profiler over `clock` (monotonic nanoseconds); the
    /// first mark attributes time from this call.
    pub fn new(clock: &'c mut dyn FnMut() -> u64) -> Self {
        let last = clock();
        Self {
            clock,
            last,
            acc: PhaseAccum::default(),
        }
    }
}

impl StepProbe for PhaseProfiler<'_> {
    fn mark(&mut self, phase: Phase) {
        let now = (self.clock)();
        self.acc.ns[phase as usize] += now.saturating_sub(self.last);
        self.last = now;
    }

    fn tick_executed(&mut self) {
        self.acc.executed_ticks += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_attributes_intervals_to_marked_phases() {
        let mut t = 0u64;
        let mut clock = || {
            t += 10;
            t
        };
        let mut p = PhaseProfiler::new(&mut clock);
        p.mark(Phase::SharedL1Tick);
        p.mark(Phase::CoreExecute);
        p.mark(Phase::CoreExecute);
        p.tick_executed();
        assert_eq!(p.acc.ns[Phase::SharedL1Tick as usize], 10);
        assert_eq!(p.acc.ns[Phase::CoreExecute as usize], 20);
        assert_eq!(p.acc.total_ns(), 30);
        assert_eq!(p.acc.executed_ticks, 1);
    }

    #[test]
    fn merge_folds_all_buckets() {
        let mut a = PhaseAccum::default();
        let mut b = PhaseAccum::default();
        a.ns[0] = 5;
        a.executed_ticks = 2;
        b.ns[0] = 7;
        b.ns[4] = 3;
        b.executed_ticks = 1;
        a.merge(&b);
        assert_eq!(a.ns[0], 12);
        assert_eq!(a.ns[4], 3);
        assert_eq!(a.executed_ticks, 3);
        assert_eq!(a.total_ns(), 15);
    }
}
