//! Chip configuration: the knobs Table I / Table IV of the paper sweep.

use crate::consts::{CACHE_PERIOD_PS, EPOCH_INSTRUCTIONS};

use respin_power::units::{kib, mib};
use respin_power::{array_params, ArrayParams, CacheGeometry, MemTech};
use respin_variation::FrequencyBand;
use serde::{Deserialize, Serialize};

/// L1 organisation within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum L1Org {
    /// Conventional per-core private L1I/L1D (with MESI inside the cluster).
    Private,
    /// One L1I + one L1D time-multiplexed by all cores of the cluster
    /// (the paper's design; no intra-cluster coherence).
    SharedPerCluster,
}

/// Who performs context switches between consolidated virtual cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CtxSwitchModel {
    /// Hardware switching at fine slices (the paper's mechanism).
    Hardware,
    /// OS-level switching at 1 ms quanta (the SH-STT-CC-OS comparison).
    Os,
}

/// The small/medium/large cache sizings of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheSizeClass {
    /// ≈1 MB of cache per core (L2 8 MB/cluster, L3 24 MB).
    Small,
    /// ≈2 MB per core (L2 16 MB/cluster, L3 48 MB) — the paper's default.
    Medium,
    /// ≈4 MB per core (L2 32 MB/cluster, L3 96 MB).
    Large,
}

impl CacheSizeClass {
    /// L2 capacity per cluster, bytes.
    pub fn l2_bytes(self) -> u64 {
        match self {
            CacheSizeClass::Small => mib(8),
            CacheSizeClass::Medium => mib(16),
            CacheSizeClass::Large => mib(32),
        }
    }

    /// L3 capacity (chip-wide), bytes.
    pub fn l3_bytes(self) -> u64 {
        match self {
            CacheSizeClass::Small => mib(24),
            CacheSizeClass::Medium => mib(48),
            CacheSizeClass::Large => mib(96),
        }
    }

    /// Paper label.
    pub fn name(self) -> &'static str {
        match self {
            CacheSizeClass::Small => "small",
            CacheSizeClass::Medium => "medium",
            CacheSizeClass::Large => "large",
        }
    }

    /// All classes, for sweeps.
    pub const ALL: [CacheSizeClass; 3] = [
        CacheSizeClass::Small,
        CacheSizeClass::Medium,
        CacheSizeClass::Large,
    ];
}

/// Full configuration of one simulated chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// Number of clusters.
    pub clusters: usize,
    /// Cores per cluster (the paper sweeps 4/8/16/32; 16 is optimal).
    pub cores_per_cluster: usize,
    /// Core supply voltage, volts.
    pub core_vdd: f64,
    /// Quantisation band for core frequencies.
    pub band: FrequencyBand,
    /// L1 organisation.
    pub l1_org: L1Org,
    /// Technology of the entire cache hierarchy.
    pub cache_tech: MemTech,
    /// Cache supply voltage, volts (a second rail; §II).
    pub cache_vdd: f64,
    /// L2/L3 sizing class.
    pub size_class: CacheSizeClass,
    /// Whether the consolidation machinery (virtual cores, gating) is
    /// enabled. When false, the chip runs one thread per core, all on.
    pub consolidation: bool,
    /// Context-switch model when consolidation stacks virtual cores.
    pub ctx_switch: CtxSwitchModel,
    /// Consolidation epoch length, retired instructions per cluster.
    pub epoch_instructions: u64,
    /// Retired instructions per thread (overrides the workload default when
    /// `Some`).
    pub instructions_per_thread: Option<u64>,
    /// Request delivery latency from core to shared cache in ticks
    /// (level shifters + wires; §II-A's 2 cycles). Exposed for the
    /// level-shifter ablation.
    pub delivery_ticks: u64,
}

impl ChipConfig {
    /// The paper's 64-core NT chip skeleton; callers adjust organisation,
    /// technology, and voltages to produce the Table IV configurations.
    pub fn nt_base() -> Self {
        Self {
            clusters: 4,
            cores_per_cluster: 16,
            core_vdd: 0.4,
            band: FrequencyBand::NT,
            l1_org: L1Org::SharedPerCluster,
            cache_tech: MemTech::SttRam,
            cache_vdd: 1.0,
            size_class: CacheSizeClass::Medium,
            consolidation: false,
            ctx_switch: CtxSwitchModel::Hardware,
            epoch_instructions: EPOCH_INSTRUCTIONS,
            instructions_per_thread: None,
            delivery_ticks: crate::consts::DELIVERY_TICKS,
        }
    }

    /// Total core count.
    pub fn total_cores(&self) -> usize {
        self.clusters * self.cores_per_cluster
    }

    /// L1 instruction-cache geometry. Private: 16 KB, 2-way, 32 B blocks
    /// (Table I). Shared: 16 KB × cluster size, so chip-wide L1 capacity is
    /// constant across cluster sizes (§V-D).
    pub fn l1i_geometry(&self) -> CacheGeometry {
        match self.l1_org {
            L1Org::Private => CacheGeometry::new(kib(16), 32, 2),
            L1Org::SharedPerCluster => {
                CacheGeometry::new(kib(16) * self.cores_per_cluster as u64, 32, 2)
            }
        }
    }

    /// L1 data-cache geometry: 16 KB 4-way private, or 16 KB/core shared.
    pub fn l1d_geometry(&self) -> CacheGeometry {
        match self.l1_org {
            L1Org::Private => CacheGeometry::new(kib(16), 32, 4),
            L1Org::SharedPerCluster => {
                CacheGeometry::new(kib(16) * self.cores_per_cluster as u64, 32, 4)
            }
        }
    }

    /// L2 geometry (always shared within a cluster): 8-way, 64 B blocks.
    pub fn l2_geometry(&self) -> CacheGeometry {
        CacheGeometry::new(self.size_class.l2_bytes(), 64, 8)
    }

    /// L3 geometry (chip-wide): 16-way, 128 B blocks.
    pub fn l3_geometry(&self) -> CacheGeometry {
        CacheGeometry::new(self.size_class.l3_bytes(), 128, 16)
    }

    /// Technology parameters of an L1 array at the cache rail.
    pub fn l1_params(&self, geometry: CacheGeometry) -> ArrayParams {
        array_params(self.cache_tech, geometry, self.cache_vdd)
    }

    /// Read service time of a cache array in ticks. The paper rounds the
    /// shared STT-RAM L1 read to the 0.4 ns reference cycle to align clock
    /// edges (§IV); SRAM at nominal voltage is a shade slower and takes the
    /// extra tick — the source of SH-STT's ~1% edge over SH-SRAM-Nom.
    pub fn read_ticks(&self, params: &ArrayParams, is_l1: bool) -> u64 {
        if is_l1 && self.cache_tech == MemTech::SttRam {
            // Paper: "rounded STT-RAM cache read latency up to 0.4ns".
            return 1;
        }
        (params.read_latency_ps / CACHE_PERIOD_PS).ceil().max(1.0) as u64
    }

    /// Write occupancy/latency of a cache array in ticks.
    pub fn write_ticks(&self, params: &ArrayParams) -> u64 {
        (params.write_latency_ps / CACHE_PERIOD_PS).ceil().max(1.0) as u64
    }

    /// True when the core and cache rails differ, i.e. requests cross level
    /// shifters.
    pub fn has_dual_rails(&self) -> bool {
        (self.core_vdd - self.cache_vdd).abs() > 1e-9
    }

    /// Validates structural consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.clusters == 0 || self.cores_per_cluster == 0 {
            return Err("need at least one cluster and one core".into());
        }
        self.l1i_geometry().validate()?;
        self.l1d_geometry().validate()?;
        self.l2_geometry().validate()?;
        self.l3_geometry().validate()?;
        if !(0.3..=1.2).contains(&self.core_vdd) || !(0.3..=1.2).contains(&self.cache_vdd) {
            return Err("supply voltages out of modelled range".into());
        }
        if self.epoch_instructions == 0 {
            return Err("epoch length must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_config_is_valid() {
        let c = ChipConfig::nt_base();
        c.validate().unwrap();
        assert_eq!(c.total_cores(), 64);
    }

    #[test]
    fn shared_l1_scales_with_cluster_size() {
        let mut c = ChipConfig::nt_base();
        c.cores_per_cluster = 16;
        assert_eq!(c.l1d_geometry().capacity_bytes, kib(256));
        c.cores_per_cluster = 32;
        assert_eq!(c.l1d_geometry().capacity_bytes, kib(512));
        c.l1_org = L1Org::Private;
        assert_eq!(c.l1d_geometry().capacity_bytes, kib(16));
    }

    #[test]
    fn size_classes_match_table1() {
        assert_eq!(CacheSizeClass::Small.l2_bytes(), mib(8));
        assert_eq!(CacheSizeClass::Medium.l2_bytes(), mib(16));
        assert_eq!(CacheSizeClass::Large.l2_bytes(), mib(32));
        assert_eq!(CacheSizeClass::Medium.l3_bytes(), mib(48));
    }

    #[test]
    fn stt_l1_reads_in_one_tick_sram_in_two() {
        let stt = ChipConfig::nt_base();
        let p = stt.l1_params(stt.l1d_geometry());
        assert_eq!(stt.read_ticks(&p, true), 1);

        let mut sram = ChipConfig::nt_base();
        sram.cache_tech = MemTech::Sram;
        let p = sram.l1_params(sram.l1d_geometry());
        assert_eq!(sram.read_ticks(&p, true), 2);
    }

    #[test]
    fn dual_rail_detection() {
        let mut c = ChipConfig::nt_base();
        assert!(c.has_dual_rails());
        c.core_vdd = 1.0;
        assert!(!c.has_dual_rails());
    }

    #[test]
    fn stt_write_occupancy_is_long() {
        let c = ChipConfig::nt_base();
        let p = c.l1_params(c.l1d_geometry());
        // 5.2 ns at 0.4 ns/tick ⇒ 13 ticks.
        assert_eq!(c.write_ticks(&p), 14);
    }

    #[test]
    fn rejects_silly_configs() {
        let mut c = ChipConfig::nt_base();
        c.clusters = 0;
        assert!(c.validate().is_err());
        let mut c = ChipConfig::nt_base();
        c.core_vdd = 0.1;
        assert!(c.validate().is_err());
        let mut c = ChipConfig::nt_base();
        c.epoch_instructions = 0;
        assert!(c.validate().is_err());
    }
}
