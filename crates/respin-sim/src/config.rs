//! Chip configuration: the knobs Table I / Table IV of the paper sweep.

use crate::consts::{CACHE_PERIOD_PS, EPOCH_INSTRUCTIONS};

use respin_faults::FaultConfig;
use respin_power::diag::{Report, Violation};
use respin_power::scaling::CORE_LOGIC_VTH;
use respin_power::units::{kib, mib};
use respin_power::{array_params, ArrayParams, CacheGeometry, MemTech};
use respin_variation::FrequencyBand;
use serde::{Deserialize, Serialize};

/// L1 organisation within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum L1Org {
    /// Conventional per-core private L1I/L1D (with MESI inside the cluster).
    Private,
    /// One L1I + one L1D time-multiplexed by all cores of the cluster
    /// (the paper's design; no intra-cluster coherence).
    SharedPerCluster,
}

/// Who performs context switches between consolidated virtual cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CtxSwitchModel {
    /// Hardware switching at fine slices (the paper's mechanism).
    Hardware,
    /// OS-level switching at 1 ms quanta (the SH-STT-CC-OS comparison).
    Os,
}

/// The small/medium/large cache sizings of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheSizeClass {
    /// ≈1 MB of cache per core (L2 8 MB/cluster, L3 24 MB).
    Small,
    /// ≈2 MB per core (L2 16 MB/cluster, L3 48 MB) — the paper's default.
    Medium,
    /// ≈4 MB per core (L2 32 MB/cluster, L3 96 MB).
    Large,
}

impl CacheSizeClass {
    /// L2 capacity per cluster, bytes.
    pub fn l2_bytes(self) -> u64 {
        match self {
            CacheSizeClass::Small => mib(8),
            CacheSizeClass::Medium => mib(16),
            CacheSizeClass::Large => mib(32),
        }
    }

    /// L3 capacity (chip-wide), bytes.
    pub fn l3_bytes(self) -> u64 {
        match self {
            CacheSizeClass::Small => mib(24),
            CacheSizeClass::Medium => mib(48),
            CacheSizeClass::Large => mib(96),
        }
    }

    /// Paper label.
    pub fn name(self) -> &'static str {
        match self {
            CacheSizeClass::Small => "small",
            CacheSizeClass::Medium => "medium",
            CacheSizeClass::Large => "large",
        }
    }

    /// All classes, for sweeps.
    pub const ALL: [CacheSizeClass; 3] = [
        CacheSizeClass::Small,
        CacheSizeClass::Medium,
        CacheSizeClass::Large,
    ];
}

/// Full configuration of one simulated chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// Number of clusters.
    pub clusters: usize,
    /// Cores per cluster (the paper sweeps 4/8/16/32; 16 is optimal).
    pub cores_per_cluster: usize,
    /// Core supply voltage, volts.
    pub core_vdd: f64,
    /// Quantisation band for core frequencies.
    pub band: FrequencyBand,
    /// L1 organisation.
    pub l1_org: L1Org,
    /// Technology of the entire cache hierarchy.
    pub cache_tech: MemTech,
    /// Cache supply voltage, volts (a second rail; §II).
    pub cache_vdd: f64,
    /// L2/L3 sizing class.
    pub size_class: CacheSizeClass,
    /// Whether the consolidation machinery (virtual cores, gating) is
    /// enabled. When false, the chip runs one thread per core, all on.
    pub consolidation: bool,
    /// Context-switch model when consolidation stacks virtual cores.
    pub ctx_switch: CtxSwitchModel,
    /// Consolidation epoch length, retired instructions per cluster.
    pub epoch_instructions: u64,
    /// Retired instructions per thread (overrides the workload default when
    /// `Some`).
    pub instructions_per_thread: Option<u64>,
    /// Request delivery latency from core to shared cache in ticks
    /// (level shifters + wires; §II-A's 2 cycles). Exposed for the
    /// level-shifter ablation.
    pub delivery_ticks: u64,
    /// Fault-injection and recovery models (STT-RAM write failures,
    /// retention decay, transient core faults). Disabled by default;
    /// with every rate at zero the hooks are provably zero-cost.
    pub faults: FaultConfig,
}

impl ChipConfig {
    /// The paper's 64-core NT chip skeleton; callers adjust organisation,
    /// technology, and voltages to produce the Table IV configurations.
    pub fn nt_base() -> Self {
        Self {
            clusters: 4,
            cores_per_cluster: 16,
            core_vdd: 0.4,
            band: FrequencyBand::NT,
            l1_org: L1Org::SharedPerCluster,
            cache_tech: MemTech::SttRam,
            cache_vdd: 1.0,
            size_class: CacheSizeClass::Medium,
            consolidation: false,
            ctx_switch: CtxSwitchModel::Hardware,
            epoch_instructions: EPOCH_INSTRUCTIONS,
            instructions_per_thread: None,
            delivery_ticks: crate::consts::DELIVERY_TICKS,
            faults: FaultConfig::off(),
        }
    }

    /// Total core count.
    pub fn total_cores(&self) -> usize {
        self.clusters * self.cores_per_cluster
    }

    /// L1 instruction-cache geometry. Private: 16 KB, 2-way, 32 B blocks
    /// (Table I). Shared: 16 KB × cluster size, so chip-wide L1 capacity is
    /// constant across cluster sizes (§V-D).
    pub fn l1i_geometry(&self) -> CacheGeometry {
        match self.l1_org {
            L1Org::Private => CacheGeometry::new(kib(16), 32, 2),
            L1Org::SharedPerCluster => {
                CacheGeometry::new(kib(16) * self.cores_per_cluster as u64, 32, 2)
            }
        }
    }

    /// L1 data-cache geometry: 16 KB 4-way private, or 16 KB/core shared.
    pub fn l1d_geometry(&self) -> CacheGeometry {
        match self.l1_org {
            L1Org::Private => CacheGeometry::new(kib(16), 32, 4),
            L1Org::SharedPerCluster => {
                CacheGeometry::new(kib(16) * self.cores_per_cluster as u64, 32, 4)
            }
        }
    }

    /// L2 geometry (always shared within a cluster): 8-way, 64 B blocks.
    pub fn l2_geometry(&self) -> CacheGeometry {
        CacheGeometry::new(self.size_class.l2_bytes(), 64, 8)
    }

    /// L3 geometry (chip-wide): 16-way, 128 B blocks.
    pub fn l3_geometry(&self) -> CacheGeometry {
        CacheGeometry::new(self.size_class.l3_bytes(), 128, 16)
    }

    /// Technology parameters of an L1 array at the cache rail.
    pub fn l1_params(&self, geometry: CacheGeometry) -> ArrayParams {
        array_params(self.cache_tech, geometry, self.cache_vdd)
    }

    /// Read service time of a cache array in ticks. The paper rounds the
    /// shared STT-RAM L1 read to the 0.4 ns reference cycle to align clock
    /// edges (§IV); SRAM at nominal voltage is a shade slower and takes the
    /// extra tick — the source of SH-STT's ~1% edge over SH-SRAM-Nom.
    pub fn read_ticks(&self, params: &ArrayParams, is_l1: bool) -> u64 {
        if is_l1 && self.cache_tech == MemTech::SttRam {
            // Paper: "rounded STT-RAM cache read latency up to 0.4ns".
            return 1;
        }
        (params.read_latency_ps / CACHE_PERIOD_PS).ceil().max(1.0) as u64
    }

    /// Write occupancy/latency of a cache array in ticks.
    pub fn write_ticks(&self, params: &ArrayParams) -> u64 {
        (params.write_latency_ps / CACHE_PERIOD_PS).ceil().max(1.0) as u64
    }

    /// True when the core and cache rails differ, i.e. requests cross level
    /// shifters.
    pub fn has_dual_rails(&self) -> bool {
        (self.core_vdd - self.cache_vdd).abs() > 1e-9
    }

    /// Checks every structural invariant, collecting all violations instead
    /// of stopping at the first. A clean report means [`crate::Chip::new`]
    /// will not panic on this configuration.
    pub fn check(&self) -> Report {
        let mut report = Report::new();
        if self.clusters == 0 {
            report.push(Violation::error(
                "CFG-CORES",
                "chip has at least one cluster and one core",
                "ChipConfig.clusters",
                "cluster count is zero",
            ));
        }
        if self.cores_per_cluster == 0 {
            report.push(Violation::error(
                "CFG-CORES",
                "chip has at least one cluster and one core",
                "ChipConfig.cores_per_cluster",
                "cluster size is zero",
            ));
        }
        // Geometry checks only make sense once the counts are non-zero
        // (shared-L1 capacity scales with the cluster size).
        if self.clusters > 0 && self.cores_per_cluster > 0 {
            let geometries = [
                ("ChipConfig.l1i_geometry", self.l1i_geometry()),
                ("ChipConfig.l1d_geometry", self.l1d_geometry()),
                ("ChipConfig.l2_geometry", self.l2_geometry()),
                ("ChipConfig.l3_geometry", self.l3_geometry()),
            ];
            for (loc, g) in geometries {
                if let Err(e) = g.validate() {
                    report.push(Violation::error(
                        "CFG-GEOMETRY",
                        "cache geometries are well-formed",
                        loc,
                        e,
                    ));
                }
            }
        }
        for (loc, v) in [
            ("ChipConfig.core_vdd", self.core_vdd),
            ("ChipConfig.cache_vdd", self.cache_vdd),
        ] {
            if !(0.3..=1.2).contains(&v) {
                report.push(Violation::error(
                    "CFG-VDD-RANGE",
                    "supply voltages stay in the modelled 0.3-1.2 V range",
                    loc,
                    format!("{v} V is outside 0.3..=1.2 V"),
                ));
            }
        }
        // The paper's dual-rail premise (§II): the cache rail stays at or
        // above the core rail so the shared cache keeps serving the whole
        // cluster at speed while cores scale toward threshold. An inverted
        // ordering would mean level shifters step *down* into the cache —
        // the design the paper argues against.
        if self.cache_vdd < self.core_vdd - 1e-9 {
            report.push(Violation::error(
                "RAIL-ORDER",
                "cache rail is at or above the core rail",
                "ChipConfig.cache_vdd",
                format!(
                    "cache rail {} V is below core rail {} V",
                    self.cache_vdd, self.core_vdd
                ),
            ));
        }
        // Below the logic threshold the alpha-power delay diverges: cores
        // never switch and the simulation cannot make progress.
        if self.core_vdd <= CORE_LOGIC_VTH {
            report.push(Violation::error(
                "CFG-SUBTHRESHOLD",
                "core rail is above the logic threshold voltage",
                "ChipConfig.core_vdd",
                format!(
                    "core rail {} V does not exceed Vth = {CORE_LOGIC_VTH} V; fmax is zero",
                    self.core_vdd
                ),
            ));
        }
        // The cache arrays must actually switch at the cache rail:
        // an SRAM array biased at or below its (higher) threshold would
        // report infinite latency.
        if self.clusters > 0 && self.cores_per_cluster > 0 {
            let params = self.l1_params(self.l1d_geometry());
            if !params.read_latency_ps.is_finite() || !params.write_latency_ps.is_finite() {
                report.push(Violation::error(
                    "CFG-ARRAY-STALLED",
                    "cache arrays switch at the cache rail",
                    "ChipConfig.cache_vdd",
                    format!(
                        "{:?} array latency is not finite at {} V",
                        self.cache_tech, self.cache_vdd
                    ),
                ));
            }
        }
        if self.epoch_instructions == 0 {
            report.push(Violation::error(
                "CFG-EPOCH",
                "consolidation epoch length is positive",
                "ChipConfig.epoch_instructions",
                "epoch length is zero",
            ));
        }
        if self.instructions_per_thread == Some(0) {
            report.push(Violation::error(
                "CFG-BUDGET",
                "per-thread instruction budget is positive",
                "ChipConfig.instructions_per_thread",
                "budget override is zero",
            ));
        }
        // Dual-rail chips cross level shifters; zero delivery latency would
        // silently model them as free (§II-A budgets 2 cycles). Advisory:
        // the ablation sweeps this knob deliberately.
        if self.has_dual_rails() && self.delivery_ticks == 0 {
            report.push(Violation::warning(
                "LS-DELIVERY",
                "dual-rail requests pay a level-shifter delivery latency",
                "ChipConfig.delivery_ticks",
                "delivery latency is zero while rails differ (level shifters modelled free)",
            ));
        }
        self.check_faults(&mut report);
        report
    }

    /// Structural checks on the fault-injection configuration (code
    /// `CFG-FAULTS`).
    fn check_faults(&self, report: &mut Report) {
        let f = &self.faults;
        if !(0.0..1.0).contains(&f.write_ber) {
            report.push(Violation::error(
                "CFG-FAULTS",
                "fault rates are valid probabilities",
                "ChipConfig.faults.write_ber",
                format!("write BER {} is outside [0, 1)", f.write_ber),
            ));
        }
        if !f.retention_flip_rate.is_finite() || f.retention_flip_rate < 0.0 {
            report.push(Violation::error(
                "CFG-FAULTS",
                "fault rates are valid probabilities",
                "ChipConfig.faults.retention_flip_rate",
                format!(
                    "retention flip rate {} is not a finite non-negative rate",
                    f.retention_flip_rate
                ),
            ));
        }
        if !(0.0..=1.0).contains(&f.core_fault_rate) {
            report.push(Violation::error(
                "CFG-FAULTS",
                "fault rates are valid probabilities",
                "ChipConfig.faults.core_fault_rate",
                format!("core fault rate {} is outside [0, 1]", f.core_fault_rate),
            ));
        }
        if f.write_ber > 0.0 && f.retry_budget == 0 {
            report.push(Violation::error(
                "CFG-FAULTS",
                "write-verify-retry has a usable budget when writes can fail",
                "ChipConfig.faults.retry_budget",
                "retry budget is zero while write BER is nonzero",
            ));
        }
        if f.core_faults_enabled() && f.core_fault_threshold == 0 {
            report.push(Violation::error(
                "CFG-FAULTS",
                "decommission threshold is positive when core faults fire",
                "ChipConfig.faults.core_fault_threshold",
                "threshold zero would decommission healthy cores",
            ));
        }
        if let Some(idx) = f.seeded_bad_core {
            if idx >= self.total_cores() {
                report.push(Violation::error(
                    "CFG-FAULTS",
                    "the seeded bad core exists on the chip",
                    "ChipConfig.faults.seeded_bad_core",
                    format!("core index {idx} >= total cores {}", self.total_cores()),
                ));
            }
        }
        // Scrubbing without ECC can only refresh retention age — it
        // cannot see or repair flips. Legal (relaxed-retention refresh)
        // but usually a misconfiguration; advisory.
        if f.scrub && !f.ecc {
            report.push(Violation::warning(
                "CFG-FAULTS",
                "scrubbing can repair what it finds",
                "ChipConfig.faults.scrub",
                "scrub enabled without ECC: refresh-only, flips stay latent",
            ));
        }
    }

    /// Validates structural consistency; `Err` carries the full diagnostic
    /// report (all violations, not just the first).
    pub fn validate(&self) -> Result<(), Report> {
        self.check().into_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_config_is_valid() {
        let c = ChipConfig::nt_base();
        c.validate().unwrap();
        assert_eq!(c.total_cores(), 64);
    }

    #[test]
    fn shared_l1_scales_with_cluster_size() {
        let mut c = ChipConfig::nt_base();
        c.cores_per_cluster = 16;
        assert_eq!(c.l1d_geometry().capacity_bytes, kib(256));
        c.cores_per_cluster = 32;
        assert_eq!(c.l1d_geometry().capacity_bytes, kib(512));
        c.l1_org = L1Org::Private;
        assert_eq!(c.l1d_geometry().capacity_bytes, kib(16));
    }

    #[test]
    fn size_classes_match_table1() {
        assert_eq!(CacheSizeClass::Small.l2_bytes(), mib(8));
        assert_eq!(CacheSizeClass::Medium.l2_bytes(), mib(16));
        assert_eq!(CacheSizeClass::Large.l2_bytes(), mib(32));
        assert_eq!(CacheSizeClass::Medium.l3_bytes(), mib(48));
    }

    #[test]
    fn stt_l1_reads_in_one_tick_sram_in_two() {
        let stt = ChipConfig::nt_base();
        let p = stt.l1_params(stt.l1d_geometry());
        assert_eq!(stt.read_ticks(&p, true), 1);

        let mut sram = ChipConfig::nt_base();
        sram.cache_tech = MemTech::Sram;
        let p = sram.l1_params(sram.l1d_geometry());
        assert_eq!(sram.read_ticks(&p, true), 2);
    }

    #[test]
    fn dual_rail_detection() {
        let mut c = ChipConfig::nt_base();
        assert!(c.has_dual_rails());
        c.core_vdd = 1.0;
        assert!(!c.has_dual_rails());
    }

    #[test]
    fn stt_write_occupancy_is_long() {
        let c = ChipConfig::nt_base();
        let p = c.l1_params(c.l1d_geometry());
        // 5.2 ns at 0.4 ns/tick ⇒ 13 ticks.
        assert_eq!(c.write_ticks(&p), 14);
    }

    #[test]
    fn rejects_silly_configs() {
        let mut c = ChipConfig::nt_base();
        c.clusters = 0;
        assert!(c.validate().is_err());
        let mut c = ChipConfig::nt_base();
        c.core_vdd = 0.1;
        assert!(c.validate().is_err());
        let mut c = ChipConfig::nt_base();
        c.epoch_instructions = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_inverted_rails() {
        let mut c = ChipConfig::nt_base();
        c.core_vdd = 1.0;
        c.cache_vdd = 0.65;
        let report = c.check();
        assert!(report.violations.iter().any(|v| v.code == "RAIL-ORDER"));
        assert!(!report.is_clean());
    }

    #[test]
    fn rejects_subthreshold_core_rail() {
        let mut c = ChipConfig::nt_base();
        c.core_vdd = 0.30; // == CORE_LOGIC_VTH: in range, but fmax = 0.
        let report = c.check();
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.code == "CFG-SUBTHRESHOLD"),
            "{report}"
        );
    }

    #[test]
    fn rejects_stalled_sram_array() {
        let mut c = ChipConfig::nt_base();
        c.cache_tech = MemTech::Sram;
        c.cache_vdd = 0.5; // below SRAM_ARRAY_VTH = 0.577: infinite latency.
        c.core_vdd = 0.4;
        let report = c.check();
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.code == "CFG-ARRAY-STALLED"),
            "{report}"
        );
    }

    #[test]
    fn free_level_shifters_warn_but_pass() {
        let mut c = ChipConfig::nt_base();
        c.delivery_ticks = 0; // the ablation's knob
        let report = c.check();
        assert!(report.is_clean(), "{report}");
        assert!(report.violations.iter().any(|v| v.code == "LS-DELIVERY"));
    }

    #[test]
    fn rejects_bad_fault_configs() {
        let mut c = ChipConfig::nt_base();
        c.faults.write_ber = 1.5;
        assert!(c.check().violations.iter().any(|v| v.code == "CFG-FAULTS"));

        let mut c = ChipConfig::nt_base();
        c.faults.write_ber = 1e-5;
        c.faults.retry_budget = 0;
        assert!(c.validate().is_err());

        let mut c = ChipConfig::nt_base();
        c.faults.seeded_bad_core = Some(64); // one past the last core
        assert!(c.validate().is_err());

        let mut c = ChipConfig::nt_base();
        c.faults.core_fault_rate = 0.1;
        c.faults.core_fault_threshold = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn scrub_without_ecc_warns_but_passes() {
        let mut c = ChipConfig::nt_base();
        c.faults.scrub = true;
        let report = c.check();
        assert!(report.is_clean(), "{report}");
        assert!(report.violations.iter().any(|v| v.code == "CFG-FAULTS"));
    }

    #[test]
    fn check_collects_multiple_violations() {
        let mut c = ChipConfig::nt_base();
        c.clusters = 0;
        c.epoch_instructions = 0;
        c.core_vdd = 2.0;
        let report = c.check();
        assert!(report.error_count() >= 3, "{report}");
    }
}
