//! Timing and cost constants of the simulated machine.
//!
//! Everything here is a *documented modelling choice*; the paper either
//! states the value (level-shifter delay, wake stall, consolidation
//! interval) or the value is a conventional figure from the architecture
//! literature. All times are in ticks (0.4 ns cache cycles) unless the name
//! says core cycles.

/// The cache reference clock period: 0.4 ns = 2.5 GHz (§II).
pub const CACHE_PERIOD_PS: f64 = 400.0;

/// Ticks a request spends in level shifters + wires from core to shared
/// cache (§II-A: "2 fast cache cycles (0.8 ns)").
pub const DELIVERY_TICKS: u64 = 2;

/// Store-buffer depth per physical core. Stores retire into the buffer and
/// drain in the background; the core stalls only when it is full.
pub const STORE_BUFFER_DEPTH: usize = 8;

/// Branch-mispredict flush penalty in core cycles (shallow dual-issue
/// pipeline at near-threshold frequencies).
pub const MISPREDICT_PENALTY_CORE_CYCLES: u64 = 6;

/// Minimum interval between L2 accepts (pipelined array), ticks.
pub const L2_ACCEPT_INTERVAL_TICKS: u64 = 2;
/// Minimum interval between L3 accepts, ticks.
pub const L3_ACCEPT_INTERVAL_TICKS: u64 = 4;

/// Remote L2 tag lookup during a cluster-to-cluster transfer, ticks
/// (the mesh traversal itself is modelled by `respin-noc`).
pub const REMOTE_LOOKUP_TICKS: u64 = 6;

/// Main-memory access latency, ticks (100 ns).
pub const MEM_LATENCY_TICKS: u64 = 250;
/// Off-chip access energy (row + I/O), pJ. Tracked separately from chip
/// energy — the paper's power/energy figures are CMP-only.
pub const MEM_ACCESS_ENERGY_PJ: f64 = 200.0;

// --- Coherence costs (private-cache configurations) -----------------------

/// Latency added to a write that must invalidate intra-cluster sharers.
pub const INTRA_INVALIDATE_TICKS: u64 = 8;
/// Latency of fetching a line owned Modified by a sibling L1.
pub const INTRA_REMOTE_FETCH_TICKS: u64 = 12;
/// Latency added for inter-cluster invalidations (via the L3 directory).
pub const INTER_INVALIDATE_TICKS: u64 = 24;
/// Latency of fetching a line owned Modified by a remote cluster's L2.
pub const INTER_REMOTE_FETCH_TICKS: u64 = 30;
/// Energy per intra-cluster coherence message, pJ.
pub const INTRA_COHERENCE_MSG_PJ: f64 = 1.5;
/// Energy per inter-cluster coherence message, pJ.
pub const INTER_COHERENCE_MSG_PJ: f64 = 4.0;

// --- Consolidation machinery (§III) ---------------------------------------

/// Hardware context-switch cost, core cycles. The §III mechanism keeps the
/// stacked virtual cores' register state in banks on the hosting core, so
/// a switch is a bank select plus a short pipeline refill — a few cycles,
/// like fine-grained multithreading. (Losing state to *migration* across
/// cores is the expensive case, charged separately below.)
pub const HW_CTX_SWITCH_CORE_CYCLES: u64 = 4;
/// Hardware time-slice when several virtual cores share a physical core,
/// core cycles.
pub const HW_SLICE_CORE_CYCLES: u64 = 1_000;
/// OS context-switch cost, core cycles (≈ 5 µs at 500 MHz).
pub const OS_CTX_SWITCH_CORE_CYCLES: u64 = 2_500;
/// OS scheduling quantum, core cycles. The paper's OS interval is 1 ms
/// (500 000 cycles at 500 MHz); our synthetic runs are ~100× shorter than
/// the reference-input benchmarks, so the quantum is scaled to 0.1 ms to
/// keep OS switching ~50× coarser than the hardware mechanism while still
/// letting it occur within a run.
pub const OS_SLICE_CORE_CYCLES: u64 = 50_000;

/// Stall after power-gating wake-up for voltage stabilisation, core cycles
/// (§III-D: "10–30 ns or 5–15 cycles for a core running at 500 MHz").
pub const POWER_ON_STALL_CORE_CYCLES: u64 = 15;
/// In-flight drain before a migration, core cycles.
pub const MIGRATION_DRAIN_CORE_CYCLES: u64 = 20;
/// Register file + PC transfer to the target core, core cycles.
pub const MIGRATION_TRANSFER_CORE_CYCLES: u64 = 50;
/// Warm-up penalty after migration for lost predictor/pipeline state, core
/// cycles (§III-D: "tens of cycles to rebuild those states").
pub const MIGRATION_COLD_STATE_CORE_CYCLES: u64 = 40;

/// The paper's consolidation interval: 160 K instructions (per cluster).
pub const EPOCH_INSTRUCTIONS: u64 = 160_000;

/// Recovery stall after a transient core fault, core cycles: pipeline
/// flush plus architectural-state repair from the checkpoint, an order of
/// magnitude above a mispredict but far below a migration round-trip.
pub const CORE_FAULT_RECOVERY_CORE_CYCLES: u64 = 100;

// --- Synchronisation -------------------------------------------------------

/// Distance between lock lines in the shared segment, bytes.
pub const LOCK_LINE_STRIDE: u64 = 128;
/// Base address of the lock/barrier region (top of the shared segment).
pub const SYNC_REGION_BASE: u64 = (1 << 46) + (1 << 30);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_matches_level_shifter_model() {
        let ls = respin_power::LevelShifter::default();
        assert_eq!(
            ls.delivery_cache_cycles(50.0, CACHE_PERIOD_PS) as u64,
            DELIVERY_TICKS
        );
    }

    #[test]
    fn os_quantum_much_coarser_than_hw_slice() {
        let (os, hw) = (OS_SLICE_CORE_CYCLES, HW_SLICE_CORE_CYCLES);
        assert!(os >= 50 * hw, "os {os} vs hw {hw}");
    }

    #[test]
    fn sync_region_is_inside_shared_segment() {
        assert!(respin_workloads::ops::address_space::is_shared(
            SYNC_REGION_BASE
        ));
    }
}
