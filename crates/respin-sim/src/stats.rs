//! Simulation statistics: the raw material for every figure in §V.

use serde::{Deserialize, Serialize};

/// Shared-L1 controller statistics (Figures 10 and 11).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SharedL1Stats {
    /// `arrivals[k]` counts cache cycles in which exactly `k` requests
    /// arrived; the last bin is "that many or more" (Figure 10 uses 0–4+).
    pub arrivals: [u64; 5],
    /// Total cache cycles observed.
    pub cycles: u64,
    /// Read-hit requests serviced within 1, 2, or ≥3 core cycles
    /// (Figure 11).
    pub read_hit_core_cycles: [u64; 3],
    /// Read requests that received a half-miss response (§II-A).
    pub half_misses: u64,
    /// Total read requests.
    pub reads: u64,
    /// Total write-port operations (stores + line fills).
    pub writes: u64,
    /// Read misses forwarded down the hierarchy.
    pub read_misses: u64,
}

impl SharedL1Stats {
    /// Records `n` request arrivals in one cache cycle.
    pub fn record_arrivals(&mut self, n: usize) {
        self.arrivals[n.min(4)] += 1;
        self.cycles += 1;
    }

    /// Records `n` consecutive cache cycles with zero arrivals in one
    /// call. Batched equivalent of `n` × [`record_arrivals`]`(0)` — used
    /// by the event-driven fast path when the controller provably has no
    /// request arriving in the skipped window.
    ///
    /// [`record_arrivals`]: SharedL1Stats::record_arrivals
    pub fn record_idle_cycles(&mut self, n: u64) {
        self.arrivals[0] += n;
        self.cycles += n;
    }

    /// Records a read hit serviced in `core_cycles` core cycles.
    pub fn record_read_hit(&mut self, core_cycles: u64) {
        let bin = (core_cycles.max(1) - 1).min(2) as usize;
        self.read_hit_core_cycles[bin] += 1;
    }

    /// Fraction of cache cycles with exactly `k` arrivals (k = 4 means 4+).
    pub fn arrival_fraction(&self, k: usize) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.arrivals[k.min(4)] as f64 / self.cycles as f64
    }

    /// Fraction of read hits serviced within one core cycle.
    pub fn one_cycle_hit_fraction(&self) -> f64 {
        let total: u64 = self.read_hit_core_cycles.iter().sum();
        if total == 0 {
            return 1.0;
        }
        self.read_hit_core_cycles[0] as f64 / total as f64
    }

    /// Half-miss fraction over all reads.
    pub fn half_miss_fraction(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        self.half_misses as f64 / self.reads as f64
    }

    /// Mean requests arriving per cache cycle at the arbiter, computed
    /// from the Figure 10 histogram (the 4+ bin counts as 4, so this is
    /// a slight underestimate under heavy contention). 0.0 when no
    /// cycles were observed.
    pub fn arbiter_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .arrivals
            .iter()
            .enumerate()
            .map(|(k, &n)| k as u64 * n)
            .sum();
        weighted as f64 / self.cycles as f64
    }

    /// The counters accumulated since `earlier` was captured — `earlier`
    /// must be a previous snapshot of this same monotonically-growing
    /// stats block (an epoch-start copy).
    pub fn delta_since(&self, earlier: &SharedL1Stats) -> SharedL1Stats {
        let mut d = self.clone();
        for (a, b) in d.arrivals.iter_mut().zip(earlier.arrivals) {
            *a -= b;
        }
        d.cycles -= earlier.cycles;
        for (a, b) in d
            .read_hit_core_cycles
            .iter_mut()
            .zip(earlier.read_hit_core_cycles)
        {
            *a -= b;
        }
        d.half_misses -= earlier.half_misses;
        d.reads -= earlier.reads;
        d.writes -= earlier.writes;
        d.read_misses -= earlier.read_misses;
        d
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &SharedL1Stats) {
        for (a, b) in self.arrivals.iter_mut().zip(other.arrivals) {
            *a += b;
        }
        self.cycles += other.cycles;
        for (a, b) in self
            .read_hit_core_cycles
            .iter_mut()
            .zip(other.read_hit_core_cycles)
        {
            *a += b;
        }
        self.half_misses += other.half_misses;
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_misses += other.read_misses;
    }
}

/// Hit/miss counters for one conventional cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LevelStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl LevelStats {
    /// Hit fraction (1.0 when never accessed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Miss fraction (0.0 when never accessed).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Counters accumulated since the `earlier` snapshot of this block.
    pub fn delta_since(&self, earlier: &LevelStats) -> LevelStats {
        LevelStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}

/// Whole-chip statistics snapshot.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChipStats {
    /// Ticks simulated (cache cycles).
    pub ticks: u64,
    /// Retired instructions per cluster.
    pub cluster_instructions: Vec<u64>,
    /// Shared-L1D stats per cluster (empty for private configurations).
    pub shared_l1d: Vec<SharedL1Stats>,
    /// Private L1D aggregate per cluster.
    pub private_l1d: Vec<LevelStats>,
    /// L2 stats per cluster.
    pub l2: Vec<LevelStats>,
    /// L3 stats.
    pub l3: LevelStats,
    /// Coherence messages sent (invalidations, remote fetches).
    pub coherence_messages: u64,
    /// Migrations performed by consolidation.
    pub migrations: u64,
    /// Context switches performed.
    pub context_switches: u64,
    /// Consolidation trace: (tick, total active cores) after each change.
    pub consolidation_trace: Vec<(u64, usize)>,
    /// Consolidation epochs completed in the measured window.
    pub epochs: u64,
    /// Per-cluster sum over epochs of (active cores × epoch instructions),
    /// for the Figure 14 average; plus observed min/max active cores.
    pub active_core_samples: Vec<(u64, usize, usize)>,
    /// Aggregate fault-injection counters (all zero when faults are off).
    pub faults: respin_faults::FaultSummary,
    /// First fault events in injection order (bounded; see
    /// `respin_faults::stats::TRACE_CAP`).
    pub fault_trace: Vec<respin_faults::FaultEvent>,
}

impl ChipStats {
    /// Creates zeroed stats for `clusters` clusters.
    pub fn new(clusters: usize) -> Self {
        Self {
            cluster_instructions: vec![0; clusters],
            shared_l1d: vec![SharedL1Stats::default(); clusters],
            private_l1d: vec![LevelStats::default(); clusters],
            l2: vec![LevelStats::default(); clusters],
            active_core_samples: vec![(0, usize::MAX, 0); clusters],
            ..Default::default()
        }
    }

    /// Total retired instructions.
    pub fn total_instructions(&self) -> u64 {
        self.cluster_instructions.iter().sum()
    }

    /// Shared-L1D stats merged over clusters.
    pub fn shared_l1d_merged(&self) -> SharedL1Stats {
        let mut out = SharedL1Stats::default();
        for s in &self.shared_l1d {
            out.merge(s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_binning_clamps_at_four() {
        let mut s = SharedL1Stats::default();
        s.record_arrivals(0);
        s.record_arrivals(2);
        s.record_arrivals(9);
        assert_eq!(s.arrivals, [1, 0, 1, 0, 1]);
        assert_eq!(s.cycles, 3);
        assert!((s.arrival_fraction(0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn batched_idle_cycles_match_repeated_zero_arrivals() {
        let mut naive = SharedL1Stats::default();
        for _ in 0..7 {
            naive.record_arrivals(0);
        }
        let mut batched = SharedL1Stats::default();
        batched.record_idle_cycles(7);
        assert_eq!(naive, batched);
    }

    #[test]
    fn hit_latency_binning() {
        let mut s = SharedL1Stats::default();
        s.record_read_hit(1);
        s.record_read_hit(1);
        s.record_read_hit(2);
        s.record_read_hit(7);
        assert_eq!(s.read_hit_core_cycles, [2, 1, 1]);
        assert!((s.one_cycle_hit_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = SharedL1Stats::default();
        a.record_arrivals(1);
        a.reads = 10;
        a.half_misses = 1;
        let mut b = SharedL1Stats::default();
        b.record_arrivals(1);
        b.reads = 30;
        b.half_misses = 1;
        a.merge(&b);
        assert_eq!(a.arrivals[1], 2);
        assert_eq!(a.reads, 40);
        assert!((a.half_miss_fraction() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn level_stats_hit_rate() {
        let s = LevelStats { hits: 3, misses: 1 };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(LevelStats::default().hit_rate(), 1.0);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
        assert_eq!(LevelStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn occupancy_weights_arrivals() {
        let mut s = SharedL1Stats::default();
        s.record_arrivals(0);
        s.record_arrivals(2);
        s.record_arrivals(9); // clamps into the 4+ bin
        assert!((s.arbiter_occupancy() - 2.0).abs() < 1e-12);
        assert_eq!(SharedL1Stats::default().arbiter_occupancy(), 0.0);
    }

    #[test]
    fn deltas_subtract_snapshots() {
        let mut start = SharedL1Stats::default();
        start.record_arrivals(1);
        start.reads = 10;
        let mut end = start.clone();
        end.record_arrivals(2);
        end.reads = 25;
        end.half_misses = 3;
        let d = end.delta_since(&start);
        assert_eq!(d.cycles, 1);
        assert_eq!(d.arrivals, [0, 0, 1, 0, 0]);
        assert_eq!(d.reads, 15);
        assert_eq!(d.half_misses, 3);

        let a = LevelStats { hits: 5, misses: 2 };
        let b = LevelStats { hits: 9, misses: 6 };
        assert_eq!(b.delta_since(&a), LevelStats { hits: 4, misses: 4 });
    }

    #[test]
    fn chip_stats_shapes() {
        let s = ChipStats::new(4);
        assert_eq!(s.cluster_instructions.len(), 4);
        assert_eq!(s.shared_l1d.len(), 4);
        assert_eq!(s.total_instructions(), 0);
    }
}
