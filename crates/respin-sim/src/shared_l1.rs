//! The cluster-shared L1 cache controller (§II-A of the paper).
//!
//! One L1 (instruction or data) is time-multiplexed among all cores of a
//! cluster. The controller keeps, per core, a *request register* (at most
//! one outstanding read — loads are blocking) and a *priority register*
//! (the number of cache cycles left before the response deadline). Each
//! cache cycle the controller:
//!
//! 1. counts arrivals (reads, stores, line fills — Figure 10's histogram),
//! 2. services **one read** through the read port, choosing the pending
//!    request that expires soonest (ties rotate deterministically with the
//!    tick, standing in for the paper's random pick),
//! 3. services **one write** (store drain or line fill) through the write
//!    port in FIFO order.
//!
//! A read that cannot be serviced before its deadline receives a
//! **half-miss**: the core is told to expect the data one core cycle later
//! and the request is rescheduled at top priority (its new deadline is the
//! next core-cycle boundary), exactly the Figure 3 behaviour.

use crate::cache::{CacheArray, LineState};
use crate::stats::SharedL1Stats;
use respin_faults::{ArrayFaults, FaultStats, ReadOutcome, ScrubAction};
use respin_power::{ArrayParams, CacheGeometry};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A pending read in a core's request register.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct PendingRead {
    addr: u64,
    /// Core-cycle boundary the request was issued at.
    issue_tick: u64,
    /// The issuing core's period in ticks.
    mult: u64,
    /// Tick the request becomes visible to the controller.
    arrival_tick: u64,
}

impl PendingRead {
    /// The deadline currently in force: the first core-cycle boundary that
    /// can still be met from tick `now`. Requests that slipped past their
    /// original deadline escalate to the next boundary (the "reinitialised
    /// priority register").
    fn effective_deadline(&self, now: u64) -> u64 {
        let first = self.issue_tick + self.mult;
        if now < first {
            return first;
        }
        let k = (now - self.issue_tick) / self.mult + 1;
        self.issue_tick + k * self.mult
    }
}

/// A queued write-port operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct PendingWrite {
    addr: u64,
    arrival_tick: u64,
    kind: WriteKind,
}

/// What a write-port operation is. Stores carry their issuing core in the
/// variant itself, so a store without a core is unrepresentable (fills
/// have no completion consumer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum WriteKind {
    /// Store drain from a core's store buffer.
    Store {
        /// Cluster-local core slot that issued the store.
        core: usize,
    },
    /// Line fill, installed in the given state (set by the inter-cluster
    /// directory outcome, or Modified for write-miss fills).
    Fill(LineState),
}

/// Events the controller hands back to the chip each tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum L1Event {
    /// A read hit completed; the core may resume at `completion_tick`.
    ReadDone {
        /// Requesting core slot (cluster-local).
        core: usize,
        /// Tick at which the core's load completes (a core-cycle boundary).
        completion_tick: u64,
    },
    /// A read missed; the chip must fetch from L2 and call
    /// [`SharedL1::enqueue_fill`] + complete the core itself.
    ReadMiss {
        /// Requesting core slot.
        core: usize,
        /// Block-aligned miss address.
        addr: u64,
        /// Core period in ticks (for boundary alignment of the completion).
        mult: u64,
        /// Core-cycle boundary the request was issued at.
        issue_tick: u64,
    },
    /// A store finished occupying its buffer slot.
    StoreDrained {
        /// Issuing core slot.
        core: usize,
        /// Tick the write completes in the array.
        completion_tick: u64,
        /// The line was not already Modified — the chip must confirm or
        /// obtain inter-cluster ownership (upgrade + invalidations).
        needs_ownership: bool,
        /// Block-aligned address (for the inter-cluster directory).
        addr: u64,
    },
    /// A store missed: the chip fetches the line from L2, then re-enqueues
    /// a dirty fill.
    StoreMiss {
        /// Issuing core slot.
        core: usize,
        /// Block-aligned address.
        addr: u64,
    },
    /// A dirty victim must be written back to L2.
    Writeback {
        /// Block-aligned victim address.
        addr: u64,
    },
}

/// The shared L1 controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedL1 {
    array: CacheArray,
    reads: Vec<Option<PendingRead>>,
    writes: VecDeque<PendingWrite>,
    stats: SharedL1Stats,
    /// Ticks a read takes to produce data (1 for the rounded STT-RAM array,
    /// 2 for nominal-voltage SRAM).
    read_ticks: u64,
    /// Ticks a write occupies before its store-buffer slot frees.
    write_ticks: u64,
    /// Arrivals observed for the tick currently being assembled.
    arrivals_this_tick: u32,
    /// Per-access energies, pJ.
    read_energy_pj: f64,
    write_energy_pj: f64,
    /// Level-shifter energy per request, pJ (0 on single-rail chips).
    shifter_energy_pj: f64,
    /// Request delivery latency (level shifters + wires), ticks.
    delivery_ticks: u64,
    /// Accumulated dynamic energy since last drain, pJ.
    pub(crate) dyn_energy_pj: f64,
    /// Accumulated interconnect (shifter) energy since last drain, pJ.
    pub(crate) shifter_acc_pj: f64,
    /// STT-RAM fault model for this array; `None` when fault injection is
    /// disabled (the guarded hooks then cost nothing and change nothing).
    /// Boxed: the fault state is cold and would otherwise dominate the
    /// controller's footprint inside `L1System`.
    faults: Option<Box<ArrayFaults>>,
}

impl SharedL1 {
    /// Builds the controller for `cores` cores (fault injection off; see
    /// [`SharedL1::with_faults`]).
    pub fn new(
        geometry: CacheGeometry,
        params: &ArrayParams,
        read_ticks: u64,
        write_ticks: u64,
        cores: usize,
        shifter_energy_pj: f64,
        delivery_ticks: u64,
    ) -> Self {
        Self {
            array: CacheArray::new(geometry),
            reads: vec![None; cores],
            writes: VecDeque::new(),
            stats: SharedL1Stats::default(),
            read_ticks,
            write_ticks,
            arrivals_this_tick: 0,
            read_energy_pj: params.read_energy_pj,
            write_energy_pj: params.write_energy_pj,
            shifter_energy_pj,
            delivery_ticks,
            dyn_energy_pj: 0.0,
            shifter_acc_pj: 0.0,
            faults: None,
        }
    }

    /// Attaches (or detaches) the STT-RAM fault model for this array.
    #[must_use]
    pub fn with_faults(mut self, faults: Option<ArrayFaults>) -> Self {
        self.faults = faults.map(Box::new);
        self
    }

    /// True when `core`'s request register is free.
    pub fn can_accept_read(&self, core: usize) -> bool {
        self.reads[core].is_none()
    }

    /// Core `core` (period `mult` ticks) issues a read of `addr` at the
    /// core-cycle boundary `issue_tick`. The request reaches the controller
    /// after the level-shifter/wire delivery delay.
    pub fn issue_read(&mut self, core: usize, addr: u64, issue_tick: u64, mult: u64) {
        debug_assert!(self.reads[core].is_none(), "request register busy");
        self.reads[core] = Some(PendingRead {
            addr: self.array.block_addr(addr),
            issue_tick,
            mult,
            arrival_tick: issue_tick + self.delivery_ticks,
        });
        self.stats.reads += 1;
        self.shifter_acc_pj += self.shifter_energy_pj;
    }

    /// Core `core` drains a store of `addr`; it reaches the controller at
    /// `issue_tick + delivery`.
    pub fn issue_store(&mut self, core: usize, addr: u64, issue_tick: u64) {
        self.writes.push_back(PendingWrite {
            addr: self.array.block_addr(addr),
            arrival_tick: issue_tick + self.delivery_ticks,
            kind: WriteKind::Store { core },
        });
        self.stats.writes += 1;
        self.shifter_acc_pj += self.shifter_energy_pj;
    }

    /// The chip enqueues a line fill (after an L2 round-trip) that becomes
    /// serviceable at `ready_tick`, installed in `state` (from the
    /// inter-cluster directory: Shared when other clusters hold copies).
    pub fn enqueue_fill(&mut self, addr: u64, ready_tick: u64, state: LineState) {
        self.writes.push_back(PendingWrite {
            addr,
            arrival_tick: ready_tick,
            kind: WriteKind::Fill(state),
        });
        self.stats.writes += 1;
    }

    /// Earliest tick at which this controller has work: the minimum
    /// `arrival_tick` over every pending read and write. `None` when both
    /// ports are idle. A value `<= now` means a backlog is still
    /// draining (the ports service one operation per cycle), so the
    /// controller is busy *every* cycle until the queues catch up.
    ///
    /// This is the controller's contribution to the chip's next-wakeup
    /// computation: on any tick strictly before this one, [`tick`] would
    /// only record a zero-arrival cycle (see
    /// [`SharedL1Stats::record_idle_cycles`]).
    ///
    /// [`tick`]: SharedL1::tick
    pub fn next_work_tick(&self) -> Option<u64> {
        let reads = self.reads.iter().flatten().map(|r| r.arrival_tick);
        let writes = self.writes.iter().map(|w| w.arrival_tick);
        reads.chain(writes).min()
    }

    /// [`next_work_tick`](SharedL1::next_work_tick) for a caller that
    /// clamps the answer to `now` anyway (the chip's next-wakeup fold):
    /// returns `Some(now)` as soon as any arrival at or before `now` is
    /// seen, instead of scanning the rest for an exact minimum the
    /// clamp would discard.
    pub fn next_work_tick_from(&self, now: u64) -> Option<u64> {
        let reads = self.reads.iter().flatten().map(|r| r.arrival_tick);
        let writes = self.writes.iter().map(|w| w.arrival_tick);
        let mut min = u64::MAX;
        for t in reads.chain(writes) {
            if t <= now {
                return Some(now);
            }
            min = min.min(t);
        }
        if min == u64::MAX {
            None
        } else {
            Some(min)
        }
    }

    /// Batched equivalent of `n` calls to [`SharedL1::tick`] on cycles
    /// where no request is pending or arriving: only the Figure 10
    /// arrival histogram advances. The caller (the chip's fast path)
    /// guarantees the skipped window ends strictly before
    /// [`next_work_tick`](SharedL1::next_work_tick).
    pub fn note_idle_ticks(&mut self, n: u64) {
        self.stats.record_idle_cycles(n);
    }

    /// Advances the controller by one cache cycle, appending events to
    /// `events`.
    pub fn tick(&mut self, now: u64, events: &mut Vec<L1Event>) {
        // One fused pass per port queue does the arrival accounting
        // (Figure 10), the read-port pick, and the write-port FIFO
        // position — the three scans the pre-fusion code ran
        // separately. All three read the same pre-service state, so
        // fusing them is exact.
        let mut arrivals = 0usize;

        // Read port: pick the pending request that expires soonest.
        let mut best: Option<(u64, usize, usize)> = None; // (deadline, rot, slot)
        for (slot, r) in self.reads.iter().enumerate() {
            if let Some(r) = r {
                if r.arrival_tick > now {
                    continue;
                }
                if r.arrival_tick == now {
                    arrivals += 1;
                }
                // Deterministic tie-break standing in for the paper's
                // random choice: rotate priority with the tick.
                let rot = (slot + now as usize) % self.reads.len();
                let key = r.effective_deadline(now);
                if best.is_none_or(|(bk, brot, _)| (key, rot) < (bk, brot)) {
                    best = Some((key, rot, slot));
                }
            }
        }

        // Write port: FIFO among arrived operations.
        let mut write_pos: Option<usize> = None;
        for (i, w) in self.writes.iter().enumerate() {
            if w.arrival_tick > now {
                continue;
            }
            if w.arrival_tick == now {
                arrivals += 1;
            }
            if write_pos.is_none() {
                write_pos = Some(i);
            }
        }
        self.stats.record_arrivals(arrivals);

        if let Some((_, _, slot)) = best {
            let req = self.reads[slot].take().expect("slot checked");
            self.dyn_energy_pj += self.read_energy_pj;
            match self.array.touch(req.addr) {
                Some(_) => {
                    // Retention decay + ECC on the data read out of the
                    // array (no-op when fault injection is off).
                    let fault = self
                        .faults
                        .as_mut()
                        .map_or(ReadOutcome::Clean, |f| f.on_read(req.addr, now));
                    if fault == ReadOutcome::Refetch {
                        // SECDED detected an uncorrectable error: the
                        // line is dead. Drop it and refetch via the
                        // ordinary miss path.
                        self.array.invalidate(req.addr);
                        self.stats.read_misses += 1;
                        events.push(L1Event::ReadMiss {
                            core: slot,
                            addr: req.addr,
                            mult: req.mult,
                            issue_tick: req.issue_tick,
                        });
                    } else {
                        if fault == ReadOutcome::Corrected {
                            // The corrected line is written back through
                            // the (pipelined) write port: energy only.
                            self.charge_recovery(self.write_energy_pj);
                        }
                        // Data ready at now + read_ticks - 1 (end of
                        // tick); the core consumes it at its next cycle
                        // boundary.
                        let data_ready = now + self.read_ticks - 1;
                        let k = (data_ready - req.issue_tick) / req.mult + 1;
                        let completion = req.issue_tick + k * req.mult;
                        self.stats.record_read_hit(k);
                        if k > 1 {
                            self.stats.half_misses += 1;
                        }
                        events.push(L1Event::ReadDone {
                            core: slot,
                            completion_tick: completion,
                        });
                    }
                }
                None => {
                    self.stats.read_misses += 1;
                    events.push(L1Event::ReadMiss {
                        core: slot,
                        addr: req.addr,
                        mult: req.mult,
                        issue_tick: req.issue_tick,
                    });
                }
            }
        }
        // Requests that survive past a deadline without service are counted
        // as half-misses when finally serviced (the 2-cycle bucket of the
        // service histogram); `effective_deadline` already escalates them
        // to the next core-cycle boundary, the paper's re-initialised
        // priority register.

        // Service the write port (position found in the fused scan; the
        // read path above never touches the write queue).
        if let Some(pos) = write_pos {
            let w = self.writes.remove(pos).expect("position valid");
            self.dyn_energy_pj += self.write_energy_pj;
            match w.kind {
                WriteKind::Store { core } => {
                    let prior = self.array.touch(w.addr);
                    if let Some(state) = prior {
                        self.array.set_state(w.addr, LineState::Modified);
                        // Write-verify-retry: each extra attempt occupies
                        // the write port for another write latency, so
                        // the store-buffer slot frees that much later.
                        let retries = self.fault_write(w.addr, now);
                        events.push(L1Event::StoreDrained {
                            core,
                            completion_tick: now + self.write_ticks * (1 + u64::from(retries)),
                            needs_ownership: state != LineState::Modified,
                            addr: w.addr,
                        });
                    } else {
                        events.push(L1Event::StoreMiss { core, addr: w.addr });
                    }
                }
                WriteKind::Fill(state) => {
                    if let Some(ev) = self.array.fill(w.addr, state) {
                        if let Some(f) = self.faults.as_mut() {
                            f.on_invalidate(ev.addr);
                        }
                        if ev.dirty {
                            events.push(L1Event::Writeback { addr: ev.addr });
                        }
                    }
                    // Fill retries are pipelined behind the port (no
                    // consumer waits on a fill): charge energy only.
                    self.fault_write(w.addr, now);
                }
            }
        }
    }

    /// Runs the write-verify-retry model for a write landing at `now`;
    /// returns the retry count. Retry energy is charged to the array's
    /// dynamic energy (and tracked as recovery energy).
    fn fault_write(&mut self, addr: u64, now: u64) -> u32 {
        let Some(f) = self.faults.as_mut() else {
            return 0;
        };
        let out = f.on_write(addr, now);
        if out.retries > 0 {
            let pj = self.write_energy_pj * f64::from(out.retries);
            self.dyn_energy_pj += pj;
            f.stats.summary.recovery_energy_pj += pj;
        }
        out.retries
    }

    /// Charges `pj` of recovery energy (ECC rewrite, scrub traffic) to
    /// the array's dynamic energy.
    fn charge_recovery(&mut self, pj: f64) {
        self.dyn_energy_pj += pj;
        if let Some(f) = self.faults.as_mut() {
            f.stats.summary.recovery_energy_pj += pj;
        }
    }

    /// Epoch-boundary scrub: walks every resident line, refreshing
    /// retention age, rewriting ECC-correctable lines, and dropping
    /// detectably-dead ones. Returns the number of lines visited. No-op
    /// unless fault injection with scrubbing is enabled.
    ///
    /// Allocates a fresh walk buffer per call; hot callers (the chip's
    /// epoch maintenance) should use [`scrub_with`](SharedL1::scrub_with)
    /// and lend a persistent scratch buffer instead.
    pub fn scrub(&mut self, now: u64) -> u64 {
        let mut scratch = Vec::new();
        self.scrub_with(now, &mut scratch)
    }

    /// [`scrub`](SharedL1::scrub) with a caller-provided scratch buffer
    /// for the resident-line walk (the walk must be snapshotted: scrub
    /// actions invalidate lines mid-iteration). `scratch` must be empty
    /// on entry and is left empty on return.
    pub fn scrub_with(&mut self, now: u64, scratch: &mut Vec<(u64, LineState)>) -> u64 {
        debug_assert!(scratch.is_empty(), "scrub scratch leaked between calls");
        if self.faults.as_ref().is_none_or(|f| !f.config().scrub) {
            return 0;
        }
        scratch.extend(self.array.resident_addrs());
        let mut visited = 0u64;
        for (addr, state) in scratch.drain(..) {
            // One array read per scrubbed line.
            self.charge_recovery(self.read_energy_pj);
            let action = match self.faults.as_mut() {
                Some(f) => f.scrub_line(addr, state.is_dirty(), now),
                None => break,
            };
            match action {
                ScrubAction::Refreshed => {}
                ScrubAction::Rewritten => self.charge_recovery(self.write_energy_pj),
                ScrubAction::Dropped { .. } => {
                    self.array.invalidate(addr);
                }
            }
            visited += 1;
        }
        visited
    }

    /// Fault counters and trace, when fault injection is enabled.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(|f| &f.stats)
    }

    /// Probes without side effects (used by the fill path to avoid
    /// re-fetching resident lines).
    pub fn probe(&self, addr: u64) -> Option<LineState> {
        self.array.probe(addr)
    }

    /// Invalidates a line (inter-cluster coherence). Returns its state.
    pub fn invalidate(&mut self, addr: u64) -> Option<LineState> {
        if let Some(f) = self.faults.as_mut() {
            f.on_invalidate(addr);
        }
        self.array.invalidate(addr)
    }

    /// Downgrades a line to Shared if present (a remote cluster read it).
    pub fn downgrade(&mut self, addr: u64) {
        if self.array.probe(addr).is_some() {
            self.array.set_state(addr, LineState::Shared);
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SharedL1Stats {
        &self.stats
    }

    /// Zeroes statistics and energy accumulators (measurement warm-up).
    /// Fault *state* (line health) persists — only its counters reset.
    pub fn reset_measurements(&mut self) {
        self.stats = SharedL1Stats::default();
        self.dyn_energy_pj = 0.0;
        self.shifter_acc_pj = 0.0;
        if let Some(f) = self.faults.as_mut() {
            f.reset_measurements();
        }
    }

    /// Write-latency in ticks (for store-buffer completion modelling).
    pub fn write_ticks(&self) -> u64 {
        self.write_ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respin_power::{array_params, CacheGeometry, MemTech};

    fn controller(cores: usize) -> SharedL1 {
        let g = CacheGeometry::new(256 * 1024, 32, 4);
        let p = array_params(MemTech::SttRam, g, 1.0);
        SharedL1::new(g, &p, 1, 14, cores, 0.6, 2)
    }

    fn faulty_controller(cores: usize, cfg: respin_faults::FaultConfig) -> SharedL1 {
        let g = CacheGeometry::new(256 * 1024, 32, 4);
        let p = array_params(MemTech::SttRam, g, 1.0);
        let faults = ArrayFaults::new(cfg, 42, 0, g.block_bytes * 8);
        SharedL1::new(g, &p, 1, 14, cores, 0.6, 2).with_faults(Some(faults))
    }

    fn run_tick(c: &mut SharedL1, now: u64) -> Vec<L1Event> {
        let mut ev = Vec::new();
        c.tick(now, &mut ev);
        ev
    }

    /// Warm a line into the array via the fill path.
    fn warm(c: &mut SharedL1, addr: u64) {
        c.enqueue_fill(addr, 0, LineState::Exclusive);
        run_tick(c, 0);
    }

    #[test]
    fn next_work_tick_tracks_pending_arrivals() {
        let mut c = controller(4);
        assert_eq!(c.next_work_tick(), None);
        // delivery_ticks = 1 for this geometry/mult (see constructor).
        c.issue_read(0, 0x1000, 4, 4);
        let read_arrival = c.next_work_tick().expect("read pending");
        assert!(read_arrival > 4, "delivery delay pushes arrival past issue");
        c.enqueue_fill(0x2000, 3, LineState::Exclusive);
        assert_eq!(c.next_work_tick(), Some(3), "earliest of read and fill");
        // Service everything; the controller goes quiet again.
        let mut t = 0;
        while c.next_work_tick().is_some() {
            run_tick(&mut c, t);
            t += 1;
            assert!(t < 100, "controller never drained");
        }
        assert_eq!(c.next_work_tick(), None);
    }

    #[test]
    fn scrub_with_reuses_scratch_and_matches_scrub() {
        let cfg = respin_faults::FaultConfig {
            scrub: true,
            ..respin_faults::FaultConfig::off()
        };
        let mut a = faulty_controller(4, cfg);
        let mut b = faulty_controller(4, cfg);
        for addr in [0x1000u64, 0x2000, 0x3000] {
            warm(&mut a, addr);
            warm(&mut b, addr);
        }
        let mut scratch = Vec::new();
        let va = a.scrub(10);
        let vb = b.scrub_with(10, &mut scratch);
        assert_eq!(va, vb);
        assert!(scratch.is_empty(), "scratch must be drained on return");
        assert_eq!(a, b, "both scrub paths leave identical controllers");
    }

    #[test]
    fn single_read_hit_completes_in_one_core_cycle() {
        let mut c = controller(4);
        warm(&mut c, 0x1000);
        // Core 0, mult 4, issues at its boundary tick 4.
        c.issue_read(0, 0x1000, 4, 4);
        let mut all = vec![];
        for t in 1..=8 {
            all.extend(run_tick(&mut c, t));
        }
        assert!(
            all.contains(&L1Event::ReadDone {
                core: 0,
                completion_tick: 8
            }),
            "{all:?}"
        );
        assert_eq!(c.stats().read_hit_core_cycles, [1, 0, 0]);
        assert_eq!(c.stats().half_misses, 0);
    }

    #[test]
    fn contention_produces_half_miss() {
        // Three cores, all mult 4, all issue at tick 0 to warm lines; only
        // one read can be serviced per tick, arriving at tick 2 ⇒ ticks 2
        // and 3 service two of them, the third slips to tick 4 ⇒ 2 core
        // cycles (a half-miss).
        let mut c = controller(4);
        for a in [0x100, 0x200, 0x300] {
            warm(&mut c, a);
        }
        c.issue_read(0, 0x100, 0, 4);
        c.issue_read(1, 0x200, 0, 4);
        c.issue_read(2, 0x300, 0, 4);
        let mut all = vec![];
        for t in 1..=10 {
            all.extend(run_tick(&mut c, t));
        }
        let completions: Vec<u64> = all
            .iter()
            .filter_map(|e| match e {
                L1Event::ReadDone {
                    completion_tick, ..
                } => Some(*completion_tick),
                _ => None,
            })
            .collect();
        assert_eq!(completions.len(), 3, "{all:?}");
        assert_eq!(c.stats().half_misses, 1);
        assert_eq!(c.stats().read_hit_core_cycles, [2, 1, 0]);
        // Two complete at the first boundary (tick 4), one at tick 8.
        assert_eq!(
            {
                let mut v = completions.clone();
                v.sort_unstable();
                v
            },
            vec![4, 4, 8]
        );
    }

    #[test]
    fn faster_core_wins_ties() {
        // Core 0 at mult 4 and core 1 at mult 6 issue together; the faster
        // core's deadline is earlier so it must be serviced first.
        let mut c = controller(2);
        warm(&mut c, 0x100);
        warm(&mut c, 0x200);
        c.issue_read(1, 0x200, 0, 6);
        c.issue_read(0, 0x100, 0, 4);
        let ev = run_tick(&mut c, 2);
        assert_eq!(
            ev,
            vec![L1Event::ReadDone {
                core: 0,
                completion_tick: 4
            }]
        );
    }

    #[test]
    fn read_miss_reported_and_fill_installs() {
        let mut c = controller(2);
        c.issue_read(0, 0xAB40, 0, 4);
        let mut all = vec![];
        for t in 1..=3 {
            all.extend(run_tick(&mut c, t));
        }
        assert!(matches!(all[..], [L1Event::ReadMiss { core: 0, addr, .. }, ..] if addr == 0xAB40));
        // Chip fetches from L2 and enqueues the fill.
        c.enqueue_fill(0xAB40, 10, LineState::Exclusive);
        for t in 4..=10 {
            run_tick(&mut c, t);
        }
        assert_eq!(c.probe(0xAB40), Some(LineState::Exclusive));
    }

    #[test]
    fn store_hit_marks_dirty_and_drains() {
        let mut c = controller(2);
        warm(&mut c, 0x500);
        c.issue_store(0, 0x500, 0);
        let mut all = vec![];
        for t in 1..=3 {
            all.extend(run_tick(&mut c, t));
        }
        assert!(matches!(
            all[..],
            [L1Event::StoreDrained {
                core: 0,
                completion_tick: 16,
                needs_ownership: true,
                ..
            }]
        ));
        assert_eq!(c.probe(0x500), Some(LineState::Modified));
    }

    #[test]
    fn store_miss_reported() {
        let mut c = controller(2);
        c.issue_store(0, 0x900, 0);
        let mut all = vec![];
        for t in 1..=3 {
            all.extend(run_tick(&mut c, t));
        }
        assert!(matches!(
            all[..],
            [L1Event::StoreMiss {
                core: 0,
                addr: 0x900
            }]
        ));
    }

    #[test]
    fn dirty_eviction_generates_writeback() {
        // 256 KB, 4-way, 32 B ⇒ 2048 sets; addresses 65536 apart collide.
        let mut c = controller(2);
        let stride = 32 * 2048;
        for i in 0..4 {
            c.enqueue_fill(i * stride, 0, LineState::Modified);
        }
        for t in 0..4 {
            run_tick(&mut c, t);
        }
        // Fifth fill evicts a dirty line.
        c.enqueue_fill(4 * stride, 4, LineState::Exclusive);
        let ev = run_tick(&mut c, 4);
        assert!(
            ev.iter()
                .any(|e| matches!(e, L1Event::Writeback { addr } if *addr % stride == 0)),
            "{ev:?}"
        );
    }

    #[test]
    fn arrival_histogram_counts_all_request_kinds() {
        let mut c = controller(4);
        warm(&mut c, 0x100); // tick 0: one write arrival
        c.issue_read(0, 0x100, 0, 4); // arrives tick 2
        c.issue_store(1, 0x100, 0); // arrives tick 2
        run_tick(&mut c, 1); // 0 arrivals
        run_tick(&mut c, 2); // 2 arrivals
        assert_eq!(c.stats().arrivals[0], 1);
        assert_eq!(c.stats().arrivals[1], 1); // the warming fill at tick 0
        assert_eq!(c.stats().arrivals[2], 1);
    }

    #[test]
    fn one_outstanding_read_per_core() {
        let mut c = controller(2);
        assert!(c.can_accept_read(0));
        c.issue_read(0, 0x100, 0, 4);
        assert!(!c.can_accept_read(0));
        assert!(c.can_accept_read(1));
    }

    #[test]
    fn store_retries_extend_completion_by_write_latency() {
        // Per-bit BER 0.9 over 256 bits ⇒ every attempt fails, so the
        // budget is always exhausted and retries == budget.
        let mut cfg = respin_faults::FaultConfig::off();
        cfg.write_ber = 0.9;
        cfg.retry_budget = 2;
        let mut c = faulty_controller(2, cfg);
        warm(&mut c, 0x500);
        c.issue_store(0, 0x500, 0);
        let mut all = vec![];
        for t in 1..=3 {
            all.extend(run_tick(&mut c, t));
        }
        // Store serviced at tick 2: 1 initial + 2 retried writes ⇒ the
        // slot frees at 2 + 14 × 3 = 44.
        assert!(
            matches!(
                all[..],
                [L1Event::StoreDrained {
                    core: 0,
                    completion_tick: 44,
                    ..
                }]
            ),
            "{all:?}"
        );
        let fs = c.fault_stats().expect("faults enabled");
        assert!(fs.summary.write_retries >= 2);
        assert!(fs.summary.recovery_energy_pj > 0.0);
    }

    #[test]
    fn detected_double_error_becomes_read_miss() {
        // Extreme retention decay + ECC: a line read long after its fill
        // carries ≥2 flips ⇒ SECDED detects, line dropped, miss emitted.
        let mut cfg = respin_faults::FaultConfig::off();
        cfg.retention_flip_rate = 1e-2;
        cfg.ecc = true;
        let mut c = faulty_controller(2, cfg);
        warm(&mut c, 0x700);
        c.issue_read(0, 0x700, 10_000, 4);
        let ev = run_tick(&mut c, 10_002);
        assert!(
            matches!(
                ev[..],
                [L1Event::ReadMiss {
                    core: 0,
                    addr: 0x700,
                    ..
                }]
            ),
            "{ev:?}"
        );
        assert_eq!(c.probe(0x700), None);
        assert_eq!(c.stats().read_misses, 1);
        assert!(c.fault_stats().expect("faults on").summary.ecc_detected >= 1);
    }

    #[test]
    fn scrub_visits_resident_lines_and_is_gated() {
        // Scrub disabled ⇒ no-op even with faults present.
        let mut cfg = respin_faults::FaultConfig::off();
        cfg.retention_flip_rate = 1e-9;
        cfg.ecc = true;
        let mut c = faulty_controller(2, cfg);
        warm(&mut c, 0x100);
        assert_eq!(c.scrub(10), 0);

        cfg.scrub = true;
        let mut c = faulty_controller(2, cfg);
        warm(&mut c, 0x100);
        warm(&mut c, 0x200);
        assert_eq!(c.scrub(10), 2);
        assert_eq!(
            c.fault_stats().expect("faults on").summary.scrubbed_lines,
            2
        );

        // Fault layer absent ⇒ no-op.
        let mut c = controller(2);
        warm(&mut c, 0x100);
        assert_eq!(c.scrub(10), 0);
    }
}
