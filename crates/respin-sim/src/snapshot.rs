//! Versioned, checksummed chip snapshots.
//!
//! A snapshot captures the complete [`Chip`] state between steps — cores,
//! caches, workload generators (including their RNG positions), the
//! synchronisation maps, and the deferred-event queue — so a campaign can
//! be killed and resumed with a bit-identical continuation. The envelope
//! is a single JSON object:
//!
//! ```json
//! {
//!   "schema": "respin-chip-snapshot/v1",
//!   "format_version": 1,
//!   "options_key_hash": 1234567890,
//!   "epoch": 7,
//!   "tick": 1048576,
//!   "checksum": 9876543210,
//!   "payload": { ...full chip state... }
//! }
//! ```
//!
//! * `format_version` gates schema evolution: a reader refuses payloads
//!   written by a different version instead of misinterpreting them.
//! * `options_key_hash` binds the snapshot to the run identity (an FNV-1a
//!   hash of the canonical serialised `RunOptions` in respin-core): a
//!   snapshot restored under different options would silently simulate a
//!   different machine, so the mismatch is rejected up front.
//! * `checksum` is FNV-1a 64 over the serialised payload text, catching
//!   torn or bit-rotted files.
//!
//! Every rejection path reports through [`respin_power::diag`] —
//! corruption degrades to a structured diagnostic and a cold start, never
//! a panic. Codes: `SNAP-PARSE`, `SNAP-VERSION`, `SNAP-KEY`, `SNAP-CRC`,
//! `SNAP-STATE`.

use crate::chip::Chip;
use respin_power::diag::{Report, Violation};
use serde::{Deserialize, Serialize, Value};

/// Current snapshot format version. Bump on any change to the payload
/// layout or the envelope fields.
pub const SNAPSHOT_FORMAT_VERSION: u64 = 1;

/// Schema tag carried by every snapshot envelope.
pub const SNAPSHOT_SCHEMA: &str = "respin-chip-snapshot/v1";

/// Envelope metadata of a decoded (or about-to-be-encoded) snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotHeader {
    /// Format version the payload was written with.
    pub format_version: u64,
    /// FNV-1a 64 hash of the canonical run-options serialisation.
    pub options_key_hash: u64,
    /// Consolidation epochs completed when the snapshot was taken.
    pub epoch: u64,
    /// Chip tick at capture time.
    pub tick: u64,
}

/// FNV-1a 64-bit hash. Used for the snapshot payload checksum and the
/// options-key binding; also the per-record checksum of the respin-core
/// result journal (re-exported there), so every integrity check in the
/// persistence layer shares one implementation.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serialises `chip` into a snapshot envelope bound to
/// `options_key_hash`, recording that `epoch` epochs have completed.
pub fn encode(chip: &Chip, options_key_hash: u64, epoch: u64) -> String {
    let payload = serde_json::to_string(chip).unwrap_or_else(|e| {
        // The chip serialiser is total over constructible chips; an error
        // here is a programming bug, not an I/O condition.
        unreachable!("chip serialisation cannot fail: {e}")
    });
    let checksum = fnv1a64(payload.as_bytes());
    format!(
        "{{\"schema\":\"{SNAPSHOT_SCHEMA}\",\"format_version\":{SNAPSHOT_FORMAT_VERSION},\
         \"options_key_hash\":{options_key_hash},\"epoch\":{epoch},\"tick\":{},\
         \"checksum\":{checksum},\"payload\":{payload}}}",
        chip.tick
    )
}

fn reject(code: &str, location: &str, message: String) -> Report {
    let mut report = Report::new();
    report.push(Violation::error(
        code,
        "chip snapshot integrity",
        location,
        message,
    ));
    report
}

/// Decodes a snapshot produced by [`encode`], verifying the envelope
/// before touching the payload. `expected_key_hash` must match the hash
/// the snapshot was written with (same options ⇒ same hash).
///
/// Never panics on malformed input: every failure comes back as a
/// structured [`Report`] so callers can log it and fall back to a cold
/// start.
pub fn decode(text: &str, expected_key_hash: u64) -> Result<(Chip, SnapshotHeader), Report> {
    let value: Value = serde_json::from_str(text)
        .map_err(|e| reject("SNAP-PARSE", "snapshot", format!("not valid JSON: {e}")))?;
    let schema: String = serde::de_field(&value, "schema")
        .map_err(|e| reject("SNAP-PARSE", "snapshot.schema", e.to_string()))?;
    if schema != SNAPSHOT_SCHEMA {
        return Err(reject(
            "SNAP-PARSE",
            "snapshot.schema",
            format!("expected {SNAPSHOT_SCHEMA:?}, found {schema:?}"),
        ));
    }
    let header = SnapshotHeader {
        format_version: serde::de_field(&value, "format_version")
            .map_err(|e| reject("SNAP-PARSE", "snapshot.format_version", e.to_string()))?,
        options_key_hash: serde::de_field(&value, "options_key_hash")
            .map_err(|e| reject("SNAP-PARSE", "snapshot.options_key_hash", e.to_string()))?,
        epoch: serde::de_field(&value, "epoch")
            .map_err(|e| reject("SNAP-PARSE", "snapshot.epoch", e.to_string()))?,
        tick: serde::de_field(&value, "tick")
            .map_err(|e| reject("SNAP-PARSE", "snapshot.tick", e.to_string()))?,
    };
    if header.format_version != SNAPSHOT_FORMAT_VERSION {
        return Err(reject(
            "SNAP-VERSION",
            "snapshot.format_version",
            format!(
                "snapshot written by format v{}, this reader is v{SNAPSHOT_FORMAT_VERSION}",
                header.format_version
            ),
        ));
    }
    if header.options_key_hash != expected_key_hash {
        return Err(reject(
            "SNAP-KEY",
            "snapshot.options_key_hash",
            format!(
                "snapshot bound to options key {:#018x}, caller expects {expected_key_hash:#018x} \
                 — refusing to restore under different run options",
                header.options_key_hash
            ),
        ));
    }
    let stored_checksum: u64 = serde::de_field(&value, "checksum")
        .map_err(|e| reject("SNAP-PARSE", "snapshot.checksum", e.to_string()))?;
    let payload = value
        .get("payload")
        .ok_or_else(|| reject("SNAP-PARSE", "snapshot.payload", "missing payload".into()))?;
    // The checksum was computed over the payload *text* at write time.
    // Re-serialising the parsed payload value reproduces those bytes
    // exactly: the vendored serde_json round-trips finite floats via the
    // shortest-exact representation and preserves object field order.
    let payload_text = serde_json::to_string(payload)
        .map_err(|e| reject("SNAP-PARSE", "snapshot.payload", e.to_string()))?;
    let actual = fnv1a64(payload_text.as_bytes());
    if actual != stored_checksum {
        return Err(reject(
            "SNAP-CRC",
            "snapshot.checksum",
            format!("stored {stored_checksum:#018x}, computed {actual:#018x} — snapshot is torn or corrupted"),
        ));
    }
    let chip = Chip::from_value(payload).map_err(|e| {
        reject(
            "SNAP-STATE",
            "snapshot.payload",
            format!("payload failed to deserialise: {e}"),
        )
    })?;
    if chip.tick != header.tick {
        return Err(reject(
            "SNAP-STATE",
            "snapshot.tick",
            format!(
                "header tick {} disagrees with payload tick {}",
                header.tick, chip.tick
            ),
        ));
    }
    Ok((chip, header))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChipConfig, L1Org};
    use respin_workloads::Benchmark;

    fn tiny_chip() -> Chip {
        let mut c = ChipConfig::nt_base();
        c.clusters = 2;
        c.cores_per_cluster = 4;
        c.l1_org = L1Org::SharedPerCluster;
        c.instructions_per_thread = Some(3_000);
        c.epoch_instructions = 1_000;
        Chip::new(c, &Benchmark::Fft.spec(), 7)
    }

    #[test]
    fn roundtrip_is_bit_identical_to_uninterrupted_run() {
        let mut chip = tiny_chip();
        let mut epoch = 0;
        // Advance a couple of epochs so the snapshot carries live state:
        // warm caches, mid-stream RNGs, sync maps, leakage integrals.
        for _ in 0..2 {
            chip.run_epoch();
            epoch += 1;
        }
        let snap = encode(&chip, 42, epoch);
        let (mut restored, header) = decode(&snap, 42).expect("clean snapshot must decode");
        assert_eq!(header.epoch, 2);
        assert_eq!(header.tick, chip.tick);

        let uninterrupted = chip.run_to_completion();
        let resumed = restored.run_to_completion();
        assert_eq!(
            uninterrupted, resumed,
            "restored chip diverged from the uninterrupted run"
        );
        assert_eq!(
            serde_json::to_string(&uninterrupted).unwrap(),
            serde_json::to_string(&resumed).unwrap(),
            "results must be byte-identical, not merely equal"
        );
    }

    #[test]
    fn snapshot_of_snapshot_is_stable() {
        let mut chip = tiny_chip();
        chip.run_epoch();
        let a = encode(&chip, 1, 1);
        let (restored, _) = decode(&a, 1).expect("decode");
        let b = encode(&restored, 1, 1);
        assert_eq!(a, b, "encode∘decode must be the identity on snapshots");
    }

    /// PR-10 layouts: the dense open-addressed directory (Private L1
    /// org), the Vec-indexed barrier/lock tables, and the bucketed
    /// deferred wheel all serialise through canonical sorted flattenings.
    /// Snapshot mid-epoch — at an arbitrary tick where the wheel holds
    /// pending completions and the sync tables hold live waiters — and
    /// the restored chip must finish byte-identically.
    #[test]
    fn dense_layouts_roundtrip_mid_tick() {
        for l1_org in [L1Org::Private, L1Org::SharedPerCluster] {
            let mut c = ChipConfig::nt_base();
            c.clusters = 2;
            c.cores_per_cluster = 4;
            c.l1_org = l1_org;
            c.instructions_per_thread = Some(3_000);
            c.epoch_instructions = 1_000;
            let mut chip = Chip::new(c, &Benchmark::Radix.spec(), 11);
            // A raw-tick count that lands nowhere near an epoch boundary,
            // so deferred completions and sync waiters are in flight.
            for _ in 0..4_321 {
                chip.advance();
            }
            assert!(!chip.finished(), "workload must still be mid-flight");

            let snap = encode(&chip, 77, 0);
            let (mut restored, _) = decode(&snap, 77).expect("mid-tick snapshot must decode");
            let uninterrupted = chip.run_to_completion();
            let resumed = restored.run_to_completion();
            assert_eq!(
                serde_json::to_string(&uninterrupted).unwrap(),
                serde_json::to_string(&resumed).unwrap(),
                "dense-layout snapshot diverged ({l1_org:?})"
            );

            // Corruption inside the payload body (where the flattened
            // tables live) must come back as a SNAP-* diagnostic, never
            // a panic.
            let mut bytes = snap.clone().into_bytes();
            let mid = bytes.len() / 2;
            bytes[mid] = if bytes[mid] == b'3' { b'4' } else { b'3' };
            let corrupted = String::from_utf8(bytes).unwrap();
            let report = decode(&corrupted, 77).expect_err("corruption must be rejected");
            assert!(
                report
                    .violations
                    .iter()
                    .any(|v| v.code.starts_with("SNAP-")),
                "{report}"
            );
        }
    }

    #[test]
    fn version_mismatch_is_a_structured_rejection() {
        let chip = tiny_chip();
        let snap = encode(&chip, 9, 0).replace("\"format_version\":1", "\"format_version\":99");
        let report = decode(&snap, 9).expect_err("wrong version must be rejected");
        assert!(report.violations.iter().any(|v| v.code == "SNAP-VERSION"));
    }

    #[test]
    fn key_mismatch_is_a_structured_rejection() {
        let chip = tiny_chip();
        let snap = encode(&chip, 9, 0);
        let report = decode(&snap, 10).expect_err("wrong options key must be rejected");
        assert!(report.violations.iter().any(|v| v.code == "SNAP-KEY"));
    }

    #[test]
    fn corruption_is_a_structured_rejection_never_a_panic() {
        let chip = tiny_chip();
        let snap = encode(&chip, 9, 0);
        // Flip one digit inside the payload: checksum must catch it.
        let idx = snap.find("\"tick\":").unwrap();
        let corrupted = {
            let mut s = snap.clone().into_bytes();
            // Corrupt a byte well inside the payload body.
            let p = snap.len() - 40;
            s[p] = if s[p] == b'1' { b'2' } else { b'1' };
            String::from_utf8(s).unwrap()
        };
        let _ = idx;
        let report = decode(&corrupted, 9).expect_err("corruption must be rejected");
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.code == "SNAP-CRC" || v.code == "SNAP-PARSE" || v.code == "SNAP-STATE"),
            "{report}"
        );
        // Truncation (a torn write) is also a structured rejection.
        let torn = &snap[..snap.len() / 2];
        let report = decode(torn, 9).expect_err("torn snapshot must be rejected");
        assert!(report.violations.iter().any(|v| v.code == "SNAP-PARSE"));
        // Arbitrary junk too.
        let report = decode("not json at all", 9).expect_err("junk must be rejected");
        assert!(report.violations.iter().any(|v| v.code == "SNAP-PARSE"));
    }
}
