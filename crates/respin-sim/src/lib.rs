//! # respin-sim — cycle-level near-threshold CMP simulator
//!
//! A from-scratch SESC-analogue driving the Respin reproduction. The
//! simulator advances in **ticks of one cache reference cycle (0.4 ns)**;
//! each core executes one core cycle every `period_mult` ticks (4/5/6 at
//! near-threshold, 1 at nominal voltage), so cache requests align to tick
//! boundaries exactly as the paper's clustered clocking scheme arranges.
//!
//! What is modelled cycle-by-cycle:
//!
//! * **Cores** — dual-issue, in-order-completion engines fed by
//!   [`respin_workloads`] op streams: branch-mispredict flushes, blocking
//!   loads, a draining store buffer, barrier/lock semantics, and `Idle`
//!   dependency-stall ops.
//! * **Shared L1 controller** (§II-A of the paper) — per-core request and
//!   priority registers, deadline-ordered arbitration over a 1R/1W port
//!   pair, *half-miss* responses and rescheduling, per-tick arrival and
//!   service-latency histograms (Figures 10/11).
//! * **Private-cache hierarchy with MESI directories** — the baseline
//!   organisation, with directory state at the L2 (per-cluster) and L3
//!   (chip) levels; invalidation/upgrade/remote-fetch latency and message
//!   energy make coherence traffic a first-class cost.
//! * **Energy** — every array access and core event is charged from
//!   [`respin_power`] models; leakage is integrated over time with
//!   power-gating tracked per core.
//! * **Consolidation machinery** — virtual cores, hardware/OS context
//!   switching, migration penalties, power-gating wake stalls. *Policies*
//!   (greedy/oracle/OS) live in `respin-core`; the chip exposes
//!   [`Chip::set_active_cores`] and epoch-granular stepping, and the whole
//!   chip is `Clone` so an oracle can replay epochs on copies.
//!
//! Everything is deterministic in the construction seed.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Tests may unwrap: a panic IS the failure report there.
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(clippy::all)]

pub mod cache;
pub mod chip;
pub mod cluster;
pub mod config;
pub mod consts;
pub mod core;
pub mod directory;
pub mod energy;
pub(crate) mod hotpath;
pub mod memsys;
pub mod profile;
pub mod shared_l1;
pub mod snapshot;
pub mod stats;

pub use chip::{Chip, EpochReport, RunResult};
pub use config::{CacheSizeClass, ChipConfig, CtxSwitchModel, L1Org};
pub use energy::EnergyBreakdown;
pub use respin_faults::{FaultConfig, FaultEvent, FaultEventKind, FaultSummary};
pub use stats::{ChipStats, SharedL1Stats};
