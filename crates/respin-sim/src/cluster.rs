//! One cluster: cores, virtual cores, the L1 system (shared controller or
//! private arrays with a MESI directory), the cluster L2, and the cluster's
//! energy book.

use crate::cache::CacheArray;
use crate::config::{ChipConfig, L1Org};
use crate::core::{Core, VirtualCore};
use crate::directory::Directory;
use crate::energy::LeakageIntegrator;
use crate::memsys::MemLevel;
use crate::shared_l1::SharedL1;
use crate::stats::LevelStats;
use respin_power::{array_params, CoreEnergyModel};
use respin_variation::VariationMap;
use respin_workloads::{ThreadGen, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// Per-access L1 costs cached at build time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct L1Costs {
    /// Data-cache read energy, pJ.
    pub d_read_pj: f64,
    /// Data-cache write energy, pJ.
    pub d_write_pj: f64,
    /// Instruction-cache read energy, pJ (charged once per issuing cycle).
    pub i_read_pj: f64,
    /// Write occupancy of the data array, ticks.
    pub d_write_ticks: u64,
    /// Level-shifter energy per request crossing the rails, pJ.
    pub shifter_pj: f64,
}

/// The L1 organisation of a cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum L1System {
    /// One controller shared by every core (the paper's design). Boxed so
    /// the enum stays close to its `Private` variant in size.
    Shared(Box<SharedL1>),
    /// Per-core private data caches kept coherent by a cluster directory.
    Private {
        /// One L1D tag array per core.
        l1d: Vec<CacheArray>,
        /// MESI directory over those L1Ds (children = cluster-local cores).
        dir: Directory,
        /// Aggregate hit/miss stats.
        stats: LevelStats,
    },
}

/// A cluster of cores with its cache slice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cluster {
    /// Physical cores.
    pub cores: Vec<Core>,
    /// Virtual cores (threads); same count as physical cores.
    pub vcores: Vec<VirtualCore>,
    /// L1 system.
    pub l1: L1System,
    /// Cluster L2.
    pub l2: MemLevel,
    /// Cached L1 per-access costs.
    pub l1_costs: L1Costs,
    /// Retired instructions in this cluster.
    pub instructions: u64,
    /// Core dynamic energy, pJ.
    pub core_dyn_pj: f64,
    /// Core-cycle boundaries entered by active cores since measurement
    /// start. Clock-tree energy is `clock_cycles × clock_pj`, folded in
    /// at energy-read time: an integer count (unlike a floating-point
    /// accumulator) is exactly batchable by the event-driven fast path,
    /// keeping both stepping loops bit-identical.
    pub clock_cycles: u64,
    /// Clock-tree energy per core cycle per active core, pJ.
    pub clock_pj: f64,
    /// Cache dynamic energy charged outside the L1/L2 accumulators
    /// (instruction fetches), pJ.
    pub ifetch_dyn_pj: f64,
    /// Coherence/interconnect energy, pJ.
    pub interconnect_pj: f64,
    /// Core leakage integrator (gating-aware).
    pub core_leak: LeakageIntegrator,
    /// Constant cache leakage power of the cluster (L1s + L2), mW.
    pub cache_leak_mw: f64,
    /// Number of currently active cores.
    pub active_cores: usize,
    /// Tick measurement started at (see `Chip::reset_measurements`).
    pub measure_start_tick: u64,
    /// Fig. 14 accounting: epochs seen, Σ active cores, min, max.
    pub epoch_count: u64,
    /// Sum of active-core counts over epochs.
    pub active_sum: u64,
    /// Minimum active cores observed at an epoch boundary.
    pub active_min: usize,
    /// Maximum active cores observed at an epoch boundary.
    pub active_max: usize,
}

impl Cluster {
    /// Builds cluster `index` of a chip.
    pub fn build(
        config: &ChipConfig,
        variation: &VariationMap,
        spec: &WorkloadSpec,
        index: usize,
        seed: u64,
        core_model: &CoreEnergyModel,
    ) -> Self {
        let n = config.cores_per_cluster;
        let base = index * n;

        let mut cores = Vec::with_capacity(n);
        let mut vcores = Vec::with_capacity(n);
        for c in 0..n {
            let global = base + c;
            cores.push(Core::new(
                variation.period_mult[global] as u64,
                variation.leakage_factor[global],
            ));
            vcores.push(VirtualCore::new(ThreadGen::new(spec, global, seed)));
        }
        // One thread per core initially.
        for (c, core) in cores.iter_mut().enumerate() {
            core.assigned = vec![c];
            core.slice_left = u64::MAX; // no slicing needed while 1:1
        }

        let l1i_geom = config.l1i_geometry();
        let l1d_geom = config.l1d_geometry();
        let l1i_params = config.l1_params(l1i_geom);
        let l1d_params = config.l1_params(l1d_geom);
        let shifter = if config.has_dual_rails() {
            respin_power::LevelShifter::default().energy_per_crossing_pj
        } else {
            0.0
        };
        let l1_costs = L1Costs {
            d_read_pj: l1d_params.read_energy_pj,
            d_write_pj: l1d_params.write_energy_pj,
            i_read_pj: l1i_params.read_energy_pj,
            d_write_ticks: config.write_ticks(&l1d_params),
            shifter_pj: shifter,
        };

        // Fault model, only instantiated when a cell-level fault can fire
        // (the `None` path keeps the controller bit-identical to the
        // pre-fault simulator).
        let faults = if config.faults.cell_faults_enabled() || config.faults.scrub {
            Some(respin_faults::ArrayFaults::new(
                config.faults,
                seed,
                index,
                l1d_geom.block_bytes * 8,
            ))
        } else {
            None
        };

        let l1 = match config.l1_org {
            L1Org::SharedPerCluster => L1System::Shared(Box::new(
                SharedL1::new(
                    l1d_geom,
                    &l1d_params,
                    config.read_ticks(&l1d_params, true),
                    config.write_ticks(&l1d_params),
                    n,
                    shifter,
                    config.delivery_ticks,
                )
                .with_faults(faults),
            )),
            L1Org::Private => L1System::Private {
                l1d: (0..n).map(|_| CacheArray::new(l1d_geom)).collect(),
                dir: Directory::new(),
                stats: LevelStats::default(),
            },
        };

        let l2_geom = config.l2_geometry();
        let l2_params = array_params(config.cache_tech, l2_geom, config.cache_vdd);
        let l2 = MemLevel::new(
            l2_geom,
            &l2_params,
            config.read_ticks(&l2_params, false),
            config.write_ticks(&l2_params),
            crate::consts::L2_ACCEPT_INTERVAL_TICKS,
        );

        // Constant cache leakage: L1I + L1D (×cores when private) + L2.
        let l1_copies = match config.l1_org {
            L1Org::SharedPerCluster => 1.0,
            L1Org::Private => n as f64,
        };
        let cache_leak_mw =
            (l1i_params.leakage_mw + l1d_params.leakage_mw) * l1_copies + l2_params.leakage_mw;

        // All cores start active.
        let leak_mw: f64 = cores
            .iter()
            .map(|c| core_model.leakage_mw(config.core_vdd, c.leak_factor))
            .sum();

        Self {
            cores,
            vcores,
            l1,
            l2,
            l1_costs,
            instructions: 0,
            core_dyn_pj: 0.0,
            clock_cycles: 0,
            clock_pj: 0.0, // set by `Chip::try_new` from the core model

            ifetch_dyn_pj: 0.0,
            interconnect_pj: 0.0,
            core_leak: LeakageIntegrator::new(leak_mw, crate::consts::CACHE_PERIOD_PS),
            cache_leak_mw,
            active_cores: n,
            measure_start_tick: 0,
            epoch_count: 0,
            active_sum: 0,
            active_min: usize::MAX,
            active_max: 0,
        }
    }

    /// Recomputes and applies the core-leakage power after a gating change.
    pub fn refresh_core_leakage(&mut self, tick: u64, core_vdd: f64, core_model: &CoreEnergyModel) {
        let mw: f64 = self
            .cores
            .iter()
            .map(|c| {
                if c.active {
                    core_model.leakage_mw(core_vdd, c.leak_factor)
                } else {
                    core_model.gated_leakage_mw(core_vdd, c.leak_factor)
                }
            })
            .sum();
        self.core_leak.set_power(tick, mw);
    }

    /// Total cluster energy at `tick` (cores + L1 + L2 + local
    /// interconnect), pJ — the quantity the consolidation policies optimise
    /// per instruction.
    pub fn energy_pj(&self, tick: u64) -> f64 {
        let l1_dyn = match &self.l1 {
            L1System::Shared(s) => s.dyn_energy_pj + s.shifter_acc_pj,
            L1System::Private { .. } => 0.0, // charged into ifetch_dyn_pj
        };
        self.core_dyn_pj
            + self.clock_cycles as f64 * self.clock_pj
            + self.core_leak.energy_pj(tick)
            + l1_dyn
            + self.l2.dyn_energy_pj
            + self.ifetch_dyn_pj
            + self.interconnect_pj
            + self.cache_leak_mw
                * tick.saturating_sub(self.measure_start_tick) as f64
                * crate::consts::CACHE_PERIOD_PS
                / 1_000.0
    }

    /// True when every thread of the cluster has finished.
    pub fn finished(&self) -> bool {
        self.vcores
            .iter()
            .all(|v| matches!(v.state, crate::core::VcState::Finished))
    }

    /// Number of cores that have not been decommissioned by fault
    /// injection. Always ≥ 1 (the last healthy core is never taken).
    pub fn healthy_cores(&self) -> usize {
        self.cores.iter().filter(|c| !c.faulty).count()
    }

    /// Per-core effective frequency in MHz: the cache domain runs at
    /// 1/`CACHE_PERIOD_PS`, each core at 1/`mult` of that. Power-gated
    /// and decommissioned cores report 0 (they execute nothing).
    pub fn core_freq_mhz(&self) -> Vec<f64> {
        self.cores
            .iter()
            .map(|c| {
                if c.active && !c.faulty {
                    1_000_000.0 / (crate::consts::CACHE_PERIOD_PS * c.mult as f64)
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Hosting ranking: core indices from most to least energy-efficient.
    /// Faster cores (smaller period multiple) are more efficient because
    /// leakage is a fixed cost (§III-C); ties break toward lower leakage.
    /// Decommissioned (faulty) cores are excluded — they can never host.
    pub fn efficiency_ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.cores.len())
            .filter(|&c| !self.cores[c].faulty)
            .collect();
        idx.sort_by(|&a, &b| {
            self.cores[a]
                .mult
                .cmp(&self.cores[b].mult)
                .then(
                    self.cores[a]
                        .leak_factor
                        .total_cmp(&self.cores[b].leak_factor),
                )
                .then(a.cmp(&b))
        });
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respin_variation::FrequencyBand;
    use respin_workloads::Benchmark;

    fn build_cluster(org: L1Org) -> Cluster {
        let mut config = ChipConfig::nt_base();
        config.l1_org = org;
        config.clusters = 1;
        config.cores_per_cluster = 4;
        let variation = VariationMap::uniform(4, 5, FrequencyBand::NT);
        let spec = Benchmark::Fft.spec();
        Cluster::build(
            &config,
            &variation,
            &spec,
            0,
            1,
            &CoreEnergyModel::default(),
        )
    }

    #[test]
    fn builds_shared_and_private() {
        let c = build_cluster(L1Org::SharedPerCluster);
        assert!(matches!(c.l1, L1System::Shared(_)));
        assert_eq!(c.cores.len(), 4);
        assert_eq!(c.vcores.len(), 4);
        assert_eq!(c.active_cores, 4);

        let c = build_cluster(L1Org::Private);
        assert!(
            matches!(&c.l1, L1System::Private { l1d, .. } if l1d.len() == 4),
            "Private l1_org must build one L1D per core, got {:?}",
            std::mem::discriminant(&c.l1)
        );
    }

    #[test]
    fn private_leaks_more_than_shared_for_same_l1_capacity_per_core() {
        // A 4-core cluster: private = 4 × (16 KB I + 16 KB D); shared =
        // 64 KB I + 64 KB D. Leakage is linear in capacity, so they tie —
        // but the shared config at the STT default leaks far less than a
        // private SRAM baseline.
        let stt = build_cluster(L1Org::SharedPerCluster);
        let mut config = ChipConfig::nt_base();
        config.l1_org = L1Org::Private;
        config.cores_per_cluster = 4;
        config.cache_tech = respin_power::MemTech::Sram;
        config.cache_vdd = 0.65;
        let variation = VariationMap::uniform(4, 5, FrequencyBand::NT);
        let sram = Cluster::build(
            &config,
            &variation,
            &Benchmark::Fft.spec(),
            0,
            1,
            &CoreEnergyModel::default(),
        );
        assert!(stt.cache_leak_mw < sram.cache_leak_mw / 4.0);
    }

    #[test]
    fn efficiency_ranking_prefers_fast_low_leak() {
        let mut c = build_cluster(L1Org::SharedPerCluster);
        c.cores[0].mult = 6;
        c.cores[1].mult = 4;
        c.cores[2].mult = 4;
        c.cores[3].mult = 5;
        c.cores[1].leak_factor = 1.2;
        c.cores[2].leak_factor = 0.9;
        assert_eq!(c.efficiency_ranking(), vec![2, 1, 3, 0]);
    }

    #[test]
    fn efficiency_ranking_excludes_faulty_cores() {
        let mut c = build_cluster(L1Org::SharedPerCluster);
        c.cores[0].mult = 6;
        c.cores[1].mult = 4;
        c.cores[2].mult = 4;
        c.cores[3].mult = 5;
        c.cores[1].leak_factor = 1.2;
        c.cores[2].leak_factor = 0.9;
        c.cores[2].faulty = true;
        assert_eq!(c.efficiency_ranking(), vec![1, 3, 0]);
        assert_eq!(c.healthy_cores(), 3);
    }

    #[test]
    fn gating_reduces_leakage_power() {
        let mut c = build_cluster(L1Org::SharedPerCluster);
        let model = CoreEnergyModel::default();
        let before = c.core_leak.power_mw();
        c.cores[0].active = false;
        c.cores[1].active = false;
        c.refresh_core_leakage(100, 0.4, &model);
        assert!(c.core_leak.power_mw() < before * 0.6);
    }

    #[test]
    fn energy_grows_with_time() {
        let c = build_cluster(L1Org::SharedPerCluster);
        assert!(c.energy_pj(1000) > 0.0);
        assert!(c.energy_pj(2000) > c.energy_pj(1000));
    }
}
