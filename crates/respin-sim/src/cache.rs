//! Set-associative cache arrays with true-LRU replacement and MESI line
//! states.
//!
//! The array tracks tags and states only — this is a timing/energy
//! simulator, data values never matter. The same structure backs coherent
//! private L1s (full MESI), the cluster-shared L1 (M/E ≈ dirty/clean), and
//! the L2/L3 levels.

use serde::{Deserialize, Serialize};

/// MESI line state. Non-coherent caches use `Exclusive` (clean) and
/// `Modified` (dirty) only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LineState {
    /// Present, possibly in other caches, clean.
    Shared,
    /// Present only here, clean.
    Exclusive,
    /// Present only here, dirty.
    Modified,
}

impl LineState {
    /// True when the line must be written back on eviction.
    pub fn is_dirty(self) -> bool {
        matches!(self, LineState::Modified)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Line {
    tag: u64,
    state: LineState,
    last_use: u64,
}

/// A victim evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evicted {
    /// Block-aligned address of the evicted line.
    pub addr: u64,
    /// Whether it was dirty (needs writeback).
    pub dirty: bool,
}

/// Set-associative tag array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheArray {
    sets: Vec<Vec<Line>>,
    ways: usize,
    block_bits: u32,
    num_sets: u64,
    lru_clock: u64,
}

impl CacheArray {
    /// Builds an array from a validated geometry.
    pub fn new(geometry: respin_power::CacheGeometry) -> Self {
        geometry
            .validate()
            .expect("cache geometry must be valid before building the array");
        let sets = geometry.sets() as usize;
        let ways = geometry.associativity as usize;
        Self {
            // Built per-set (not `vec![proto; n]`): cloning an empty Vec
            // drops its capacity, which would silently re-introduce a
            // heap allocation on every set's first fills — the hot-path
            // allocation audit counts those.
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways: geometry.associativity as usize,
            block_bits: geometry.block_bytes.trailing_zeros(),
            num_sets: sets as u64,
            lru_clock: 0,
        }
    }

    /// Block-aligns an address.
    pub fn block_addr(&self, addr: u64) -> u64 {
        addr >> self.block_bits << self.block_bits
    }

    // Modulo indexing: Table I's L3 capacities (24/48/96 MB) give 3·2^k
    // sets, which real designs serve with banked/odd-modulus indexing.
    fn set_index(&self, addr: u64) -> usize {
        ((addr >> self.block_bits) % self.num_sets) as usize
    }

    fn tag(&self, addr: u64) -> u64 {
        (addr >> self.block_bits) / self.num_sets
    }

    /// Looks an address up without touching LRU state.
    pub fn probe(&self, addr: u64) -> Option<LineState> {
        let tag = self.tag(addr);
        self.sets[self.set_index(addr)]
            .iter()
            .find(|l| l.tag == tag)
            .map(|l| l.state)
    }

    /// Looks an address up, updating LRU on hit. Returns the state.
    pub fn touch(&mut self, addr: u64) -> Option<LineState> {
        let tag = self.tag(addr);
        let set = self.set_index(addr);
        self.lru_clock += 1;
        let clock = self.lru_clock;
        self.sets[set].iter_mut().find(|l| l.tag == tag).map(|l| {
            l.last_use = clock;
            l.state
        })
    }

    /// Changes the state of a resident line. Returns false if absent.
    pub fn set_state(&mut self, addr: u64, state: LineState) -> bool {
        let tag = self.tag(addr);
        let set = self.set_index(addr);
        if let Some(l) = self.sets[set].iter_mut().find(|l| l.tag == tag) {
            l.state = state;
            true
        } else {
            false
        }
    }

    /// Removes a line (coherence invalidation). Returns its state if it was
    /// present.
    pub fn invalidate(&mut self, addr: u64) -> Option<LineState> {
        let tag = self.tag(addr);
        let set = self.set_index(addr);
        let idx = self.sets[set].iter().position(|l| l.tag == tag)?;
        Some(self.sets[set].swap_remove(idx).state)
    }

    /// Fills a line in `state`, evicting LRU if the set is full. A re-fill
    /// of a resident line just updates its state.
    pub fn fill(&mut self, addr: u64, state: LineState) -> Option<Evicted> {
        let tag = self.tag(addr);
        let set_idx = self.set_index(addr);
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let set = &mut self.sets[set_idx];

        if let Some(l) = set.iter_mut().find(|l| l.tag == tag) {
            l.state = state;
            l.last_use = clock;
            return None;
        }

        let mut evicted = None;
        if set.len() == self.ways {
            let (victim_idx, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .expect("non-empty set");
            let victim = set.swap_remove(victim_idx);
            let victim_addr = (victim.tag * self.num_sets + set_idx as u64) << self.block_bits;
            evicted = Some(Evicted {
                addr: victim_addr,
                dirty: victim.state.is_dirty(),
            });
        }
        set.push(Line {
            tag,
            state,
            last_use: clock,
        });
        evicted
    }

    /// Number of resident lines (for occupancy assertions/tests).
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Iterates every resident line as `(block address, state)`, in
    /// set-then-way order (deterministic — the scrubber walks this).
    /// Addresses are reconstructed the same way evictions report theirs.
    pub fn resident_addrs(&self) -> impl Iterator<Item = (u64, LineState)> + '_ {
        self.sets
            .iter()
            .enumerate()
            .flat_map(move |(set_idx, set)| {
                set.iter().map(move |line| {
                    (
                        (line.tag * self.num_sets + set_idx as u64) << self.block_bits,
                        line.state,
                    )
                })
            })
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Internal invariant: no duplicate tags in a set, occupancy ≤ ways.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, set) in self.sets.iter().enumerate() {
            if set.len() > self.ways {
                return Err(format!("set {i} over-full: {}", set.len()));
            }
            for (a, la) in set.iter().enumerate() {
                for lb in &set[a + 1..] {
                    if la.tag == lb.tag {
                        return Err(format!("duplicate tag {:#x} in set {i}", la.tag));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respin_power::CacheGeometry;

    fn tiny() -> CacheArray {
        // 2 sets × 2 ways × 32 B = 128 B.
        CacheArray::new(CacheGeometry::new(128, 32, 2))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.touch(0x1000), None);
        c.fill(0x1000, LineState::Exclusive);
        assert_eq!(c.touch(0x1000), Some(LineState::Exclusive));
        // Same block, different byte.
        assert_eq!(c.touch(0x101F), Some(LineState::Exclusive));
        // Next block misses.
        assert_eq!(c.touch(0x1020), None);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three blocks mapping to set 0 (set stride = 64 B).
        let (a, b, d) = (0x000, 0x100, 0x200);
        c.fill(a, LineState::Exclusive);
        c.fill(b, LineState::Exclusive);
        c.touch(a); // a is now more recent than b
        let ev = c.fill(d, LineState::Exclusive).expect("must evict");
        assert_eq!(ev.addr, b);
        assert!(!ev.dirty);
        assert!(c.probe(a).is_some());
        assert!(c.probe(b).is_none());
    }

    #[test]
    fn eviction_reports_dirty_and_reconstructs_address() {
        let mut c = tiny();
        let victim = 0x12340; // set = (0x12340 >> 5) & 1 = 0x91A & 1 = 0
        c.fill(victim, LineState::Modified);
        c.fill(0x100, LineState::Exclusive);
        let ev = c.fill(0x200, LineState::Exclusive).expect("evict");
        assert_eq!(ev.addr, victim);
        assert!(ev.dirty);
    }

    #[test]
    fn invalidate_and_state_changes() {
        let mut c = tiny();
        c.fill(0x40, LineState::Shared);
        assert!(c.set_state(0x40, LineState::Modified));
        assert_eq!(c.probe(0x40), Some(LineState::Modified));
        assert_eq!(c.invalidate(0x40), Some(LineState::Modified));
        assert_eq!(c.probe(0x40), None);
        assert!(!c.set_state(0x40, LineState::Shared));
        assert_eq!(c.invalidate(0x40), None);
    }

    #[test]
    fn refill_updates_in_place() {
        let mut c = tiny();
        c.fill(0x40, LineState::Shared);
        assert!(c.fill(0x40, LineState::Modified).is_none());
        assert_eq!(c.resident_lines(), 1);
        assert_eq!(c.probe(0x40), Some(LineState::Modified));
    }

    #[test]
    fn block_alignment() {
        let c = tiny();
        assert_eq!(c.block_addr(0x1234), 0x1220);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use respin_power::CacheGeometry;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn invariants_hold_under_random_ops(
            ops in proptest::collection::vec((0u64..0x4000, 0u8..4), 1..400),
        ) {
            let mut c = CacheArray::new(CacheGeometry::new(1024, 32, 4));
            for (addr, kind) in ops {
                match kind {
                    0 => { c.touch(addr); }
                    1 => { c.fill(addr, LineState::Exclusive); }
                    2 => { c.fill(addr, LineState::Modified); }
                    _ => { c.invalidate(addr); }
                }
                prop_assert!(c.check_invariants().is_ok());
            }
        }

        #[test]
        fn filled_line_is_always_found(addr in 0u64..0x10_0000) {
            let mut c = CacheArray::new(CacheGeometry::new(4096, 64, 8));
            c.fill(addr, LineState::Shared);
            prop_assert_eq!(c.probe(addr), Some(LineState::Shared));
            // And the reconstructible eviction address round-trips.
            prop_assert_eq!(c.block_addr(addr) , c.block_addr(c.block_addr(addr)));
        }
    }
}
