//! Energy bookkeeping.
//!
//! Dynamic energy is charged per event (core events, cache accesses,
//! coherence messages, level-shifter crossings). Leakage is integrated over
//! time by [`LeakageIntegrator`]s whose power changes only at power-gating
//! events, so the integral is exact and cheap.
//!
//! The component split mirrors Figure 1 / Figure 6 of the paper: core
//! dynamic, core leakage, cache dynamic, cache leakage, interconnect
//! (level shifters + coherence messages), and off-chip (reported separately;
//! the paper's CMP power figures exclude DRAM).

use serde::{Deserialize, Serialize};

/// Piecewise-constant power integrator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageIntegrator {
    power_mw: f64,
    last_tick: u64,
    acc_pj: f64,
    /// Tick duration in picoseconds.
    tick_ps: f64,
}

impl LeakageIntegrator {
    /// New integrator starting at `power_mw` from tick 0.
    pub fn new(power_mw: f64, tick_ps: f64) -> Self {
        Self {
            power_mw,
            last_tick: 0,
            acc_pj: 0.0,
            tick_ps,
        }
    }

    /// Changes the power level at `tick`, folding the elapsed interval in.
    pub fn set_power(&mut self, tick: u64, power_mw: f64) {
        self.accumulate(tick);
        self.power_mw = power_mw;
    }

    /// Restarts the integral from `tick` (measurement warm-up reset).
    pub fn rebase(&mut self, tick: u64) {
        self.acc_pj = 0.0;
        self.last_tick = tick;
    }

    /// Current power level, mW.
    pub fn power_mw(&self) -> f64 {
        self.power_mw
    }

    /// Total energy up to `tick`, pJ.
    pub fn energy_pj(&self, tick: u64) -> f64 {
        let pending =
            self.power_mw * (tick.saturating_sub(self.last_tick)) as f64 * self.tick_ps / 1_000.0;
        self.acc_pj + pending
    }

    fn accumulate(&mut self, tick: u64) {
        debug_assert!(tick >= self.last_tick, "time must not run backwards");
        self.acc_pj +=
            self.power_mw * (tick.saturating_sub(self.last_tick)) as f64 * self.tick_ps / 1_000.0;
        self.last_tick = tick;
    }
}

/// Energy split by chip component, picojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Core dynamic energy.
    pub core_dynamic_pj: f64,
    /// Core leakage energy (gating-aware).
    pub core_leakage_pj: f64,
    /// Cache dynamic energy, all levels.
    pub cache_dynamic_pj: f64,
    /// Cache leakage energy, all levels.
    pub cache_leakage_pj: f64,
    /// Level shifters, interconnect, coherence messages.
    pub interconnect_pj: f64,
    /// Off-chip DRAM energy — reported but *excluded* from [`Self::chip_total_pj`].
    pub offchip_pj: f64,
}

impl EnergyBreakdown {
    /// Total CMP energy (the quantity the paper's figures normalise).
    pub fn chip_total_pj(&self) -> f64 {
        self.core_dynamic_pj
            + self.core_leakage_pj
            + self.cache_dynamic_pj
            + self.cache_leakage_pj
            + self.interconnect_pj
    }

    /// Total leakage energy.
    pub fn leakage_pj(&self) -> f64 {
        self.core_leakage_pj + self.cache_leakage_pj
    }

    /// Total dynamic energy (including interconnect).
    pub fn dynamic_pj(&self) -> f64 {
        self.core_dynamic_pj + self.cache_dynamic_pj + self.interconnect_pj
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: &EnergyBreakdown) {
        self.core_dynamic_pj += other.core_dynamic_pj;
        self.core_leakage_pj += other.core_leakage_pj;
        self.cache_dynamic_pj += other.cache_dynamic_pj;
        self.cache_leakage_pj += other.cache_leakage_pj;
        self.interconnect_pj += other.interconnect_pj;
        self.offchip_pj += other.offchip_pj;
    }

    /// Component-wise difference (for per-epoch deltas).
    pub fn minus(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            core_dynamic_pj: self.core_dynamic_pj - other.core_dynamic_pj,
            core_leakage_pj: self.core_leakage_pj - other.core_leakage_pj,
            cache_dynamic_pj: self.cache_dynamic_pj - other.cache_dynamic_pj,
            cache_leakage_pj: self.cache_leakage_pj - other.cache_leakage_pj,
            interconnect_pj: self.interconnect_pj - other.interconnect_pj,
            offchip_pj: self.offchip_pj - other.offchip_pj,
        }
    }

    /// Average CMP power over `interval_ps`, mW.
    pub fn average_power_mw(&self, interval_ps: f64) -> f64 {
        respin_power::units::average_power_mw(self.chip_total_pj(), interval_ps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrator_constant_power() {
        let li = LeakageIntegrator::new(2.0, 400.0);
        // 2 mW for 1000 ticks of 0.4 ns = 2 mW × 400 ns = 800 pJ.
        assert!((li.energy_pj(1000) - 800.0).abs() < 1e-9);
    }

    #[test]
    fn integrator_power_change_is_exact() {
        let mut li = LeakageIntegrator::new(2.0, 400.0);
        li.set_power(500, 1.0);
        // 2 mW × 200 ns + 1 mW × 200 ns = 400 + 200 pJ.
        assert!((li.energy_pj(1000) - 600.0).abs() < 1e-9);
        // Querying twice is idempotent.
        assert!((li.energy_pj(1000) - 600.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_totals() {
        let b = EnergyBreakdown {
            core_dynamic_pj: 1.0,
            core_leakage_pj: 2.0,
            cache_dynamic_pj: 3.0,
            cache_leakage_pj: 4.0,
            interconnect_pj: 5.0,
            offchip_pj: 100.0,
        };
        assert_eq!(b.chip_total_pj(), 15.0);
        assert_eq!(b.leakage_pj(), 6.0);
        assert_eq!(b.dynamic_pj(), 9.0);
    }

    #[test]
    fn add_and_minus_roundtrip() {
        let a = EnergyBreakdown {
            core_dynamic_pj: 1.0,
            core_leakage_pj: 2.0,
            cache_dynamic_pj: 3.0,
            cache_leakage_pj: 4.0,
            interconnect_pj: 5.0,
            offchip_pj: 6.0,
        };
        let mut b = a;
        b.add(&a);
        let d = b.minus(&a);
        assert_eq!(d, a);
    }

    #[test]
    fn average_power() {
        let b = EnergyBreakdown {
            core_dynamic_pj: 1000.0,
            ..Default::default()
        };
        // 1000 pJ over 1 µs = 1 mW.
        assert!((b.average_power_mw(1e6) - 1.0).abs() < 1e-12);
    }
}
